//! Property tests for the batched scheduler's invariants.
//!
//! Under randomized request streams (tenants × models × request sizes ×
//! scheduler knobs), irrespective of timing and interleaving:
//!
//! 1. **no request is lost or duplicated** — every admitted ticket resolves
//!    exactly once, with the submitting request's sample count;
//! 2. **per-(tenant, model) FIFO**: dispatch order (`batch_seq`, then
//!    `batch_offset`) is strictly increasing along each tenant's
//!    same-model submission order;
//! 3. **the batch cap holds**: no dispatched batch exceeds `max_batch`
//!    samples;
//! 4. **admission is all-or-nothing**: even when the queue overflows
//!    (typed [`SubmitError::QueueFull`] rejects) or the server shuts down
//!    with work still queued, every admitted request completes with
//!    correct, bit-exact results.

use std::sync::OnceLock;
use std::time::Duration;

use capsnet::{CapsNet, CapsNetSpec, ExactMath};
use capsnet_workloads::traffic::request_images;
use pim_serve::{
    BatchExecution, ModelRegistry, Request, Response, ServeConfig, ServedModel, Server,
    SubmitError, Ticket,
};
use proptest::prelude::*;

/// Two tiny per-sample-routing models (distinct class counts so responses
/// identify their model), built once — seeding per proptest case would
/// dominate the suite's runtime.
fn models() -> &'static [ServedModel; 2] {
    static MODELS: OnceLock<[ServedModel; 2]> = OnceLock::new();
    MODELS.get_or_init(|| {
        let mut a = CapsNetSpec::tiny_for_tests();
        a.batch_shared_routing = false;
        let mut b = a.clone();
        b.h_caps = 4;
        [
            ServedModel::new("a", CapsNet::seeded(&a, 11).unwrap()),
            ServedModel::new("b", CapsNet::seeded(&b, 12).unwrap()),
        ]
    })
}

/// One generated submission.
#[derive(Debug, Clone)]
struct Sub {
    tenant: usize,
    model: usize,
    samples: usize,
    seed: u64,
}

/// Runs a stream through a server and returns, per submission, either the
/// response or the typed reject it got.
fn drive(
    cfg: ServeConfig,
    subs: &[Sub],
    concurrent_tenants: bool,
) -> Vec<Result<Response, SubmitError>> {
    let registry = ModelRegistry::from_models(models().iter().cloned());
    let server = Server::new(&registry, &ExactMath, cfg).unwrap();
    let (outcomes, _metrics) = server.run(|handle| {
        if concurrent_tenants {
            // One submitting thread per tenant, preserving each tenant's
            // own order; results keyed back by submission index.
            let tenants: Vec<usize> = {
                let mut t: Vec<usize> = subs.iter().map(|s| s.tenant).collect();
                t.sort_unstable();
                t.dedup();
                t
            };
            let mut slots: Vec<Option<Result<Response, SubmitError>>> = vec![None; subs.len()];
            std::thread::scope(|scope| {
                let handles: Vec<_> = tenants
                    .iter()
                    .map(|&tenant| {
                        scope.spawn(move || {
                            let mut got = Vec::new();
                            for (i, sub) in
                                subs.iter().enumerate().filter(|(_, s)| s.tenant == tenant)
                            {
                                let spec = models()[sub.model].net().spec();
                                let ticket: Result<Ticket, SubmitError> =
                                    handle.submit(Request::new(
                                        sub.tenant,
                                        sub.model,
                                        request_images(spec, sub.samples, sub.seed),
                                    ));
                                got.push((i, ticket.map(|t| t.wait().unwrap())));
                            }
                            got
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, outcome) in h.join().expect("tenant thread") {
                        slots[i] = Some(outcome);
                    }
                }
            });
            slots.into_iter().map(|s| s.expect("all driven")).collect()
        } else {
            // Single-threaded burst: tickets collected first so the queue
            // actually fills, then awaited.
            let tickets: Vec<Result<Ticket, SubmitError>> = subs
                .iter()
                .map(|sub| {
                    let spec = models()[sub.model].net().spec();
                    handle.submit(Request::new(
                        sub.tenant,
                        sub.model,
                        request_images(spec, sub.samples, sub.seed),
                    ))
                })
                .collect();
            tickets
                .into_iter()
                .map(|t| t.map(|ticket| ticket.wait().unwrap()))
                .collect()
        }
    });
    outcomes
}

/// Asserts the four scheduler invariants over one driven stream.
fn check_invariants(
    cfg: &ServeConfig,
    subs: &[Sub],
    outcomes: &[Result<Response, SubmitError>],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(subs.len(), outcomes.len());
    // (tenant, model) -> dispatch positions in submission order.
    let mut dispatch_order: std::collections::HashMap<(usize, usize), Vec<(u64, usize)>> =
        std::collections::HashMap::new();
    for (sub, outcome) in subs.iter().zip(outcomes) {
        match outcome {
            Ok(r) => {
                // Exactly-once with the right payload size: h values differ
                // per model, so length checks pin the response to its model.
                let h = models()[sub.model].net().spec().h_caps;
                prop_assert_eq!(r.predictions.len(), sub.samples);
                prop_assert_eq!(r.class_norms_sq.len(), sub.samples * h);
                // Batch cap.
                prop_assert!(
                    r.batch_samples <= cfg.max_batch,
                    "batch {} exceeds cap {}",
                    r.batch_samples,
                    cfg.max_batch
                );
                prop_assert!(r.batch_offset + sub.samples <= r.batch_samples);
                // Correctness: bit-exact vs per-request serial forward.
                let spec = models()[sub.model].net().spec();
                let serial = models()[sub.model]
                    .net()
                    .forward(&request_images(spec, sub.samples, sub.seed), &ExactMath)
                    .unwrap();
                for (a, b) in r
                    .class_norms_sq
                    .iter()
                    .zip(serial.class_norms_sq.as_slice())
                {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "batched != serial");
                }
                dispatch_order
                    .entry((sub.tenant, sub.model))
                    .or_default()
                    .push((r.batch_seq, r.batch_offset));
            }
            Err(SubmitError::QueueFull { capacity, .. }) => {
                prop_assert_eq!(*capacity, cfg.queue_capacity);
            }
            Err(e) => prop_assert!(false, "unexpected reject: {e}"),
        }
    }
    // FIFO per (tenant, model): dispatch positions strictly increase.
    for ((tenant, model), order) in dispatch_order {
        for w in order.windows(2) {
            prop_assert!(
                w[0] < w[1],
                "tenant {tenant} model {model} dispatched out of order: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
    Ok(())
}

/// Strategy: a stream of submissions over 1..=3 tenants and both models.
fn sub_stream(max_len: usize, max_samples: usize) -> impl Strategy<Value = Vec<Sub>> {
    proptest::collection::vec(
        (0usize..3, 0usize..2, 1usize..=max_samples, 0u64..1000).prop_map(
            |(tenant, model, samples, seed)| Sub {
                tenant,
                model,
                samples,
                seed,
            },
        ),
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn invariants_hold_for_single_thread_bursts(
        subs in sub_stream(24, 3),
        max_batch in 1usize..=8,
        wait_us in 0u64..2000,
        workers in 1usize..=2,
    ) {
        let cfg = ServeConfig {
            max_batch,
            max_wait: Duration::from_micros(wait_us),
            queue_capacity: max_batch.max(6), // small: QueueFull is reachable
            workers,
            execution: BatchExecution::Arena,
            admission: pim_serve::AdmissionPolicy::QueueBound,
        };
        // Requests wider than max_batch are rejected at submit; keep the
        // generated stream admissible.
        let subs: Vec<Sub> = subs.into_iter().map(|mut s| { s.samples = s.samples.min(max_batch); s }).collect();
        let outcomes = drive(cfg, &subs, false);
        check_invariants(&cfg, &subs, &outcomes)?;
    }

    #[test]
    fn invariants_hold_with_concurrent_tenants(
        subs in sub_stream(18, 2),
        max_batch in 2usize..=6,
        wait_us in 0u64..1500,
    ) {
        let cfg = ServeConfig {
            max_batch,
            max_wait: Duration::from_micros(wait_us),
            queue_capacity: 64, // roomy: concurrent path tests ordering, not rejects
            workers: 1,
            execution: BatchExecution::Arena,
            admission: pim_serve::AdmissionPolicy::QueueBound,
        };
        let subs: Vec<Sub> = subs.into_iter().map(|mut s| { s.samples = s.samples.min(max_batch); s }).collect();
        let outcomes = drive(cfg, &subs, true);
        for outcome in &outcomes {
            prop_assert!(outcome.is_ok(), "roomy queue must admit everything");
        }
        check_invariants(&cfg, &subs, &outcomes)?;
    }

    #[test]
    fn shutdown_completes_every_admitted_request(
        n in 1usize..16,
        max_batch in 1usize..=4,
    ) {
        // Submit, then leave the serve window immediately: the drain path
        // must fulfill every ticket.
        let cfg = ServeConfig {
            max_batch,
            max_wait: Duration::from_millis(50), // long: shutdown must cut it short
            queue_capacity: 64,
            workers: 1,
            execution: BatchExecution::Arena,
            admission: pim_serve::AdmissionPolicy::QueueBound,
        };
        let registry = ModelRegistry::from_models(models().iter().cloned());
        let server = Server::new(&registry, &ExactMath, cfg).unwrap();
        let (tickets, _metrics) = server.run(|handle| {
            (0..n)
                .map(|i| {
                    let spec = models()[i % 2].net().spec();
                    handle
                        .submit(Request::new(i, i % 2, request_images(spec, 1, i as u64)))
                        .unwrap()
                })
                .collect::<Vec<Ticket>>()
        });
        for t in tickets {
            let r = t.wait();
            prop_assert!(r.is_ok());
            prop_assert!(r.unwrap().batch_samples <= max_batch);
        }
    }
}
