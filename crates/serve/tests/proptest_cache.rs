//! Property tests for the content-addressed response cache through the
//! serving tier, across artifact dtypes and hot-swaps:
//!
//! 1. **cached == fresh, bitwise**: whatever mix of repeats, swaps, and
//!    artifact storage (pure f32, fp16-, or int8-quantized weights), every
//!    response is bit-identical to a per-request forward on the network of
//!    the version it reports;
//! 2. **never stale**: served sequentially, every response carries the
//!    version current at submit time — a post-swap request can never
//!    observe a pre-swap payload;
//! 3. **exact hit accounting**: the number of fast-path completions equals
//!    a replayed model of the cache (same-content repeat within the same
//!    version epoch ⇔ hit), and `completions == requests + cache_hits`.

use std::collections::HashSet;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use capsnet::{CapsNet, CapsNetSpec, ExactMath};
use pim_serve::{
    BatchExecution, CacheConfig, ModelRegistry, Request, ServeCache, ServeConfig, ServedModel,
    Server,
};
use pim_tensor::{QuantDType, Tensor};
use proptest::prelude::*;

fn images(samples: usize, seed: u64) -> Tensor {
    Tensor::uniform(&[samples, 1, 12, 12], 0.0, 1.0, seed)
}

/// Two alternating serve versions per storage dtype (index 0 = pure f32,
/// 1 = fp16 artifact round-trip, 2 = int8 artifact round-trip), built once
/// — artifact IO per proptest case would dominate the suite's runtime.
/// The quantized variants really serve their quantized storage: the nets
/// are reloaded from artifacts written with the corresponding
/// [`pim_store::QuantSpec`].
fn dtype_nets() -> &'static [[CapsNet; 2]; 3] {
    static NETS: OnceLock<[[CapsNet; 2]; 3]> = OnceLock::new();
    NETS.get_or_init(|| {
        let mut spec = CapsNetSpec::tiny_for_tests();
        spec.batch_shared_routing = false;
        let base = [
            CapsNet::seeded(&spec, 31).unwrap(),
            CapsNet::seeded(&spec, 32).unwrap(),
        ];
        let dir = std::env::temp_dir().join(format!("pim_cache_prop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let requant = |dtype: QuantDType, tag: &str| -> [CapsNet; 2] {
            [0usize, 1].map(|i| {
                let path = dir.join(format!("{tag}_{i}.pimcaps"));
                pim_store::ModelWriter::vault_aligned()
                    .with_quant(pim_store::QuantSpec::weights(dtype))
                    .save(&base[i], &path)
                    .unwrap();
                pim_store::MappedModel::open(&path)
                    .unwrap()
                    .capsnet()
                    .unwrap()
            })
        };
        let out = [
            base.clone(),
            requant(QuantDType::F16, "f16"),
            requant(QuantDType::I8, "i8"),
        ];
        let _ = std::fs::remove_dir_all(&dir); // nets are owned copies now
        out
    })
}

/// One generated step: a submission (content key + size) or a hot-swap.
#[derive(Debug, Clone, Copy)]
enum Op {
    Submit { seed: u64, samples: usize },
    Swap,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // kind 0..5 ⇒ submit (5:1 weight keeps swap epochs long enough to
    // accumulate repeats), kind 5 ⇒ swap.
    (0u8..6, 0u64..4, 1usize..=2).prop_map(|(kind, seed, samples)| {
        if kind == 5 {
            Op::Swap
        } else {
            Op::Submit { seed, samples }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cached_equals_fresh_bitwise_across_dtypes_and_swaps(
        dtype in 0usize..3,
        ops in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        let nets = &dtype_nets()[dtype];
        let registry =
            ModelRegistry::from_models([ServedModel::new("prop", nets[0].clone())]);
        let cache = Arc::new(ServeCache::new(
            CacheConfig {
                sync_interval: Duration::from_secs(3600),
                ..CacheConfig::default()
            },
            1,
        ));
        let cfg = ServeConfig {
            max_batch: 4,
            max_wait: Duration::ZERO,
            queue_capacity: 16,
            workers: 1,
            execution: BatchExecution::Arena,
            admission: pim_serve::AdmissionPolicy::QueueBound,
        };
        let server = Server::new(&registry, &ExactMath, cfg)
            .unwrap()
            .with_cache(Arc::clone(&cache));

        // Replay model of the cache: within one version epoch, a repeat of
        // `(seed, samples)` must hit; a swap opens a fresh epoch.
        let mut version = 1u64;
        let mut swaps = 0usize;
        let mut filled: HashSet<(u64, u64, usize)> = HashSet::new();
        let mut expected_hits = 0u64;
        let mut submitted = 0u64;

        let outcome = server.run(|handle| {
            for op in &ops {
                match *op {
                    Op::Swap => {
                        swaps += 1;
                        let installed = nets[swaps % 2].clone();
                        version = handle.swap_model(0, installed).unwrap();
                        prop_assert_eq!(version, 1 + swaps as u64);
                    }
                    Op::Submit { seed, samples } => {
                        submitted += 1;
                        if !filled.insert((version, seed, samples)) {
                            expected_hits += 1;
                        }
                        let r = handle
                            .submit(Request::new(0, 0, images(samples, seed)))
                            .unwrap()
                            .wait()
                            .unwrap();
                        // Never stale: sequential submission must observe
                        // the version current at submit time.
                        prop_assert_eq!(r.model_version, version);
                        // Bitwise: hit or miss, quantized or not, the
                        // payload equals a fresh forward on that version.
                        let net = &nets[(r.model_version as usize - 1) % 2];
                        let fresh = net.forward(&images(samples, seed), &ExactMath).unwrap();
                        prop_assert_eq!(&r.predictions, &fresh.predictions());
                        for (a, b) in
                            r.class_norms_sq.iter().zip(fresh.class_norms_sq.as_slice())
                        {
                            prop_assert_eq!(a.to_bits(), b.to_bits(), "cached != fresh");
                        }
                    }
                }
            }
            Ok(())
        });
        outcome.0?;
        let metrics = outcome.1;

        // Exact fast-path accounting against the replay model.
        prop_assert_eq!(metrics.cache_hits, expected_hits);
        prop_assert_eq!(metrics.completions(), submitted);
        prop_assert_eq!(metrics.requests, submitted - expected_hits);
        prop_assert_eq!(cache.report().hits, expected_hits);
    }
}
