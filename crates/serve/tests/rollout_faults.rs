//! Rollout infrastructure-failure paths: the canary's bounded retry
//! budget against a saturated replica, and partial-fleet reporting when
//! swaps or reverts fail mid-rollout.

use std::collections::BTreeMap;
use std::time::Duration;

use capsnet::{CapsNet, CapsNetSpec, ExactMath, MathBackend};
use pim_serve::{
    AdmissionPolicy, BatchExecution, FaultToleranceConfig, ReplicaOutcome, ReplicaSet,
    ReplicaSetConfig, Request, RetryBudget, RolloutConfig, RoutingPolicy, ServeConfig, ServeError,
    SubmitError,
};
use pim_store::{ModelWriter, SharedArtifact};
use pim_tensor::Tensor;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pim_serve_faults_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn per_sample_spec() -> CapsNetSpec {
    let mut spec = CapsNetSpec::tiny_for_tests();
    spec.batch_shared_routing = false;
    spec
}

fn tiny_net(seed: u64) -> CapsNet {
    CapsNet::seeded(&per_sample_spec(), seed).unwrap()
}

fn images(n: usize, seed: u64) -> Tensor {
    Tensor::uniform(&[n, 1, 12, 12], 0.0, 1.0, seed)
}

/// A copy of `net` with every weight nudged slightly — a healthy "new
/// version" whose canary divergence is small.
fn perturbed(net: &CapsNet, factor: f32) -> CapsNet {
    let mut weights: BTreeMap<String, Tensor> = net
        .named_weights()
        .into_iter()
        .map(|(name, t)| (name, t.expect_f32().map(|x| x * (1.0 + factor))))
        .collect();
    CapsNet::from_views(net.spec(), &mut weights).unwrap()
}

/// `ExactMath` with a per-`exp` sleep: the tiny spec runs ~144 routing
/// `exp` calls per sample, so one forward reliably occupies the worker
/// for tens of milliseconds — long enough that a canary retry budget in
/// the hundreds of microseconds exhausts deterministically while the
/// (one-slot) queue stays full.
struct SlowMath;

impl MathBackend for SlowMath {
    fn name(&self) -> &'static str {
        "slow-exact"
    }
    fn exp(&self, x: f32) -> f32 {
        std::thread::sleep(Duration::from_micros(200));
        ExactMath.exp(x)
    }
    fn inv_sqrt(&self, x: f32) -> f32 {
        ExactMath.inv_sqrt(x)
    }
    fn div(&self, a: f32, b: f32) -> f32 {
        ExactMath.div(a, b)
    }
}

/// Regression (canary busy-spin livelock): against a saturated replica the
/// canary used to retry `QueueFull` forever in an unbounded `yield_now`
/// loop, pegging a core with the rollout making no progress. It now
/// carries a [`RetryBudget`] and fails the rollout with the typed
/// [`ServeError::Overloaded`] once the budget is spent.
#[test]
fn canary_against_saturated_replica_fails_typed_not_livelocked() {
    let dir = tmp_dir("overload");
    let v1 = tiny_net(21);
    let v2_path = dir.join("v2.pimcaps");
    ModelWriter::vault_aligned()
        .save(&perturbed(&v1, 1e-4), &v2_path)
        .unwrap();

    let cfg = ReplicaSetConfig {
        replicas: 1,
        policy: RoutingPolicy::RoundRobin,
        serve: ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_capacity: 1, // one waiting sample: the burst saturates it
            workers: 1,
            execution: BatchExecution::Arena,
            admission: AdmissionPolicy::QueueBound,
        },
        fault: FaultToleranceConfig::default(),
        cache: None,
    };
    let set = ReplicaSet::from_net("sat", &v1, &SlowMath, cfg).unwrap();
    let (err, _report) = set.run(|pool| {
        // Saturate: one request on the worker (a multi-ms SlowMath
        // forward), one filling the single queue slot. Submission itself
        // races the worker's first take, so the burst retries briefly.
        let mut tickets = Vec::new();
        for i in 0..2u64 {
            loop {
                match pool.submit(Request::new(1, 0, images(1, i))) {
                    Ok(t) => break tickets.push(t),
                    Err(SubmitError::QueueFull { .. }) => continue,
                    Err(e) => panic!("unexpected reject: {e}"),
                }
            }
        }

        let new = SharedArtifact::open(&v2_path).unwrap();
        let mut rollout_cfg = RolloutConfig::new(images(1, 99), 0.05);
        rollout_cfg.canary_retry = RetryBudget {
            attempts: 4,
            backoff: Duration::from_micros(200),
        };
        let err = pool
            .rolling_rollout(&new, &rollout_cfg)
            .expect_err("the baseline canary cannot be admitted");
        // The saturated tickets still resolve (drained at window close).
        for t in tickets {
            t.wait().unwrap();
        }
        err
    });

    match err.error {
        ServeError::Overloaded { attempts, .. } => assert_eq!(attempts, 4),
        other => panic!("expected Overloaded, got: {other}"),
    }
    assert!(err.report.steps.is_empty(), "no replica was touched");
    assert!(!err.report.rolled_back);
    assert!(err.to_string().contains("0 steps recorded"));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression (silent partial rollback): a revert failure used to abort
/// `revert_fleet` via `?`, dropping every recorded step — the report
/// claimed a clean fleet while replicas were stuck on the new version.
/// The rollout now records every attempted step (failed swaps and failed
/// reverts included) and surfaces them inside [`pim_serve::RolloutError`].
#[test]
fn failed_reverts_are_recorded_not_silently_dropped() {
    let dir = tmp_dir("partial");
    let v1 = tiny_net(22);
    let v2_path = dir.join("v2.pimcaps");
    ModelWriter::vault_aligned()
        .save(&perturbed(&v1, 1e-4), &v2_path)
        .unwrap();

    let cfg = ReplicaSetConfig {
        replicas: 3,
        policy: RoutingPolicy::RoundRobin,
        serve: ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(300),
            queue_capacity: 64,
            workers: 1,
            execution: BatchExecution::Arena,
            admission: AdmissionPolicy::QueueBound,
        },
        fault: FaultToleranceConfig::default(),
        cache: None,
    };
    let set = ReplicaSet::from_net("stuck", &v1, &ExactMath, cfg).unwrap();
    let (err, _report) = set.run(|pool| {
        let new = SharedArtifact::open(&v2_path).unwrap();
        let rollout_cfg = RolloutConfig::new(images(1, 7), 0.05);
        // Fault injection: the moment replica 1 is updated, decommission
        // replicas 0 and 2. Replica 2's forward swap then fails (its
        // mailbox is closed), forcing a fleet revert in which replica 1
        // reverts fine but replica 0 cannot.
        pool.rolling_rollout_observed(&new, &rollout_cfg, |step| {
            if step.replica == 1 && step.outcome == ReplicaOutcome::Updated {
                pool.decommission(0);
                pool.decommission(2);
            }
        })
        .expect_err("replica 2's swap must fail")
    });

    // The first infrastructure failure (replica 2's swap) is the error.
    assert!(matches!(err.error, ServeError::InvalidConfig(_)), "{err}");
    let outcomes: Vec<(usize, ReplicaOutcome)> = err
        .report
        .steps
        .iter()
        .map(|s| (s.replica, s.outcome))
        .collect();
    assert_eq!(
        outcomes,
        vec![
            (0, ReplicaOutcome::Updated),
            (1, ReplicaOutcome::Updated),
            (2, ReplicaOutcome::SwapFailed),
            (1, ReplicaOutcome::RevertedWithFleet),
            (0, ReplicaOutcome::RevertFailed),
        ],
        "every attempted step must be recorded: {:?}",
        err.report.steps
    );
    assert!(err.report.rolled_back);
    assert_eq!(err.report.failed_reverts(), 1);
    // Replica 0 is stuck serving the new version and the report says so.
    assert_eq!(err.report.updated(), 1);
    // The failed swap left replica 2 on its old version.
    let swap_failed = &err.report.steps[2];
    assert_eq!(swap_failed.from_version, swap_failed.to_version);
    assert!(err.to_string().contains("1 failed reverts"));
    std::fs::remove_dir_all(&dir).unwrap();
}
