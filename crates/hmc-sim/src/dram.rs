//! DRAM bank timing: per-block service times with row-buffer behaviour.

use serde::{Deserialize, Serialize};

/// DRAM timing constants for one bank (DDR3-class dies stacked in the HMC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Service time for a block hitting the open row, ns (burst-limited).
    pub t_row_hit_ns: f64,
    /// Service time for a block that must activate a new row, ns
    /// (precharge + activate + CAS).
    pub t_row_miss_ns: f64,
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming {
            t_row_hit_ns: 5.0,
            t_row_miss_ns: 47.0,
        }
    }
}

impl DramTiming {
    /// Average ns per block at a given row-hit rate.
    pub fn ns_per_block(&self, row_hit_rate: f64) -> f64 {
        let h = row_hit_rate.clamp(0.0, 1.0);
        h * self.t_row_hit_ns + (1.0 - h) * self.t_row_miss_ns
    }

    /// Effective bank bandwidth (bytes/s) at a given row-hit rate.
    pub fn bank_rate(&self, block_bytes: u64, row_hit_rate: f64) -> f64 {
        block_bytes as f64 / (self.ns_per_block(row_hit_rate) * 1e-9)
    }
}

/// A bank's aggregate service model for phase-level simulation.
#[derive(Debug, Clone, Copy)]
pub struct BankModel {
    timing: DramTiming,
    block_bytes: u64,
}

impl BankModel {
    /// Creates a bank model.
    pub fn new(timing: DramTiming, block_bytes: u64) -> Self {
        BankModel {
            timing,
            block_bytes,
        }
    }

    /// Time (seconds) for this bank to serve `bytes` at `row_hit_rate`.
    pub fn service_time_s(&self, bytes: u64, row_hit_rate: f64) -> f64 {
        let blocks = bytes.div_ceil(self.block_bytes);
        blocks as f64 * self.timing.ns_per_block(row_hit_rate) * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_bounds_service_time() {
        let t = DramTiming::default();
        assert_eq!(t.ns_per_block(1.0), 5.0);
        assert_eq!(t.ns_per_block(0.0), 47.0);
        assert!((t.ns_per_block(0.5) - 26.0).abs() < 1e-9);
        // Clamping.
        assert_eq!(t.ns_per_block(2.0), 5.0);
    }

    #[test]
    fn bank_rate_at_full_hits() {
        let t = DramTiming::default();
        // 16 B / 5 ns = 3.2 GB/s.
        assert!((t.bank_rate(16, 1.0) - 3.2e9).abs() / 3.2e9 < 1e-9);
    }

    #[test]
    fn sixteen_streaming_banks_exceed_tsv() {
        // Sanity: with good mapping, a vault's 16 banks can feed the TSV
        // link (16 GB/s), so banks are not the bottleneck — conflicts are.
        let t = DramTiming::default();
        let aggregate = 16.0 * t.bank_rate(16, 0.95);
        assert!(aggregate > 16e9, "aggregate bank rate {aggregate}");
    }

    #[test]
    fn service_time_rounds_blocks() {
        let b = BankModel::new(DramTiming::default(), 16);
        let t17 = b.service_time_s(17, 1.0); // 2 blocks
        let t32 = b.service_time_s(32, 1.0);
        assert!((t17 - t32).abs() < 1e-15);
        assert_eq!(b.service_time_s(0, 1.0), 0.0);
    }
}
