//! Hybrid Memory Cube (HMC) simulator — the in-memory substrate of
//! PIM-CapsNet.
//!
//! Models an HMC Gen3-class cube per the paper's §4/Table 4: 8 GB, 32
//! vaults × 16 banks, 320 GB/s external links, 512 GB/s aggregate internal
//! (TSV) bandwidth, a crossbar connecting SerDes links and vaults, and 16
//! processing elements (PEs) on each vault's logic layer.
//!
//! Two fidelity levels:
//!
//! * [`PhaseEngine`] — deterministic queueing on aggregated per-bank /
//!   per-link demand; fast enough for the full Table 1 suite. Reports the
//!   execution / crossbar / vault-request-stall (VRS) breakdown of Fig 16a
//!   and the energy split of Fig 16b.
//! * [`event::EventSim`] — request-level simulation used in tests to
//!   validate the phase engine's queueing approximations.
//!
//! Address mapping follows Fig 13: the default HMC interleave spreads
//! consecutive sub-pages across vaults; the PIM mapping hoists the vault ID
//! to the top bits (keeping RP data vault-local) and spreads consecutive
//! blocks across banks with a dynamically sized sub-page.
//!
//! # Example
//!
//! ```
//! use hmc_sim::{AddressMapping, DefaultMapping, HmcConfig, PimMapping};
//!
//! let cfg = HmcConfig::gen3();
//! let default_map = DefaultMapping::new(&cfg);
//! let pim_map = PimMapping::new(&cfg, 64);
//! // Consecutive sub-pages land in different vaults under the default map…
//! let a = default_map.locate(0);
//! let b = default_map.locate(128);
//! assert_ne!(a.vault, b.vault);
//! // …but stay in one vault (different banks) under the PIM map.
//! let c = pim_map.locate(0);
//! let d = pim_map.locate(64);
//! assert_eq!(c.vault, d.vault);
//! assert_ne!(c.bank, d.bank);
//! ```

mod address;
mod dram;
mod energy;
pub mod event;
mod geometry;
mod pe;
mod phase;

pub use address::{
    AddressMapping, BlockLocation, DefaultMapping, NaiveVaultMapping, PimMapping, ROW_BYTES,
};
pub use dram::{BankModel, DramTiming};
pub use energy::{EnergyBreakdown, EnergyParams};
pub use geometry::HmcConfig;
pub use pe::{
    PeOp, PeProgram, PE_CYCLES_ADD, PE_CYCLES_DIV, PE_CYCLES_EXP, PE_CYCLES_ISQRT, PE_CYCLES_MAC,
    PE_CYCLES_MUL, PE_CYCLES_SHIFT,
};
pub use phase::{Phase, PhaseEngine, PhaseResult, VaultWork};
