//! HMC cube geometry and rates (HMC Gen3 / specification 2.1, §4 + Table 4).

use serde::{Deserialize, Serialize};

/// Static description of the modeled cube.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HmcConfig {
    /// Number of vaults (32 in Gen3).
    pub vaults: usize,
    /// DRAM banks per vault (16).
    pub banks_per_vault: usize,
    /// Total capacity in bytes (8 GB).
    pub capacity_bytes: u64,
    /// External (SerDes link) bandwidth, GB/s (320).
    pub external_gbps: f64,
    /// Aggregate internal TSV bandwidth, GB/s (512).
    pub internal_gbps: f64,
    /// Crossbar switch capacity, GB/s.
    pub xbar_gbps: f64,
    /// Processing elements per vault (16, §5.2.1).
    pub pes_per_vault: usize,
    /// PE clock in GHz (312.5 MHz, Table 4).
    pub pe_clock_ghz: f64,
    /// Concurrent issue lanes per PE. The Fig 11(c) PE owns several adder/
    /// multiplier banks but steers one operation flow through them via
    /// muxes, so the paper-faithful configuration is 1.
    pub pe_lanes: usize,
    /// Memory access granularity — one block (16 B).
    pub block_bytes: u64,
    /// Packet head+tail overhead per inter-vault message, bytes
    /// (`SIZE_pkt` in the paper's Eqs 8/10/12).
    pub packet_overhead_bytes: u64,
}

impl HmcConfig {
    /// The paper's configuration (Table 4).
    pub fn gen3() -> Self {
        HmcConfig {
            vaults: 32,
            banks_per_vault: 16,
            capacity_bytes: 8 * 1024 * 1024 * 1024,
            external_gbps: 320.0,
            internal_gbps: 512.0,
            xbar_gbps: 512.0,
            pes_per_vault: 16,
            pe_clock_ghz: 0.3125,
            pe_lanes: 1,
            block_bytes: 16,
            packet_overhead_bytes: 16,
        }
    }

    /// Internal bandwidth available to a single vault, GB/s.
    pub fn per_vault_gbps(&self) -> f64 {
        self.internal_gbps / self.vaults as f64
    }

    /// Total PEs in the cube.
    pub fn total_pes(&self) -> usize {
        self.vaults * self.pes_per_vault
    }

    /// Peak MAC throughput of all PEs (MACs per second); a MAC costs two
    /// unit traversals on the mux-steered PE.
    pub fn peak_macs_per_s(&self) -> f64 {
        self.total_pes() as f64 * self.pe_lanes as f64 * self.pe_clock_ghz * 1e9 / 2.0
    }

    /// Returns a copy with a different PE clock (Fig 18's frequency sweep:
    /// 312.5 / 625 / 937.5 MHz).
    pub fn with_pe_clock_ghz(mut self, ghz: f64) -> Self {
        self.pe_clock_ghz = ghz;
        self
    }

    /// Bytes of capacity per vault.
    pub fn vault_capacity_bytes(&self) -> u64 {
        self.capacity_bytes / self.vaults as u64
    }
}

impl Default for HmcConfig {
    fn default() -> Self {
        Self::gen3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen3_matches_table4() {
        let c = HmcConfig::gen3();
        assert_eq!(c.vaults, 32);
        assert_eq!(c.banks_per_vault, 16);
        assert_eq!(c.capacity_bytes, 8 << 30);
        assert_eq!(c.external_gbps, 320.0);
        assert_eq!(c.internal_gbps, 512.0);
        assert_eq!(c.pes_per_vault, 16);
        assert!((c.pe_clock_ghz - 0.3125).abs() < 1e-12);
    }

    #[test]
    fn derived_rates() {
        let c = HmcConfig::gen3();
        assert_eq!(c.per_vault_gbps(), 16.0);
        assert_eq!(c.total_pes(), 512);
        // 512 PEs × 312.5 MHz / 2 cycles per MAC = 80 GMAC/s.
        assert!((c.peak_macs_per_s() - 80e9).abs() / 80e9 < 1e-12);
    }

    #[test]
    fn clock_sweep_builder() {
        let c = HmcConfig::gen3().with_pe_clock_ghz(0.9375);
        assert!((c.peak_macs_per_s() - 240e9).abs() / 240e9 < 1e-12);
    }
}
