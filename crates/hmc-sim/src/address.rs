//! Memory address mapping (§5.3.1, Fig 13).
//!
//! Memory access granularity is a 16-byte **block**; a **sub-page**
//! (the spec's MAX block) groups 16 B–256 B of consecutive blocks served by
//! one bank at a time.
//!
//! * [`DefaultMapping`] — HMC Gen3 default (Fig 13a): consecutive sub-pages
//!   interleave first across **vaults**, then across banks. Great for host
//!   bandwidth, terrible for vault-local PIM work.
//! * [`PimMapping`] — the paper's scheme (Fig 13b): the vault ID moves to
//!   the top bits so a contiguous allocation stays in one vault, the bank ID
//!   sits directly above the (dynamically sized) sub-page so concurrent PE
//!   requests spread across banks, and the sub-page size adapts to the
//!   request size of each variable so one PE's consecutive blocks stay in
//!   one bank.
//! * [`NaiveVaultMapping`] — vault ID on top but banks filled sequentially;
//!   this is what the **PIM-Inter** comparison design uses, and why it
//!   drowns in bank conflicts (Fig 16a's VRS bars).

use crate::geometry::HmcConfig;

/// Where a block lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockLocation {
    /// Vault index.
    pub vault: usize,
    /// Bank index within the vault.
    pub bank: usize,
    /// Row identifier within the bank (used for row-hit modeling).
    pub row: u64,
}

/// DRAM row size used for row-hit accounting.
pub const ROW_BYTES: u64 = 2048;

/// An address-mapping scheme.
pub trait AddressMapping {
    /// Maps a byte address to its block location.
    fn locate(&self, byte_addr: u64) -> BlockLocation;

    /// Short scheme name.
    fn name(&self) -> &'static str;

    /// Distribution of a contiguous byte range over (vault, bank) pairs:
    /// returns bytes per (vault, bank).
    fn span_distribution(&self, start: u64, len: u64, cfg: &HmcConfig) -> Vec<Vec<u64>> {
        let mut out = vec![vec![0u64; cfg.banks_per_vault]; cfg.vaults];
        let block = cfg.block_bytes;
        let mut addr = start - start % block;
        while addr < start + len {
            let loc = self.locate(addr);
            out[loc.vault][loc.bank] += block;
            addr += block;
        }
        out
    }
}

fn bits_for(n: usize) -> u32 {
    debug_assert!(n.is_power_of_two(), "geometry extents must be powers of 2");
    n.trailing_zeros()
}

/// The default HMC Gen3 mapping (Fig 13a): from low to high bits of the
/// block address — block-in-sub-page, vault ID, bank ID, sub-page ID.
#[derive(Debug, Clone)]
pub struct DefaultMapping {
    vault_bits: u32,
    bank_bits: u32,
    subpage_block_bits: u32,
    block_bytes: u64,
}

impl DefaultMapping {
    /// Creates the default mapping with the spec's 128 B sub-page.
    pub fn new(cfg: &HmcConfig) -> Self {
        Self::with_subpage(cfg, 128)
    }

    /// Creates the default mapping with an explicit sub-page size.
    ///
    /// # Panics
    ///
    /// Panics if `subpage_bytes` is not a power-of-two multiple of the
    /// block size.
    pub fn with_subpage(cfg: &HmcConfig, subpage_bytes: u64) -> Self {
        assert!(subpage_bytes >= cfg.block_bytes);
        assert!(subpage_bytes.is_power_of_two());
        DefaultMapping {
            vault_bits: bits_for(cfg.vaults),
            bank_bits: bits_for(cfg.banks_per_vault),
            subpage_block_bits: (subpage_bytes / cfg.block_bytes).trailing_zeros(),
            block_bytes: cfg.block_bytes,
        }
    }
}

impl AddressMapping for DefaultMapping {
    fn locate(&self, byte_addr: u64) -> BlockLocation {
        let block = byte_addr / self.block_bytes;
        let after_sub = block >> self.subpage_block_bits;
        let vault = after_sub & ((1 << self.vault_bits) - 1);
        let after_vault = after_sub >> self.vault_bits;
        let bank = after_vault & ((1 << self.bank_bits) - 1);
        let subpage_id = after_vault >> self.bank_bits;
        BlockLocation {
            vault: vault as usize,
            bank: bank as usize,
            row: subpage_id * (self.block_bytes << self.subpage_block_bits) / ROW_BYTES,
        }
    }

    fn name(&self) -> &'static str {
        "hmc-default"
    }
}

/// The paper's PIM mapping (Fig 13b): vault ID at the top, bank ID directly
/// above a dynamically sized sub-page.
#[derive(Debug, Clone)]
pub struct PimMapping {
    vault_bits: u32,
    bank_bits: u32,
    subpage_block_bits: u32,
    block_bytes: u64,
    vault_region_blocks: u64,
}

impl PimMapping {
    /// Creates the PIM mapping with the sub-page sized for `request_bytes`
    /// (the per-PE data request size this allocation serves; the paper's
    /// indicator bits express 16 B–256 B).
    ///
    /// # Panics
    ///
    /// Panics if the derived sub-page is not a power of two.
    pub fn new(cfg: &HmcConfig, request_bytes: u64) -> Self {
        let clamped = request_bytes
            .next_power_of_two()
            .clamp(cfg.block_bytes, 256);
        PimMapping {
            vault_bits: bits_for(cfg.vaults),
            bank_bits: bits_for(cfg.banks_per_vault),
            subpage_block_bits: (clamped / cfg.block_bytes).trailing_zeros(),
            block_bytes: cfg.block_bytes,
            vault_region_blocks: cfg.vault_capacity_bytes() / cfg.block_bytes,
        }
    }

    /// The dynamic sub-page size chosen for this allocation.
    pub fn subpage_bytes(&self) -> u64 {
        self.block_bytes << self.subpage_block_bits
    }
}

impl AddressMapping for PimMapping {
    fn locate(&self, byte_addr: u64) -> BlockLocation {
        let block = byte_addr / self.block_bytes;
        let vault = (block / self.vault_region_blocks) & ((1 << self.vault_bits) - 1);
        let within = block % self.vault_region_blocks;
        let after_sub = within >> self.subpage_block_bits;
        let bank = after_sub & ((1 << self.bank_bits) - 1);
        let subpage_id = after_sub >> self.bank_bits;
        BlockLocation {
            vault: vault as usize,
            bank: bank as usize,
            row: subpage_id * (self.block_bytes << self.subpage_block_bits) / ROW_BYTES,
        }
    }

    fn name(&self) -> &'static str {
        "pim-capsnet"
    }
}

/// Vault-local but bank-naive mapping: vault ID at the top (so data stays
/// vault-local), banks filled **sequentially** — consecutive data occupies
/// one bank until its 16 MB region is full. Concurrent PEs working on one
/// tensor shard therefore pile onto the same bank; this is the addressing
/// behaviour of the PIM-Inter comparison point (§6.2.2).
#[derive(Debug, Clone)]
pub struct NaiveVaultMapping {
    vault_bits: u32,
    block_bytes: u64,
    vault_region_blocks: u64,
    bank_region_blocks: u64,
}

impl NaiveVaultMapping {
    /// Creates the naive vault-local mapping.
    pub fn new(cfg: &HmcConfig) -> Self {
        let vault_region_blocks = cfg.vault_capacity_bytes() / cfg.block_bytes;
        NaiveVaultMapping {
            vault_bits: bits_for(cfg.vaults),
            block_bytes: cfg.block_bytes,
            vault_region_blocks,
            bank_region_blocks: vault_region_blocks / cfg.banks_per_vault as u64,
        }
    }
}

impl AddressMapping for NaiveVaultMapping {
    fn locate(&self, byte_addr: u64) -> BlockLocation {
        let block = byte_addr / self.block_bytes;
        let vault = (block / self.vault_region_blocks) & ((1 << self.vault_bits) - 1);
        let within = block % self.vault_region_blocks;
        let bank = within / self.bank_region_blocks;
        let row = (within % self.bank_region_blocks) * self.block_bytes / ROW_BYTES;
        BlockLocation {
            vault: vault as usize,
            bank: bank as usize,
            row,
        }
    }

    fn name(&self) -> &'static str {
        "naive-vault-local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HmcConfig {
        HmcConfig::gen3()
    }

    #[test]
    fn default_interleaves_vaults_first() {
        let m = DefaultMapping::new(&cfg());
        // Consecutive sub-pages (128 B apart) hit consecutive vaults.
        let locs: Vec<usize> = (0..32).map(|i| m.locate(i * 128).vault).collect();
        for (i, &v) in locs.iter().enumerate() {
            assert_eq!(v, i, "sub-page {i} should land in vault {i}");
        }
        // Blocks inside one sub-page share a vault and bank.
        let a = m.locate(0);
        let b = m.locate(112);
        assert_eq!(a.vault, b.vault);
        assert_eq!(a.bank, b.bank);
    }

    #[test]
    fn default_rotates_banks_after_vaults() {
        let m = DefaultMapping::new(&cfg());
        // After 32 sub-pages (one full vault rotation) the bank advances.
        let first = m.locate(0);
        let wrapped = m.locate(32 * 128);
        assert_eq!(wrapped.vault, first.vault);
        assert_eq!(wrapped.bank, first.bank + 1);
    }

    #[test]
    fn pim_keeps_contiguous_data_vault_local() {
        let m = PimMapping::new(&cfg(), 64);
        assert_eq!(m.subpage_bytes(), 64);
        // A 1 MB range stays entirely in vault 0.
        for off in (0..1_048_576).step_by(4096) {
            assert_eq!(m.locate(off).vault, 0);
        }
        // The next vault region starts 256 MB later.
        assert_eq!(m.locate(cfg().vault_capacity_bytes()).vault, 1);
    }

    #[test]
    fn pim_spreads_consecutive_subpages_over_banks() {
        let m = PimMapping::new(&cfg(), 64);
        let banks: Vec<usize> = (0..16).map(|i| m.locate(i * 64).bank).collect();
        for (i, &b) in banks.iter().enumerate() {
            assert_eq!(b, i, "sub-page {i} should land in bank {i}");
        }
    }

    #[test]
    fn pim_subpage_clamps_to_spec_range() {
        assert_eq!(PimMapping::new(&cfg(), 8).subpage_bytes(), 16);
        assert_eq!(PimMapping::new(&cfg(), 100).subpage_bytes(), 128);
        assert_eq!(PimMapping::new(&cfg(), 5000).subpage_bytes(), 256);
    }

    #[test]
    fn naive_mapping_concentrates_banks() {
        let m = NaiveVaultMapping::new(&cfg());
        // A 4 MB shard sits in a single bank (bank region = 16 MB).
        let dist = m.span_distribution(0, 4 << 20, &cfg());
        let used: usize = dist[0].iter().filter(|&&b| b > 0).count();
        assert_eq!(used, 1, "naive mapping should use one bank for 4 MB");
        assert!(dist.iter().skip(1).all(|v| v.iter().all(|&b| b == 0)));
    }

    #[test]
    fn pim_distribution_covers_all_banks() {
        let c = cfg();
        let m = PimMapping::new(&c, 64);
        let dist = m.span_distribution(0, 1 << 20, &c);
        let used: usize = dist[0].iter().filter(|&&b| b > 0).count();
        assert_eq!(used, c.banks_per_vault, "PIM mapping should use all banks");
        // Bytes spread evenly (within one sub-page).
        let max = dist[0].iter().max().unwrap();
        let min = dist[0].iter().min().unwrap();
        assert!(max - min <= 64);
    }

    #[test]
    fn default_distribution_covers_all_vaults() {
        let c = cfg();
        let m = DefaultMapping::new(&c);
        let dist = m.span_distribution(0, 1 << 20, &c);
        for (v, banks) in dist.iter().enumerate() {
            assert!(
                banks.iter().sum::<u64>() > 0,
                "vault {v} received no data under default interleave"
            );
        }
    }

    #[test]
    fn rows_advance_within_bank() {
        let c = cfg();
        let m = NaiveVaultMapping::new(&c);
        let r0 = m.locate(0).row;
        let r1 = m.locate(ROW_BYTES).row;
        assert_eq!(r1, r0 + 1);
    }
}
