//! The customized processing element (§5.2.2, Fig 11).
//!
//! Each PE is built from adders, multipliers, bit shifters and muxes; the
//! special functions are *routed through* those units rather than having
//! dedicated hardware:
//!
//! * MAC — flow `1→2` (one pipelined cycle per lane-op);
//! * inverse square root — flow `3 2 1 2 1` (bit shift seed + Newton step):
//!   5 unit traversals;
//! * exponential — flow `1 2 2 3` (FP32 add, recovery multiply, bit shift):
//!   4 traversals;
//! * division — reciprocal bit-trick + Newton + multiply: 4 traversals.

use serde::{Deserialize, Serialize};

use crate::geometry::HmcConfig;

/// PE unit traversals per MAC (flow `1→2`: the mux-steered multiplier then
/// adder; the PE serializes unit traversals rather than pipelining them).
pub const PE_CYCLES_MAC: u64 = 2;
/// PE unit traversals per standalone add.
pub const PE_CYCLES_ADD: u64 = 1;
/// PE unit traversals per standalone multiply.
pub const PE_CYCLES_MUL: u64 = 1;
/// PE unit traversals per bit shift.
pub const PE_CYCLES_SHIFT: u64 = 1;
/// PE unit traversals per approximated exponential (flow `1 2 2 3`).
pub const PE_CYCLES_EXP: u64 = 4;
/// PE unit traversals per approximated inverse sqrt (flow `3 2 1 2 1`).
pub const PE_CYCLES_ISQRT: u64 = 5;
/// PE unit traversals per approximated division.
pub const PE_CYCLES_DIV: u64 = 4;

/// One class of PE operation with a repeat count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeOp {
    /// Multiply-accumulate pairs routed through the mux-steered flow
    /// (`1→2`), as the routing procedure issues them.
    Mac(u64),
    /// Dense weight-stationary MAC streams (conv/FC lowering): the regular
    /// dataflow drives all four multiplier/adder banks in parallel, one MAC
    /// per bank per cycle — 8× the throughput of the mux-steered flow.
    DenseMac(u64),
    /// Standalone additions.
    Add(u64),
    /// Standalone multiplications.
    Mul(u64),
    /// Bit shifts.
    Shift(u64),
    /// Approximated exponentials.
    Exp(u64),
    /// Approximated inverse square roots.
    InvSqrt(u64),
    /// Approximated divisions.
    Div(u64),
}

impl PeOp {
    /// Count of operations.
    pub fn count(&self) -> u64 {
        match *self {
            PeOp::Mac(n)
            | PeOp::DenseMac(n)
            | PeOp::Add(n)
            | PeOp::Mul(n)
            | PeOp::Shift(n)
            | PeOp::Exp(n)
            | PeOp::InvSqrt(n)
            | PeOp::Div(n) => n,
        }
    }

    /// Unit traversals (cycles at one lane) per single operation.
    ///
    /// `DenseMac` is not expressible per-op (it packs 4 MACs per cycle);
    /// see [`PeOp::lane_cycles`].
    pub fn cycles_each(&self) -> u64 {
        match self {
            PeOp::Mac(_) => PE_CYCLES_MAC,
            PeOp::DenseMac(_) => 1,
            PeOp::Add(_) => PE_CYCLES_ADD,
            PeOp::Mul(_) => PE_CYCLES_MUL,
            PeOp::Shift(_) => PE_CYCLES_SHIFT,
            PeOp::Exp(_) => PE_CYCLES_EXP,
            PeOp::InvSqrt(_) => PE_CYCLES_ISQRT,
            PeOp::Div(_) => PE_CYCLES_DIV,
        }
    }

    /// Total lane-cycles for this op batch.
    pub fn lane_cycles(&self) -> u64 {
        match self {
            // Four parallel banks, one MAC each per cycle.
            PeOp::DenseMac(n) => n.div_ceil(4),
            _ => self.count() * self.cycles_each(),
        }
    }
}

/// The work one vault's PE array executes in a phase, plus its memory
/// traffic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PeProgram {
    /// Operation batches.
    pub ops: Vec<PeOp>,
    /// Bytes the PEs read from the vault.
    pub read_bytes: u64,
    /// Bytes the PEs write to the vault.
    pub write_bytes: u64,
}

impl PeProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an op batch (skipping zero counts).
    pub fn push(&mut self, op: PeOp) {
        if op.count() > 0 {
            self.ops.push(op);
        }
    }

    /// Total lane-cycles across all ops.
    pub fn lane_cycles(&self) -> u64 {
        self.ops.iter().map(|o| o.lane_cycles()).sum()
    }

    /// Cycles for the vault's whole PE array to retire this program
    /// (lane-cycles spread over `pes_per_vault × pe_lanes` lanes).
    pub fn array_cycles(&self, cfg: &HmcConfig) -> u64 {
        let lanes = (cfg.pes_per_vault * cfg.pe_lanes) as u64;
        self.lane_cycles().div_ceil(lanes)
    }

    /// Seconds for the vault's PE array to retire this program.
    pub fn array_time_s(&self, cfg: &HmcConfig) -> f64 {
        self.array_cycles(cfg) as f64 / (cfg.pe_clock_ghz * 1e9)
    }

    /// Total bytes moved.
    pub fn traffic_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Merges another program into this one.
    pub fn merge(&mut self, other: &PeProgram) {
        self.ops.extend(other.ops.iter().copied());
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_cycle_costs_match_paper_flows() {
        assert_eq!(PeOp::Mac(1).lane_cycles(), 2); // flow 1→2
        assert_eq!(PeOp::DenseMac(8).lane_cycles(), 2); // 4 banks in parallel
        assert_eq!(PeOp::Exp(1).lane_cycles(), 4); // flow 1→2→2→3
        assert_eq!(PeOp::InvSqrt(1).lane_cycles(), 5); // flow 3→2→1→2→1
        assert_eq!(PeOp::Div(1).lane_cycles(), 4);
    }

    #[test]
    fn program_accumulates() {
        let mut p = PeProgram::new();
        p.push(PeOp::Mac(1000));
        p.push(PeOp::Exp(10));
        p.push(PeOp::Add(0)); // dropped
        assert_eq!(p.ops.len(), 2);
        assert_eq!(p.lane_cycles(), 2040);
    }

    #[test]
    fn array_cycles_divide_by_lanes() {
        let cfg = HmcConfig::gen3(); // 16 PEs × 1 lane = 16 lanes
        let mut p = PeProgram::new();
        p.push(PeOp::Mac(6400)); // 12_800 lane-cycles
        assert_eq!(p.array_cycles(&cfg), 800);
        // 800 cycles at 312.5 MHz = 2.56 µs.
        assert!((p.array_time_s(&cfg) - 2.56e-6).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_traffic() {
        let mut a = PeProgram {
            ops: vec![PeOp::Mac(10)],
            read_bytes: 100,
            write_bytes: 50,
        };
        let b = PeProgram {
            ops: vec![PeOp::Exp(5)],
            read_bytes: 10,
            write_bytes: 5,
        };
        a.merge(&b);
        assert_eq!(a.ops.len(), 2);
        assert_eq!(a.traffic_bytes(), 165);
    }
}
