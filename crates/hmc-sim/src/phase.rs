//! The phase-level HMC engine.
//!
//! A [`Phase`] is one bulk-synchronous step of in-memory execution: every
//! vault has a [`PeProgram`] and a per-bank traffic distribution; the phase
//! may also move data across the crossbar (inter-vault aggregation, or —
//! for the PIM-Intra comparison design — *all* memory traffic).
//!
//! Timing per vault: PE compute overlaps with memory streaming; memory time
//! is the max of the TSV-link bound and the busiest bank (the excess of the
//! busiest bank over the link bound is the **vault request stall**, VRS).
//! Crossbar time either serializes after the compute (fine-grained remote
//! access, `memory_via_xbar`) or is the explicit aggregation-message time.

use serde::{Deserialize, Serialize};

use crate::dram::{BankModel, DramTiming};
use crate::energy::{EnergyBreakdown, EnergyParams};
use crate::geometry::HmcConfig;
use crate::pe::PeProgram;

/// Usable fraction of crossbar bandwidth under block-granularity
/// arbitration (the PIM-Intra access pattern).
pub const FINE_GRAIN_XBAR_EFFICIENCY: f64 = 0.5;

/// Work assigned to one vault for a phase.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct VaultWork {
    /// The PE array's operations and traffic.
    pub program: PeProgram,
    /// Traffic per bank, bytes (length = banks per vault; empty = spread
    /// the program's traffic evenly over all banks).
    pub bank_bytes: Vec<u64>,
    /// Row-buffer hit rate of this vault's access pattern.
    pub row_hit_rate: f64,
}

impl VaultWork {
    /// Total bytes this vault moves.
    pub fn total_bytes(&self) -> u64 {
        if self.bank_bytes.is_empty() {
            self.program.traffic_bytes()
        } else {
            self.bank_bytes.iter().sum()
        }
    }
}

/// One bulk-synchronous in-memory execution step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Display name (e.g. `it0.eq2`).
    pub name: String,
    /// Per-vault work (length = vault count).
    pub vaults: Vec<VaultWork>,
    /// Inter-vault bytes crossing the crossbar (payload only; packet
    /// overhead is added from the message count).
    pub xbar_payload_bytes: u64,
    /// Number of crossbar messages (each pays head+tail overhead).
    pub xbar_messages: u64,
    /// `true` when PEs reach memory *through* the crossbar (PIM-Intra's
    /// centralized compute): all vault traffic then also pays the crossbar,
    /// serialized with execution (fine-grained remote access cannot be
    /// overlapped).
    pub memory_via_xbar: bool,
}

impl Phase {
    /// A phase with no crossbar traffic.
    pub fn local(name: impl Into<String>, vaults: Vec<VaultWork>) -> Self {
        Phase {
            name: name.into(),
            vaults,
            xbar_payload_bytes: 0,
            xbar_messages: 0,
            memory_via_xbar: false,
        }
    }
}

/// Timing/energy result of one phase (or a sum over phases).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseResult {
    /// Wall-clock seconds.
    pub time_s: f64,
    /// Conflict-free execution component (compute/TSV-bound).
    pub exec_s: f64,
    /// Crossbar exposure.
    pub xbar_s: f64,
    /// Vault-request-stall exposure (bank conflicts).
    pub vrs_s: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl PhaseResult {
    /// Accumulates another result.
    pub fn add(&mut self, other: &PhaseResult) {
        self.time_s += other.time_s;
        self.exec_s += other.exec_s;
        self.xbar_s += other.xbar_s;
        self.vrs_s += other.vrs_s;
        self.energy.add(&other.energy);
    }
}

/// The phase-level HMC simulator.
#[derive(Debug, Clone)]
pub struct PhaseEngine {
    cfg: HmcConfig,
    dram: DramTiming,
    energy: EnergyParams,
}

impl PhaseEngine {
    /// Engine with default DRAM timing and energy constants.
    pub fn new(cfg: HmcConfig) -> Self {
        PhaseEngine {
            cfg,
            dram: DramTiming::default(),
            energy: EnergyParams::default(),
        }
    }

    /// Engine with explicit DRAM timing and energy parameters.
    pub fn with_models(cfg: HmcConfig, dram: DramTiming, energy: EnergyParams) -> Self {
        PhaseEngine { cfg, dram, energy }
    }

    /// The cube configuration.
    pub fn config(&self) -> &HmcConfig {
        &self.cfg
    }

    /// The energy parameters.
    pub fn energy_params(&self) -> &EnergyParams {
        &self.energy
    }

    /// Runs one phase.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `vaults` matches the configured vault count and
    /// bank vectors match the bank count.
    pub fn run_phase(&self, phase: &Phase) -> PhaseResult {
        debug_assert!(phase.vaults.len() <= self.cfg.vaults);
        let bank = BankModel::new(self.dram, self.cfg.block_bytes);
        let per_vault_bw = self.cfg.per_vault_gbps() * 1e9;

        let mut exec = 0.0f64; // conflict-free critical path
        let mut with_conflicts = 0.0f64;
        let mut dram_bytes_total = 0u64;

        for work in &phase.vaults {
            let t_pe = work.program.array_time_s(&self.cfg);
            let total_bytes = work.total_bytes();
            dram_bytes_total += total_bytes;
            let t_tsv = total_bytes as f64 / per_vault_bw;
            let t_worst_bank = if work.bank_bytes.is_empty() {
                // Even spread over all banks.
                bank.service_time_s(
                    total_bytes.div_ceil(self.cfg.banks_per_vault as u64),
                    work.row_hit_rate,
                )
            } else {
                debug_assert_eq!(work.bank_bytes.len(), self.cfg.banks_per_vault);
                work.bank_bytes
                    .iter()
                    .map(|&b| bank.service_time_s(b, work.row_hit_rate))
                    .fold(0.0, f64::max)
            };
            let ideal = t_pe.max(t_tsv);
            let conflicted = t_pe.max(t_tsv.max(t_worst_bank));
            exec = exec.max(ideal);
            with_conflicts = with_conflicts.max(conflicted);
        }
        let vrs = with_conflicts - exec;

        // Crossbar.
        let pkt = phase.xbar_messages * self.cfg.packet_overhead_bytes;
        let mut xbar_bytes = phase.xbar_payload_bytes + pkt;
        if phase.memory_via_xbar {
            // All vault traffic also crosses the switch, block by block —
            // each block pays packet overhead.
            let blocks = dram_bytes_total.div_ceil(self.cfg.block_bytes);
            xbar_bytes += dram_bytes_total + blocks * self.cfg.packet_overhead_bytes;
        }
        // Fine-grained (block-granularity) remote access cannot keep the
        // switch ports busy back-to-back: arbitration halves the usable
        // rate. Bulk aggregation messages stream at full rate.
        let xbar_rate = if phase.memory_via_xbar {
            self.cfg.xbar_gbps * 1e9 * FINE_GRAIN_XBAR_EFFICIENCY
        } else {
            self.cfg.xbar_gbps * 1e9
        };
        let t_xbar = xbar_bytes as f64 / xbar_rate;
        // Fine-grained remote access serializes with execution; explicit
        // aggregation messages also serialize (they happen between phases),
        // so the crossbar exposure is additive in both modes.
        let time = with_conflicts + t_xbar;

        // Energy.
        let mut pe_j = 0.0;
        for work in &phase.vaults {
            for op in &work.program.ops {
                pe_j += self.energy.op_energy(op);
            }
        }
        let blocks_total = dram_bytes_total.div_ceil(self.cfg.block_bytes);
        let energy = EnergyBreakdown {
            execution_j: pe_j + time * self.energy.logic_static_w,
            dram_j: dram_bytes_total as f64 * self.energy.pj_dram_byte
                + time * self.energy.dram_static_w,
            xbar_j: xbar_bytes as f64 * self.energy.pj_xbar_byte,
            vault_j: blocks_total as f64 * self.energy.pj_vault_block,
        };

        PhaseResult {
            time_s: time,
            exec_s: exec,
            xbar_s: t_xbar,
            vrs_s: vrs,
            energy,
        }
    }

    /// Runs a sequence of phases, summing results.
    pub fn run(&self, phases: &[Phase]) -> PhaseResult {
        let mut total = PhaseResult::default();
        for p in phases {
            total.add(&self.run_phase(p));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::PeOp;

    fn cfg() -> HmcConfig {
        HmcConfig::gen3()
    }

    fn even_vault(bytes: u64, macs: u64) -> VaultWork {
        let mut program = PeProgram::new();
        program.push(PeOp::Mac(macs));
        program.read_bytes = bytes;
        VaultWork {
            program,
            bank_bytes: Vec::new(),
            row_hit_rate: 0.95,
        }
    }

    #[test]
    fn compute_bound_phase() {
        let e = PhaseEngine::new(cfg());
        // 16 lanes × 312.5 MHz = 5 G lane-ops/s per vault; a MAC costs two
        // lane-cycles, so 2.5M MACs → 1 ms.
        let phase = Phase::local("c", vec![even_vault(1000, 2_500_000); 32]);
        let r = e.run_phase(&phase);
        assert!((r.time_s - 1.0e-3).abs() / 1.0e-3 < 0.01, "{}", r.time_s);
        assert!(r.vrs_s < 1e-9);
        assert!(r.xbar_s < 1e-12);
    }

    #[test]
    fn memory_bound_phase_hits_tsv_limit() {
        let e = PhaseEngine::new(cfg());
        // 16 MB per vault at 16 GB/s TSV = 1 ms; trivial compute.
        let phase = Phase::local("m", vec![even_vault(16_000_000, 1000); 32]);
        let r = e.run_phase(&phase);
        assert!((r.time_s - 1.0e-3).abs() / 1.0e-3 < 0.05, "{}", r.time_s);
        assert!(r.vrs_s < 0.05 * r.time_s, "even spread should not stall");
    }

    #[test]
    fn bank_concentration_creates_vrs() {
        let e = PhaseEngine::new(cfg());
        let mut work = even_vault(16_000_000, 1000);
        // All 16 MB in one bank: 1M blocks × ~5-47 ns each.
        let mut banks = vec![0u64; 16];
        banks[3] = 16_000_000;
        work.bank_bytes = banks;
        work.row_hit_rate = 0.75;
        let phase = Phase::local("conflict", vec![work; 32]);
        let r = e.run_phase(&phase);
        assert!(
            r.vrs_s > r.exec_s,
            "one-bank concentration must stall: vrs {} exec {}",
            r.vrs_s,
            r.exec_s
        );
    }

    #[test]
    fn xbar_routing_serializes() {
        let e = PhaseEngine::new(cfg());
        let mut phase = Phase::local("remote", vec![even_vault(16_000_000, 1000); 32]);
        phase.memory_via_xbar = true;
        let local = e.run_phase(&Phase::local(
            "local",
            vec![even_vault(16_000_000, 1000); 32],
        ));
        let remote = e.run_phase(&phase);
        assert!(
            remote.time_s > 1.8 * local.time_s,
            "crossbar path should dominate"
        );
        assert!(remote.xbar_s > remote.exec_s);
    }

    #[test]
    fn aggregation_messages_pay_packet_overhead() {
        let e = PhaseEngine::new(cfg());
        let mut phase = Phase::local("agg", vec![even_vault(0, 0); 32]);
        phase.xbar_payload_bytes = 1 << 20;
        phase.xbar_messages = 65536; // 16 B payload each → overhead doubles bytes
        let r = e.run_phase(&phase);
        let expected = (2.0 * (1 << 20) as f64) / (512e9);
        assert!((r.xbar_s - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn run_sums_phases() {
        let e = PhaseEngine::new(cfg());
        let p = Phase::local("p", vec![even_vault(1_000_000, 1_000_000); 32]);
        let single = e.run_phase(&p);
        let double = e.run(&[p.clone(), p]);
        assert!((double.time_s - 2.0 * single.time_s).abs() < 1e-12);
        assert!((double.energy.total() - 2.0 * single.energy.total()).abs() < 1e-12);
    }

    #[test]
    fn energy_has_all_components() {
        let e = PhaseEngine::new(cfg());
        let mut phase = Phase::local("e", vec![even_vault(1_000_000, 1_000_000); 32]);
        phase.xbar_payload_bytes = 1000;
        phase.xbar_messages = 10;
        let r = e.run_phase(&phase);
        assert!(r.energy.execution_j > 0.0);
        assert!(r.energy.dram_j > 0.0);
        assert!(r.energy.xbar_j > 0.0);
        assert!(r.energy.vault_j > 0.0);
    }

    #[test]
    fn slowest_vault_sets_the_pace() {
        let e = PhaseEngine::new(cfg());
        let mut vaults = vec![even_vault(1000, 1000); 32];
        vaults[7] = even_vault(16_000_000, 5_000_000);
        let r = e.run_phase(&Phase::local("imbalanced", vaults));
        // Vault 7 compute: 5M MACs × 2 / 16 lanes / 312.5 MHz = 2 ms.
        assert!((r.time_s - 2.0e-3).abs() / 2.0e-3 < 0.05, "{}", r.time_s);
    }
}
