//! Request-level (event-driven) vault simulator.
//!
//! Used to validate the phase engine's deterministic queueing: individual
//! block requests from PEs are issued against per-bank FCFS queues with
//! row-buffer state, and the makespan is compared against
//! [`crate::PhaseEngine`]'s aggregate estimate in integration tests.
//!
//! This simulator is intentionally small-scale (one vault at a time) — the
//! phase engine handles full-size workloads; this one establishes its
//! trustworthiness.

use crate::dram::DramTiming;
use crate::geometry::HmcConfig;

/// One block-granularity memory request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Issuing PE index.
    pub pe: usize,
    /// Target bank.
    pub bank: usize,
    /// Target row (for row-hit modeling).
    pub row: u64,
    /// Issue cycle (PE clock domain).
    pub issue_cycle: u64,
}

/// Result of an event simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventResult {
    /// Total makespan in seconds.
    pub time_s: f64,
    /// Total bank-busy seconds summed over banks.
    pub bank_busy_s: f64,
    /// Observed row-hit rate.
    pub row_hit_rate: f64,
    /// Maximum queue depth observed at any bank.
    pub max_queue_depth: usize,
}

/// Event-driven single-vault simulator.
#[derive(Debug, Clone)]
pub struct EventSim {
    cfg: HmcConfig,
    dram: DramTiming,
}

impl EventSim {
    /// Creates the simulator.
    pub fn new(cfg: HmcConfig) -> Self {
        EventSim {
            cfg,
            dram: DramTiming::default(),
        }
    }

    /// Creates with explicit DRAM timing.
    pub fn with_dram(cfg: HmcConfig, dram: DramTiming) -> Self {
        EventSim { cfg, dram }
    }

    /// Simulates a request stream against one vault's banks.
    ///
    /// Requests must be sorted by `issue_cycle`; each bank serves FCFS with
    /// open-row policy.
    ///
    /// # Panics
    ///
    /// Panics if a request names a bank outside the configuration.
    pub fn run(&self, requests: &[Request]) -> EventResult {
        let banks = self.cfg.banks_per_vault;
        let mut bank_free_at = vec![0.0f64; banks];
        let mut open_row: Vec<Option<u64>> = vec![None; banks];
        let mut bank_busy = 0.0f64;
        let mut hits = 0usize;
        let mut queue_depth = vec![0usize; banks];
        let mut max_depth = 0usize;
        let mut end = 0.0f64;
        let cycle_s = 1.0 / (self.cfg.pe_clock_ghz * 1e9);

        // Track in-flight completion times per bank to estimate queue depth.
        let mut completions: Vec<Vec<f64>> = vec![Vec::new(); banks];

        for req in requests {
            assert!(req.bank < banks, "bank {} out of range", req.bank);
            let arrival = req.issue_cycle as f64 * cycle_s;
            let hit = open_row[req.bank] == Some(req.row);
            if hit {
                hits += 1;
            }
            let service = if hit {
                self.dram.t_row_hit_ns
            } else {
                self.dram.t_row_miss_ns
            } * 1e-9;
            let start = bank_free_at[req.bank].max(arrival);
            let finish = start + service;
            bank_free_at[req.bank] = finish;
            open_row[req.bank] = Some(req.row);
            bank_busy += service;
            end = end.max(finish);

            // Queue depth accounting: requests arrived but not finished.
            completions[req.bank].retain(|&c| c > arrival);
            completions[req.bank].push(finish);
            queue_depth[req.bank] = completions[req.bank].len();
            max_depth = max_depth.max(queue_depth[req.bank]);
        }

        EventResult {
            time_s: end,
            bank_busy_s: bank_busy,
            row_hit_rate: if requests.is_empty() {
                0.0
            } else {
                hits as f64 / requests.len() as f64
            },
            max_queue_depth: max_depth,
        }
    }

    /// Generates the request stream of `pes` PEs each streaming
    /// `blocks_per_pe` consecutive blocks from a shared tensor, under a
    /// given (vault-local) bank layout.
    ///
    /// `bank_of` maps a global block index to a bank/row; PEs issue one
    /// request per `issue_interval` cycles, interleaved round-robin — the
    /// access pattern of §5.3.1's concurrent-PE discussion.
    pub fn pe_stream(
        &self,
        pes: usize,
        blocks_per_pe: usize,
        issue_interval: u64,
        bank_of: impl Fn(u64) -> (usize, u64),
    ) -> Vec<Request> {
        let mut reqs = Vec::with_capacity(pes * blocks_per_pe);
        for step in 0..blocks_per_pe {
            for pe in 0..pes {
                let block = (pe * blocks_per_pe + step) as u64;
                let (bank, row) = bank_of(block);
                reqs.push(Request {
                    pe,
                    bank,
                    row,
                    issue_cycle: step as u64 * issue_interval,
                });
            }
        }
        reqs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> EventSim {
        EventSim::new(HmcConfig::gen3())
    }

    #[test]
    fn empty_stream() {
        let r = sim().run(&[]);
        assert_eq!(r.time_s, 0.0);
        assert_eq!(r.row_hit_rate, 0.0);
    }

    #[test]
    fn sequential_same_row_hits() {
        let s = sim();
        let reqs: Vec<Request> = (0..100)
            .map(|i| Request {
                pe: 0,
                bank: 0,
                row: 0,
                issue_cycle: i,
            })
            .collect();
        let r = s.run(&reqs);
        // First access misses, the rest hit.
        assert!((r.row_hit_rate - 0.99).abs() < 1e-9);
    }

    #[test]
    fn row_thrash_when_pes_interleave_on_one_bank() {
        let s = sim();
        // Two PEs alternate rows on the same bank → every access misses.
        let reqs: Vec<Request> = (0..100)
            .map(|i| Request {
                pe: i % 2,
                bank: 0,
                row: (i % 2) as u64 + (i / 2) as u64 * 100,
                issue_cycle: i as u64,
            })
            .collect();
        let r = s.run(&reqs);
        assert!(
            r.row_hit_rate < 0.05,
            "thrash should kill hits: {}",
            r.row_hit_rate
        );
    }

    #[test]
    fn spreading_banks_reduces_makespan() {
        let s = sim();
        // 16 PEs × 64 blocks each. Concentrated: every PE's region lives in
        // bank 0 but in its own rows, so interleaved issue thrashes the row
        // buffer (§5.3.1's conflict scenario).
        let concentrated = s.pe_stream(16, 64, 1, |b| (0, b / 64));
        let spread = s.pe_stream(16, 64, 1, |b| ((b as usize) % 16, b / 16));
        let t_conc = s.run(&concentrated).time_s;
        let t_spread = s.run(&spread).time_s;
        assert!(
            t_conc > 5.0 * t_spread,
            "concentrated {} vs spread {}",
            t_conc,
            t_spread
        );
    }

    #[test]
    fn makespan_bounded_by_busy_time() {
        let s = sim();
        let reqs = s.pe_stream(16, 32, 2, |b| ((b as usize) % 16, b / 128));
        let r = s.run(&reqs);
        // Makespan can't beat (total busy / banks) nor exceed total busy.
        assert!(r.time_s * 16.0 + 1e-12 >= r.bank_busy_s / 1.0001);
        assert!(r.time_s <= r.bank_busy_s + 1e-6);
    }
}
