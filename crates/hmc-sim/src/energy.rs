//! Energy accounting for the HMC (Fig 16b's Execution / DRAM / XBAR / Vault
//! split).

use serde::{Deserialize, Serialize};

use crate::pe::PeOp;

/// Per-event energy constants (24 nm-class logic on the HMC logic layer,
/// stacked DRAM dies; values from the PIM literature the paper builds on —
/// Neurocube, TOP-PIM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Joules per MAC.
    pub pj_mac: f64,
    /// Joules per standalone add.
    pub pj_add: f64,
    /// Joules per standalone multiply.
    pub pj_mul: f64,
    /// Joules per bit shift.
    pub pj_shift: f64,
    /// Joules per DRAM byte moved inside a vault.
    pub pj_dram_byte: f64,
    /// Joules per byte crossing the crossbar.
    pub pj_xbar_byte: f64,
    /// Joules per block handled by a vault's sub-memory controller.
    pub pj_vault_block: f64,
    /// Static power of the logic layer (PEs + controllers), watts.
    pub logic_static_w: f64,
    /// DRAM background (refresh etc.) power, watts.
    pub dram_static_w: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            pj_mac: 12.0e-12,
            pj_add: 4.0e-12,
            pj_mul: 9.0e-12,
            pj_shift: 1.2e-12,
            pj_dram_byte: 30.0e-12,
            pj_xbar_byte: 6.0e-12,
            pj_vault_block: 8.0e-12,
            logic_static_w: 1.2,
            dram_static_w: 4.0,
        }
    }
}

impl EnergyParams {
    /// Energy of one op batch (special functions decompose into their
    /// component unit traversals).
    pub fn op_energy(&self, op: &PeOp) -> f64 {
        let n = op.count() as f64;
        match op {
            PeOp::Mac(_) | PeOp::DenseMac(_) => n * self.pj_mac,
            PeOp::Add(_) => n * self.pj_add,
            PeOp::Mul(_) => n * self.pj_mul,
            PeOp::Shift(_) => n * self.pj_shift,
            // exp: add + mul (recovery) + 2 shifts
            PeOp::Exp(_) => n * (self.pj_add + self.pj_mul + 2.0 * self.pj_shift),
            // isqrt: shift seed + Newton (3 mul + 1 add) + recovery mul
            PeOp::InvSqrt(_) => n * (self.pj_shift + 4.0 * self.pj_mul + self.pj_add),
            // div: shift seed + Newton (2 mul + 1 add) + final mul
            PeOp::Div(_) => n * (self.pj_shift + 3.0 * self.pj_mul + self.pj_add),
        }
    }
}

/// Accumulated energy, split the way Fig 16b reports it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// PE execution energy (including logic static share).
    pub execution_j: f64,
    /// DRAM access + background energy.
    pub dram_j: f64,
    /// Crossbar transfer energy.
    pub xbar_j: f64,
    /// Vault sub-memory-controller energy.
    pub vault_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.execution_j + self.dram_j + self.xbar_j + self.vault_j
    }

    /// Adds another breakdown.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.execution_j += other.execution_j;
        self.dram_j += other.dram_j;
        self.xbar_j += other.xbar_j;
        self.vault_j += other.vault_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_functions_cost_more_than_mac() {
        let p = EnergyParams::default();
        assert!(p.op_energy(&PeOp::Exp(1)) > p.op_energy(&PeOp::Mac(1)));
        assert!(p.op_energy(&PeOp::InvSqrt(1)) > p.op_energy(&PeOp::Mul(1)));
    }

    #[test]
    fn op_energy_scales_with_count() {
        let p = EnergyParams::default();
        let one = p.op_energy(&PeOp::Mac(1));
        let thousand = p.op_energy(&PeOp::Mac(1000));
        assert!((thousand - 1000.0 * one).abs() < 1e-18);
    }

    #[test]
    fn breakdown_totals_and_adds() {
        let mut a = EnergyBreakdown {
            execution_j: 1.0,
            dram_j: 2.0,
            xbar_j: 0.5,
            vault_j: 0.25,
        };
        assert_eq!(a.total(), 3.75);
        let b = a;
        a.add(&b);
        assert_eq!(a.total(), 7.5);
    }
}
