//! Cross-fidelity conformance: the fast, deterministic [`PhaseEngine`]
//! against the request-level [`EventSim`] it abstracts.
//!
//! For a family of generated single-vault phase workloads (PE count ×
//! stream length × bank layout × row locality), the same traffic is driven
//! through both fidelities:
//!
//! * the event simulator issues each block request against per-bank FCFS
//!   queues with open-row state;
//! * the phase engine sees only the aggregate: per-bank byte totals plus
//!   the hit rate the event run observed.
//!
//! The phase engine's memory makespan (execution + vault-request-stall; the
//! crossbar term is zero for local phases and checked separately) must stay
//! within [`TOLERANCE`] of the event-level makespan, and the two fidelities
//! must agree on *ordering*: a layout the event sim ranks slower may never
//! be ranked faster by the phase engine when the gap is material.

use hmc_sim::event::{EventSim, Request};
use hmc_sim::{HmcConfig, PeProgram, Phase, PhaseEngine, VaultWork};

/// Maximum relative deviation between the phase engine's memory makespan
/// and the event-level makespan. The phase model folds per-bank FCFS
/// queues and row state into two aggregates (per-bank bytes, one hit
/// rate), so it cannot be exact; 25% holds across the whole generated
/// family below with margin for timing-constant changes.
const TOLERANCE: f64 = 0.25;

/// A generated single-vault workload: every PE streams `blocks_per_pe`
/// consecutive blocks under a named bank layout.
#[derive(Debug, Clone, Copy)]
struct Workload {
    name: &'static str,
    pes: usize,
    blocks_per_pe: usize,
    /// Maps a global block index to (bank, row).
    layout: fn(u64, usize) -> (usize, u64),
}

/// One bank per PE, sequential rows inside: conflict-free, row-friendly —
/// the PIM mapping's intent (§5.3.1).
fn layout_spread(block: u64, blocks_per_pe: usize) -> (usize, u64) {
    let pe = block as usize / blocks_per_pe;
    (pe % 16, (block % blocks_per_pe as u64) / 128)
}

/// Blocks interleave over all banks with coarse rows.
fn layout_interleave(block: u64, _blocks_per_pe: usize) -> (usize, u64) {
    ((block % 16) as usize, block / 256)
}

/// Everything lands in two banks, each PE in its own row region: heavy
/// queueing and row thrash — the conflict case the paper's scheduler
/// avoids.
fn layout_two_banks(block: u64, blocks_per_pe: usize) -> (usize, u64) {
    let pe = block as usize / blocks_per_pe;
    ((pe % 2) * 7, block / 64)
}

/// Single hot bank, per-PE rows: the worst case.
fn layout_hot_bank(block: u64, blocks_per_pe: usize) -> (usize, u64) {
    let pe = block / blocks_per_pe as u64;
    (3, pe * 1000 + (block % blocks_per_pe as u64) / 64)
}

const WORKLOADS: [Workload; 6] = [
    Workload {
        name: "spread-16pe",
        pes: 16,
        blocks_per_pe: 2048,
        layout: layout_spread,
    },
    Workload {
        name: "spread-8pe",
        pes: 8,
        blocks_per_pe: 4096,
        layout: layout_spread,
    },
    Workload {
        name: "interleave-16pe",
        pes: 16,
        blocks_per_pe: 1024,
        layout: layout_interleave,
    },
    Workload {
        name: "interleave-4pe",
        pes: 4,
        blocks_per_pe: 8192,
        layout: layout_interleave,
    },
    Workload {
        name: "two-banks-16pe",
        pes: 16,
        blocks_per_pe: 1024,
        layout: layout_two_banks,
    },
    Workload {
        name: "hot-bank-16pe",
        pes: 16,
        blocks_per_pe: 512,
        layout: layout_hot_bank,
    },
];

/// The validation configuration: the event simulator models bank queues
/// only, so the TSV link is widened until banks are the binding resource
/// in both fidelities (same approach as the integration suite).
fn validation_cfg() -> HmcConfig {
    let mut cfg = HmcConfig::gen3();
    cfg.internal_gbps = 4096.0;
    cfg
}

/// Runs one workload through both fidelities; returns
/// `(event_makespan_s, phase_result)`.
fn run_both(w: &Workload) -> (f64, hmc_sim::PhaseResult) {
    let cfg = validation_cfg();
    let sim = EventSim::new(cfg.clone());
    let blocks_per_pe = w.blocks_per_pe;
    let stream: Vec<Request> =
        sim.pe_stream(w.pes, w.blocks_per_pe, 1, |b| (w.layout)(b, blocks_per_pe));
    let ev = sim.run(&stream);

    // Aggregate the identical traffic for the phase engine.
    let mut bank_bytes = vec![0u64; cfg.banks_per_vault];
    for req in &stream {
        bank_bytes[req.bank] += cfg.block_bytes;
    }
    let mut program = PeProgram::new();
    program.read_bytes = bank_bytes.iter().sum();
    let mut vaults = vec![VaultWork::default(); cfg.vaults];
    vaults[0] = VaultWork {
        program,
        bank_bytes,
        row_hit_rate: ev.row_hit_rate,
    };
    let phase = Phase::local(w.name, vaults);
    let ph = PhaseEngine::new(cfg).run_phase(&phase);
    (ev.time_s, ph)
}

#[test]
fn phase_makespan_within_tolerance_of_event_sim() {
    for w in &WORKLOADS {
        let (event_s, ph) = run_both(w);
        assert!(event_s > 0.0, "{}: empty event run", w.name);
        // Local phase: the whole makespan is execution + VRS.
        let phase_s = ph.exec_s + ph.vrs_s;
        let rel = (phase_s - event_s).abs() / event_s;
        assert!(
            rel <= TOLERANCE,
            "{}: phase {phase_s:.3e}s vs event {event_s:.3e}s (rel {rel:.3} > {TOLERANCE})",
            w.name
        );
    }
}

#[test]
fn breakdown_identity_and_zero_crossbar_for_local_phases() {
    for w in &WORKLOADS {
        let (_, ph) = run_both(w);
        assert_eq!(ph.xbar_s, 0.0, "{}: local phase charged crossbar", w.name);
        let sum = ph.exec_s + ph.vrs_s + ph.xbar_s;
        assert!(
            (ph.time_s - sum).abs() <= 1e-12 * ph.time_s.max(1.0),
            "{}: breakdown does not sum to total ({} vs {})",
            w.name,
            ph.time_s,
            sum
        );
        assert!(ph.vrs_s >= 0.0 && ph.exec_s > 0.0);
    }
}

#[test]
fn conflict_layouts_show_vrs_in_both_fidelities() {
    let spread = &WORKLOADS[0];
    let hot = &WORKLOADS[5];
    let (ev_spread, ph_spread) = run_both(spread);
    let (ev_hot, ph_hot) = run_both(hot);
    // Same per-PE traffic shape, wildly different layouts: the event sim
    // must see the hot bank stall, and the phase engine must attribute the
    // excess to VRS, not execution.
    let per_block_spread = ev_spread / (spread.pes * spread.blocks_per_pe) as f64;
    let per_block_hot = ev_hot / (hot.pes * hot.blocks_per_pe) as f64;
    assert!(
        per_block_hot > 5.0 * per_block_spread,
        "event sim: hot bank {per_block_hot:.3e} s/blk vs spread {per_block_spread:.3e}"
    );
    assert!(
        ph_hot.vrs_s > ph_hot.exec_s,
        "phase engine must classify the hot-bank excess as VRS"
    );
    // Under the widened validation link even the spread layout shows some
    // VRS (banks, not the TSV, are the binding resource by construction);
    // the conformance claim is about magnitude: concentrating the same
    // traffic must multiply the stall, not the execution term.
    assert!(
        ph_hot.vrs_s > 10.0 * ph_spread.vrs_s,
        "hot-bank VRS {} not dramatically above spread VRS {}",
        ph_hot.vrs_s,
        ph_spread.vrs_s
    );
}

#[test]
fn fidelities_agree_on_workload_ordering() {
    // Rank all workloads by per-block cost under both fidelities; whenever
    // the event sim separates two workloads by more than the conformance
    // tolerance allows the phase engine to blur, the phase engine must
    // order them identically.
    let runs: Vec<(f64, f64)> = WORKLOADS
        .iter()
        .map(|w| {
            let blocks = (w.pes * w.blocks_per_pe) as f64;
            let (ev, ph) = run_both(w);
            (ev / blocks, (ph.exec_s + ph.vrs_s) / blocks)
        })
        .collect();
    for i in 0..runs.len() {
        for j in 0..runs.len() {
            let (ev_i, ph_i) = runs[i];
            let (ev_j, ph_j) = runs[j];
            let separable = ev_i > ev_j * (1.0 + TOLERANCE) * (1.0 + TOLERANCE);
            if separable {
                assert!(
                    ph_i > ph_j,
                    "event sim orders {} ({ev_i:.3e}) above {} ({ev_j:.3e}) but phase engine inverts ({ph_i:.3e} vs {ph_j:.3e})",
                    WORKLOADS[i].name,
                    WORKLOADS[j].name
                );
            }
        }
    }
}

#[test]
fn crossbar_exposure_adds_on_top_of_memory_time() {
    // The event sim has no crossbar model; the phase engine's xbar term
    // must therefore be purely additive on the same vault work — the
    // cross-fidelity statement is that adding aggregation traffic changes
    // nothing about the memory-side conformance.
    let w = &WORKLOADS[0];
    let cfg = validation_cfg();
    let sim = EventSim::new(cfg.clone());
    let blocks_per_pe = w.blocks_per_pe;
    let stream: Vec<Request> =
        sim.pe_stream(w.pes, w.blocks_per_pe, 1, |b| (w.layout)(b, blocks_per_pe));
    let ev = sim.run(&stream);
    let mut bank_bytes = vec![0u64; cfg.banks_per_vault];
    for req in &stream {
        bank_bytes[req.bank] += cfg.block_bytes;
    }
    let mut program = PeProgram::new();
    program.read_bytes = bank_bytes.iter().sum();
    let mut vaults = vec![VaultWork::default(); cfg.vaults];
    vaults[0] = VaultWork {
        program,
        bank_bytes,
        row_hit_rate: ev.row_hit_rate,
    };
    let mut phase = Phase::local("with-xbar", vaults);
    phase.xbar_payload_bytes = 1 << 20;
    phase.xbar_messages = 1024;
    let ph = PhaseEngine::new(cfg).run_phase(&phase);
    assert!(ph.xbar_s > 0.0);
    let memory_s = ph.time_s - ph.xbar_s;
    let rel = (memory_s - ev.time_s).abs() / ev.time_s;
    assert!(
        rel <= TOLERANCE,
        "memory side drifted once crossbar added: rel {rel:.3}"
    );
}
