//! Property-based tests for the Fig 13 address mappings.

use hmc_sim::{AddressMapping, DefaultMapping, HmcConfig, NaiveVaultMapping, PimMapping};
use proptest::prelude::*;

fn cfg() -> HmcConfig {
    HmcConfig::gen3()
}

/// Byte addresses within the 8 GB cube.
fn addr_strategy() -> impl Strategy<Value = u64> {
    0u64..(8u64 << 30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn locations_always_in_range(addr in addr_strategy(), subpage_exp in 4u32..9) {
        let c = cfg();
        let mappings: Vec<Box<dyn AddressMapping>> = vec![
            Box::new(DefaultMapping::new(&c)),
            Box::new(PimMapping::new(&c, 1 << subpage_exp)),
            Box::new(NaiveVaultMapping::new(&c)),
        ];
        for m in &mappings {
            let loc = m.locate(addr);
            prop_assert!(loc.vault < c.vaults, "{}: vault {}", m.name(), loc.vault);
            prop_assert!(loc.bank < c.banks_per_vault, "{}: bank {}", m.name(), loc.bank);
        }
    }

    #[test]
    fn same_block_same_location(addr in addr_strategy(), off in 0u64..16) {
        // All byte addresses within one 16 B block resolve identically.
        let c = cfg();
        let base = addr - addr % 16;
        for m in [
            &DefaultMapping::new(&c) as &dyn AddressMapping,
            &PimMapping::new(&c, 64),
            &NaiveVaultMapping::new(&c),
        ] {
            let a = m.locate(base);
            let b = m.locate(base + off);
            prop_assert_eq!(a, b, "mapping {} split a block", m.name());
        }
    }

    #[test]
    fn pim_mapping_vault_is_top_bits(addr in addr_strategy()) {
        // Fig 13b: the vault is determined purely by the address's position
        // in 256 MB regions.
        let c = cfg();
        let m = PimMapping::new(&c, 64);
        let expected_vault = (addr / c.vault_capacity_bytes()) as usize % c.vaults;
        prop_assert_eq!(m.locate(addr).vault, expected_vault);
    }

    #[test]
    fn default_mapping_vault_cycles_with_subpages(subpage_idx in 0u64..100_000) {
        // Fig 13a: consecutive 128 B sub-pages visit vaults round-robin.
        let c = cfg();
        let m = DefaultMapping::new(&c);
        let addr = subpage_idx * 128;
        prop_assert_eq!(m.locate(addr).vault, (subpage_idx % 32) as usize);
    }

    #[test]
    fn pim_consecutive_subpages_rotate_banks(i in 0u64..100_000, subpage_exp in 4u32..9) {
        let c = cfg();
        let sp = 1u64 << subpage_exp;
        let m = PimMapping::new(&c, sp);
        let a = m.locate(i * sp);
        let b = m.locate((i + 1) * sp);
        if a.vault == b.vault {
            prop_assert_eq!(b.bank, (a.bank + 1) % c.banks_per_vault);
        }
    }

    #[test]
    fn naive_mapping_is_contiguous_rows(i in 0u64..1_000_000) {
        // Within one bank region, consecutive blocks advance rows
        // monotonically (the source of its sequential-friendliness and its
        // concurrency pathology).
        let c = cfg();
        let m = NaiveVaultMapping::new(&c);
        let a = m.locate(i * 16);
        let b = m.locate(i * 16 + 16);
        if a.bank == b.bank && a.vault == b.vault {
            prop_assert!(b.row == a.row || b.row == a.row + 1);
        }
    }

    #[test]
    fn span_distribution_conserves_bytes(start in 0u64..(1u64 << 30), len_kb in 1u64..64) {
        let c = cfg();
        let len = len_kb * 1024;
        let m = PimMapping::new(&c, 64);
        let dist = m.span_distribution(start, len, &c);
        let total: u64 = dist.iter().flatten().sum();
        // The distribution covers whole blocks overlapping the range.
        prop_assert!(total >= len);
        prop_assert!(total <= len + 2 * c.block_bytes);
    }
}
