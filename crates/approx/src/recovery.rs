//! The paper's accuracy-recovery scheme (§5.2.2, "Accuracy Recovery").
//!
//! > "we analyze 10,000 exponential executions to collect the value
//! > differences between the approximated and original results. During the
//! > approximation execution, the accuracy loss will be recovered via
//! > enlarging the results by the mean percentage of the value difference."
//!
//! The recovery is a single multiplicative constant computed offline, so at
//! inference it costs exactly one multiplication per special-function call —
//! the property the paper leans on to claim low design complexity compared
//! to lookup tables.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::div::fast_recip;
use crate::exp::fast_exp;
use crate::inv_sqrt::fast_inv_sqrt;

/// Deterministic seed for calibration sampling, fixed so that calibrated
/// constants are reproducible across runs (they are "computed offline" in
/// the paper's flow).
const CALIBRATION_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// A multiplicative accuracy-recovery constant for one approximate function.
///
/// # Examples
///
/// ```
/// use pim_approx::{fast_exp, Recovery};
///
/// let rec = Recovery::calibrate_exp(10_000);
/// // The recovery is a small multiplicative correction near 1, applied
/// // with a single multiply at inference time.
/// assert!((rec.scale() - 1.0).abs() < 0.05);
/// let y = rec.apply(fast_exp(0.7));
/// assert!((y - 0.7f32.exp()).abs() / 0.7f32.exp() < 0.04);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recovery {
    scale: f32,
}

impl Recovery {
    /// A recovery that changes nothing (the "w/o Accuracy Recovery"
    /// configuration).
    pub fn identity() -> Self {
        Recovery { scale: 1.0 }
    }

    /// The recovery multiplier.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Applies the recovery: one multiply.
    #[inline]
    pub fn apply(&self, approx_value: f32) -> f32 {
        approx_value * self.scale
    }

    /// Calibrates a recovery constant from parallel slices of exact and
    /// approximate outputs.
    ///
    /// The scale is the least-squares minimizer of the relative error
    /// `E[((s·a − e)/e)²]`, i.e. `s = E[r] / E[r²]` with `r = a/e`. This is
    /// the "mean percentage of the value difference" of §5.2.2 made precise:
    /// it provably never increases the relative L2 error on the calibration
    /// distribution, and it removes the systematic bias of the bit-level
    /// approximations (Newton-refined seeds always undershoot).
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or of different lengths.
    pub fn from_samples(exact: &[f32], approx: &[f32]) -> Self {
        assert_eq!(exact.len(), approx.len(), "sample slices must align");
        assert!(!exact.is_empty(), "need at least one calibration sample");
        let mut sum_r = 0.0f64;
        let mut sum_r2 = 0.0f64;
        let mut n = 0usize;
        for (&e, &a) in exact.iter().zip(approx) {
            if a.is_finite() && a != 0.0 && e.is_finite() && e != 0.0 {
                let r = (a / e) as f64;
                sum_r += r;
                sum_r2 += r * r;
                n += 1;
            }
        }
        let scale = if n == 0 || sum_r2 == 0.0 {
            1.0
        } else {
            (sum_r / sum_r2) as f32
        };
        Recovery { scale }
    }

    /// Paper-style calibration for the exponential: `samples` inputs drawn
    /// from the softmax operand range `[-16, 0]` (routing always calls
    /// `exp` on max-subtracted logits).
    pub fn calibrate_exp(samples: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(CALIBRATION_SEED);
        let dist = Uniform::new(-16.0f32, 0.0f32);
        let xs: Vec<f32> = (0..samples).map(|_| dist.sample(&mut rng)).collect();
        let exact: Vec<f32> = xs.iter().map(|&x| x.exp()).collect();
        let approx: Vec<f32> = xs.iter().map(|&x| fast_exp(x)).collect();
        Self::from_samples(&exact, &approx)
    }

    /// Calibration for the inverse square root over the squash-function
    /// operand range (capsule norm-squares spanning several decades).
    pub fn calibrate_isqrt(samples: usize, refinements: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(CALIBRATION_SEED ^ 1);
        let dist = Uniform::new(-4.0f32, 3.0f32); // log10 range 1e-4 .. 1e3
        let xs: Vec<f32> = (0..samples)
            .map(|_| 10f32.powf(dist.sample(&mut rng)))
            .collect();
        let exact: Vec<f32> = xs.iter().map(|&x| 1.0 / x.sqrt()).collect();
        let approx: Vec<f32> = xs.iter().map(|&x| fast_inv_sqrt(x, refinements)).collect();
        Self::from_samples(&exact, &approx)
    }

    /// Calibration for the reciprocal over the softmax/squash denominator
    /// range.
    pub fn calibrate_recip(samples: usize, refinements: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(CALIBRATION_SEED ^ 2);
        let dist = Uniform::new(-3.0f32, 3.0f32);
        let xs: Vec<f32> = (0..samples)
            .map(|_| 10f32.powf(dist.sample(&mut rng)))
            .collect();
        let exact: Vec<f32> = xs.iter().map(|&x| 1.0 / x).collect();
        let approx: Vec<f32> = xs.iter().map(|&x| fast_recip(x, refinements)).collect();
        Self::from_samples(&exact, &approx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ErrorStats;

    #[test]
    fn identity_changes_nothing() {
        let r = Recovery::identity();
        assert_eq!(r.apply(3.5), 3.5);
        assert_eq!(r.scale(), 1.0);
    }

    #[test]
    fn calibration_is_deterministic() {
        assert_eq!(Recovery::calibrate_exp(1000), Recovery::calibrate_exp(1000));
    }

    #[test]
    fn exp_recovery_reduces_l2_error_and_bias() {
        let rec = Recovery::calibrate_exp(10_000);
        // Evaluate on a dense grid over the softmax operand range.
        let xs: Vec<f32> = (-160..0).map(|i| i as f32 * 0.1).collect();
        let raw = ErrorStats::measure(&xs, |x| x.exp(), fast_exp);
        let rec_stats = ErrorStats::measure(&xs, |x| x.exp(), |x| rec.apply(fast_exp(x)));
        assert!(
            rec_stats.l2_rel <= raw.l2_rel * 1.001,
            "recovered L2 {} vs raw {}",
            rec_stats.l2_rel,
            raw.l2_rel
        );
        // Both biases are already tiny (the Avg constant centers the error);
        // just require the recovered bias to stay in the same noise band.
        assert!(
            rec_stats.mean_signed_rel.abs() <= raw.mean_signed_rel.abs() + 5e-4,
            "recovered bias {} vs raw {}",
            rec_stats.mean_signed_rel,
            raw.mean_signed_rel
        );
    }

    #[test]
    fn isqrt_recovery_removes_newton_undershoot() {
        // One Newton step always converges from below, leaving a systematic
        // negative bias the recovery constant cancels.
        let rec = Recovery::calibrate_isqrt(10_000, 1);
        let xs: Vec<f32> = (1..2000).map(|i| i as f32 * 0.37).collect();
        let raw = ErrorStats::measure(&xs, |x| 1.0 / x.sqrt(), |x| fast_inv_sqrt(x, 1));
        let fixed =
            ErrorStats::measure(&xs, |x| 1.0 / x.sqrt(), |x| rec.apply(fast_inv_sqrt(x, 1)));
        assert!(raw.mean_signed_rel < 0.0, "Newton should undershoot");
        assert!(
            fixed.mean_signed_rel.abs() < raw.mean_signed_rel.abs(),
            "bias {} vs {}",
            fixed.mean_signed_rel,
            raw.mean_signed_rel
        );
        assert!(fixed.mean_rel < raw.mean_rel);
    }

    #[test]
    fn recovery_scale_is_near_one() {
        // The approximations are already decent; the recovery is a small
        // correction, not a fudge factor.
        for rec in [
            Recovery::calibrate_exp(10_000),
            Recovery::calibrate_isqrt(10_000, 1),
            Recovery::calibrate_recip(10_000, 1),
        ] {
            assert!(
                (rec.scale() - 1.0).abs() < 0.05,
                "scale {} too far from 1",
                rec.scale()
            );
        }
    }

    #[test]
    fn from_samples_ignores_degenerate_pairs() {
        let exact = [1.0f32, 2.0, f32::INFINITY];
        let approx = [0.5f32, 0.0, 1.0];
        // Only the first pair is usable: r = 0.5, so s = r/r² = 2.0.
        let rec = Recovery::from_samples(&exact, &approx);
        assert_eq!(rec.scale(), 2.0);
    }

    #[test]
    #[should_panic(expected = "sample slices must align")]
    fn from_samples_validates_lengths() {
        let _ = Recovery::from_samples(&[1.0], &[1.0, 2.0]);
    }
}
