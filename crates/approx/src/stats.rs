//! Error-measurement utilities used by tests, calibration and the Table 5
//! accuracy analysis.

/// Summary statistics of the deviation between an exact and an approximate
/// scalar function over a set of probe inputs.
///
/// # Examples
///
/// ```
/// use pim_approx::{fast_exp, ErrorStats};
///
/// let xs: Vec<f32> = (-20..20).map(|i| i as f32 * 0.1).collect();
/// let stats = ErrorStats::measure(&xs, |x| x.exp(), |x| fast_exp(x));
/// assert!(stats.max_rel < 0.04);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Mean of `|approx − exact| / |exact|`.
    pub mean_rel: f64,
    /// Maximum of `|approx − exact| / |exact|`.
    pub max_rel: f64,
    /// Mean of the *signed* relative error (negative = underestimation).
    pub mean_signed_rel: f64,
    /// Root mean squared *relative* error, `sqrt(E[((a-e)/e)^2])`.
    pub l2_rel: f64,
    /// Root mean squared absolute error.
    pub rmse: f64,
    /// Number of probe points with a well-defined relative error.
    pub samples: usize,
}

impl ErrorStats {
    /// Measures approximation error over `inputs`, skipping points where the
    /// exact value is zero or either value is non-finite.
    pub fn measure(
        inputs: &[f32],
        exact: impl Fn(f32) -> f32,
        approx: impl Fn(f32) -> f32,
    ) -> Self {
        let mut mean_rel = 0.0f64;
        let mut max_rel = 0.0f64;
        let mut mean_signed = 0.0f64;
        let mut rel_sq_sum = 0.0f64;
        let mut sq_sum = 0.0f64;
        let mut n = 0usize;
        for &x in inputs {
            let e = exact(x);
            let a = approx(x);
            if !e.is_finite() || !a.is_finite() || e == 0.0 {
                continue;
            }
            let signed = ((a - e) / e) as f64;
            let rel = signed.abs();
            mean_rel += rel;
            mean_signed += signed;
            rel_sq_sum += signed * signed;
            max_rel = max_rel.max(rel);
            sq_sum += ((a - e) as f64).powi(2);
            n += 1;
        }
        if n == 0 {
            return ErrorStats {
                mean_rel: 0.0,
                max_rel: 0.0,
                mean_signed_rel: 0.0,
                l2_rel: 0.0,
                rmse: 0.0,
                samples: 0,
            };
        }
        ErrorStats {
            mean_rel: mean_rel / n as f64,
            max_rel,
            mean_signed_rel: mean_signed / n as f64,
            l2_rel: (rel_sq_sum / n as f64).sqrt(),
            rmse: (sq_sum / n as f64).sqrt(),
            samples: n,
        }
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean_rel={:.3e} max_rel={:.3e} signed={:+.3e} rmse={:.3e} (n={})",
            self.mean_rel, self.max_rel, self.mean_signed_rel, self.rmse, self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_function_has_zero_error() {
        let xs: Vec<f32> = (1..100).map(|i| i as f32).collect();
        let stats = ErrorStats::measure(&xs, |x| x * 2.0, |x| x * 2.0);
        assert_eq!(stats.mean_rel, 0.0);
        assert_eq!(stats.max_rel, 0.0);
        assert_eq!(stats.samples, 99);
    }

    #[test]
    fn constant_offset_measured_correctly() {
        let xs = [1.0f32, 2.0, 4.0];
        let stats = ErrorStats::measure(&xs, |x| x, |x| x * 1.1);
        assert!((stats.mean_rel - 0.1).abs() < 1e-6);
        assert!((stats.mean_signed_rel - 0.1).abs() < 1e-6);
    }

    #[test]
    fn degenerate_points_are_skipped() {
        let xs = [0.0f32, 1.0];
        let stats = ErrorStats::measure(&xs, |x| x, |x| x);
        assert_eq!(stats.samples, 1, "x=0 has exact value 0 and is skipped");
    }

    #[test]
    fn empty_input_is_all_zeros() {
        let stats = ErrorStats::measure(&[], |x| x, |x| x);
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.mean_rel, 0.0);
    }

    #[test]
    fn display_contains_fields() {
        let stats = ErrorStats::measure(&[1.0f32], |x| x, |x| x * 1.5);
        let s = stats.to_string();
        assert!(s.contains("mean_rel"));
        assert!(s.contains("n=1"));
    }
}
