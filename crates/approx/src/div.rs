//! Division via a bit-level reciprocal plus Newton refinement.
//!
//! The paper simplifies the FP32 divisions in the squash function (Eq 3) and
//! the softmax normalization (Eq 5) with bit shifting, the standard
//! graphics-domain trick: a reciprocal seed is produced by subtracting the
//! operand's bits from a magic constant (exponent negation plus a mantissa
//! correction), then polished with Newton steps that need only multiplies
//! and subtracts — exactly the units the PE already has.

/// Magic constant for the reciprocal bit hack. Chosen to minimize the
/// maximum relative error of the seed over one binade (~±5.1%).
const RECIP_MAGIC: u32 = 0x7ef3_11c3;

/// Approximate `1/x` with the bit hack plus `refinements` Newton steps
/// (`r ← r·(2 − x·r)`).
///
/// Relative error: ~5% raw, ~0.26% after one step, ~7e-6 after two.
///
/// `x = 0`, negative zero, infinities and NaN follow the exact function's
/// conventions where representable: `fast_recip(±0) = ±inf`,
/// `fast_recip(±inf) = ±0`, `fast_recip(NaN) = NaN`.
///
/// # Examples
///
/// ```
/// use pim_approx::fast_recip;
///
/// let r = fast_recip(3.0, 1);
/// assert!((r - 1.0 / 3.0).abs() < 0.002);
/// ```
#[inline]
pub fn fast_recip(x: f32, refinements: u32) -> f32 {
    if x == 0.0 {
        return if x.is_sign_negative() {
            f32::NEG_INFINITY
        } else {
            f32::INFINITY
        };
    }
    if !x.is_finite() {
        return if x.is_nan() {
            f32::NAN
        } else if x > 0.0 {
            0.0
        } else {
            -0.0
        };
    }
    let negative = x < 0.0;
    let ax = x.abs();
    let bits = RECIP_MAGIC.wrapping_sub(ax.to_bits());
    let mut r = f32::from_bits(bits);
    for _ in 0..refinements {
        r *= 2.0 - ax * r;
    }
    if negative {
        -r
    } else {
        r
    }
}

/// Approximate `a / b` as `a * fast_recip(b)`.
///
/// # Examples
///
/// ```
/// use pim_approx::fast_div;
///
/// let q = fast_div(7.0, 2.0, 1);
/// assert!((q - 3.5).abs() < 0.01);
/// ```
#[inline]
pub fn fast_div(a: f32, b: f32, refinements: u32) -> f32 {
    a * fast_recip(b, refinements)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(x: f32, refinements: u32) -> f32 {
        let exact = 1.0 / x;
        ((fast_recip(x, refinements) - exact) / exact).abs()
    }

    #[test]
    fn seed_error_bounded() {
        let mut x = 1e-4f32;
        while x < 1e6 {
            assert!(rel_err(x, 0) < 0.06, "seed error too high at {x}");
            x *= 1.9;
        }
    }

    #[test]
    fn newton_refinement_contracts() {
        for x in [0.001f32, 0.37, 1.0, 2.5, 999.0] {
            assert!(rel_err(x, 1) < 4e-3, "1-step error at {x}");
            assert!(rel_err(x, 2) < 2e-5, "2-step error at {x}");
        }
    }

    #[test]
    fn negative_operands() {
        let r = fast_recip(-4.0, 2);
        assert!((r + 0.25).abs() < 1e-4);
        let q = fast_div(-9.0, -3.0, 2);
        assert!((q - 3.0).abs() < 1e-3);
    }

    #[test]
    fn special_values() {
        assert_eq!(fast_recip(0.0, 1), f32::INFINITY);
        assert_eq!(fast_recip(-0.0, 1), f32::NEG_INFINITY);
        assert_eq!(fast_recip(f32::INFINITY, 1), 0.0);
        assert!(fast_recip(f32::NAN, 1).is_nan());
    }

    #[test]
    fn softmax_denominator_use_case() {
        // Softmax divides exp values (≤ 1 after max subtraction, sums up to
        // H ≈ 10..62) — check the realistic operand range.
        for denom in [1.0f32, 3.7, 10.0, 26.0, 62.0] {
            let q = fast_div(0.42, denom, 1);
            let exact = 0.42 / denom;
            assert!(((q - exact) / exact).abs() < 5e-3);
        }
    }
}
