//! Fast inverse square root via the bit-shift / magic-constant method the
//! paper adopts for the squash function's `1/||s||` (§5.2.2, citing Lomont's
//! "Fast inverse square root" technical report).

/// Lomont's optimized magic constant for the initial bit-level guess.
pub const INV_SQRT_MAGIC: u32 = 0x5f37_59df;

/// Approximate `1/sqrt(x)` with the bit hack plus `refinements` Newton
/// steps (`y ← y·(1.5 − 0.5·x·y²)`), each costing three multiplies and one
/// subtract on the PE.
///
/// Relative error: ~3.4% raw, ~0.2% after one refinement, ~2e-5 after two.
///
/// Non-positive or non-finite input returns `f32::NAN`, matching the
/// domain of the exact function.
///
/// # Examples
///
/// ```
/// use pim_approx::fast_inv_sqrt;
///
/// let y = fast_inv_sqrt(4.0, 1);
/// assert!((y - 0.5).abs() < 0.01);
/// ```
#[inline]
pub fn fast_inv_sqrt(x: f32, refinements: u32) -> f32 {
    if x <= 0.0 || x.is_nan() || !x.is_finite() {
        return f32::NAN;
    }
    let half = 0.5 * x;
    let mut bits = x.to_bits();
    bits = INV_SQRT_MAGIC - (bits >> 1);
    let mut y = f32::from_bits(bits);
    for _ in 0..refinements {
        y *= 1.5 - half * y * y;
    }
    y
}

/// Approximate `sqrt(x)` as `x * fast_inv_sqrt(x)`, with `sqrt(0) = 0`.
///
/// # Examples
///
/// ```
/// use pim_approx::fast_sqrt;
///
/// assert!((fast_sqrt(9.0, 1) - 3.0).abs() < 0.02);
/// assert_eq!(fast_sqrt(0.0, 1), 0.0);
/// ```
#[inline]
pub fn fast_sqrt(x: f32, refinements: u32) -> f32 {
    if x == 0.0 {
        0.0
    } else {
        x * fast_inv_sqrt(x, refinements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(x: f32, refinements: u32) -> f32 {
        let exact = 1.0 / x.sqrt();
        ((fast_inv_sqrt(x, refinements) - exact) / exact).abs()
    }

    #[test]
    fn raw_error_within_lomont_bound() {
        // Lomont proves < 3.44% for the raw magic-constant guess.
        let mut x = 1e-3f32;
        while x < 1e6 {
            assert!(rel_err(x, 0) < 0.035, "raw error too high at {x}");
            x *= 1.7;
        }
    }

    #[test]
    fn newton_steps_contract_error() {
        for x in [0.017f32, 0.5, 1.0, 3.0, 42.0, 1e4] {
            let e0 = rel_err(x, 0);
            let e1 = rel_err(x, 1);
            let e2 = rel_err(x, 2);
            assert!(e1 < e0, "one step should improve at {x}");
            assert!(e2 <= e1 + 1e-7, "two steps should not regress at {x}");
            assert!(e1 < 2e-3, "one-step error {e1} at {x}");
            assert!(e2 < 1e-4, "two-step error {e2} at {x}");
        }
    }

    #[test]
    fn invalid_domain_is_nan() {
        assert!(fast_inv_sqrt(0.0, 1).is_nan());
        assert!(fast_inv_sqrt(-1.0, 1).is_nan());
        assert!(fast_inv_sqrt(f32::NAN, 1).is_nan());
        assert!(fast_inv_sqrt(f32::INFINITY, 1).is_nan());
    }

    #[test]
    fn sqrt_roundtrip() {
        for x in [0.25f32, 1.0, 2.0, 100.0, 12345.0] {
            let s = fast_sqrt(x, 2);
            assert!(
                ((s * s - x) / x).abs() < 1e-3,
                "sqrt({x}) = {s}, squared back {}",
                s * s
            );
        }
    }

    #[test]
    fn squash_norm_use_case() {
        // The squash function computes ||s||²/(1+||s||²) · s/||s||; verify
        // the norm reciprocal is accurate for typical capsule magnitudes.
        for norm_sq in [1e-4f32, 0.01, 0.3, 1.0, 7.0, 250.0] {
            let inv_norm = fast_inv_sqrt(norm_sq, 1);
            let exact = 1.0 / norm_sq.sqrt();
            assert!(((inv_norm - exact) / exact).abs() < 2e-3);
        }
    }
}
