//! Bit-level FP32 approximations of the special functions used by the
//! PIM-CapsNet routing procedure (§5.2.2 of the paper), plus the paper's
//! accuracy-recovery calibration.
//!
//! The paper's intra-vault processing elements avoid complex special-function
//! units by composing everything from adders, multipliers and bit shifters:
//!
//! * **Exponential** — `e^x = 2^(log2(e)·x)` is evaluated by *representation
//!   transfer* (paper Eqs 13–14): the integer part of `y = log2(e)·x` becomes
//!   the IEEE-754 exponent field and the fractional part approximates the
//!   mantissa as `2^f − 1 ≈ f + Avg`, with `Avg` obtained offline by
//!   integrating `2^f − f` over `[0, 1)`. The whole computation collapses to
//!   one FP32 multiply-add followed by a bit shift — see [`fast_exp`].
//! * **Inverse square root** — the classic bit-shift / magic-constant method
//!   the paper cites (Lomont, "Fast inverse square root"), see
//!   [`fast_inv_sqrt`].
//! * **Division** — a reciprocal obtained by integer subtraction from a
//!   magic constant, refined by Newton steps that use only multiplies and
//!   adds, see [`fast_div`].
//! * **Accuracy recovery** — the paper samples 10,000 executions offline,
//!   records the mean relative difference between approximate and exact
//!   results, and recovers accuracy at inference time by scaling the
//!   approximate output with one extra multiply, see [`Recovery`].
//!
//! # Examples
//!
//! ```
//! use pim_approx::{fast_exp, Recovery};
//!
//! let x = 1.5f32;
//! let approx = fast_exp(x);
//! assert!((approx - x.exp()).abs() / x.exp() < 0.04);
//!
//! // Paper-style recovery: calibrate once, apply one multiply at inference.
//! let rec = Recovery::calibrate_exp(10_000);
//! let recovered = rec.apply(fast_exp(x));
//! assert!((recovered - x.exp()).abs() / x.exp() < 0.04);
//! ```

mod div;
mod exp;
mod inv_sqrt;
mod recovery;
mod stats;

pub use div::{fast_div, fast_recip};
pub use exp::{fast_exp, fast_exp2, EXP_BIAS_CONSTANT, EXP_MANTISSA_AVG};
pub use inv_sqrt::{fast_inv_sqrt, fast_sqrt, INV_SQRT_MAGIC};
pub use recovery::Recovery;
pub use stats::ErrorStats;

/// A bundle of calibrated approximation parameters, ready to be handed to a
/// math backend (one [`Recovery`] per special function plus Newton-refinement
/// depths).
///
/// This mirrors what the paper's PE configuration would store in vault
/// registers: a handful of constants computed offline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxProfile {
    /// Recovery multiplier for the exponential function.
    pub exp_recovery: Recovery,
    /// Recovery multiplier for the inverse square root.
    pub isqrt_recovery: Recovery,
    /// Recovery multiplier for division.
    pub div_recovery: Recovery,
    /// Newton refinement steps applied to `fast_inv_sqrt` (0 = raw bit hack).
    pub isqrt_refinements: u32,
    /// Newton refinement steps applied to `fast_recip` (0 = raw bit hack).
    pub recip_refinements: u32,
}

impl ApproxProfile {
    /// The configuration used throughout the reproduction: one Newton step
    /// per bit-hacked function (cheap on the PE: one extra multiply-add
    /// round) and paper-style 10,000-sample recovery calibration.
    pub fn calibrated() -> Self {
        ApproxProfile {
            exp_recovery: Recovery::calibrate_exp(10_000),
            isqrt_recovery: Recovery::calibrate_isqrt(10_000, 1),
            div_recovery: Recovery::calibrate_recip(10_000, 1),
            isqrt_refinements: 1,
            recip_refinements: 1,
        }
    }

    /// A profile with no recovery scaling (the paper's "w/o Accuracy
    /// Recovery" rows in Table 5).
    pub fn uncalibrated() -> Self {
        ApproxProfile {
            exp_recovery: Recovery::identity(),
            isqrt_recovery: Recovery::identity(),
            div_recovery: Recovery::identity(),
            isqrt_refinements: 1,
            recip_refinements: 1,
        }
    }

    /// Approximate `e^x` with this profile's recovery applied.
    pub fn exp(&self, x: f32) -> f32 {
        self.exp_recovery.apply(fast_exp(x))
    }

    /// Approximate `1/sqrt(x)` with this profile's recovery applied.
    pub fn inv_sqrt(&self, x: f32) -> f32 {
        self.isqrt_recovery
            .apply(fast_inv_sqrt(x, self.isqrt_refinements))
    }

    /// Approximate `a / b` with this profile's recovery applied.
    pub fn div(&self, a: f32, b: f32) -> f32 {
        self.div_recovery
            .apply(a * fast_recip(b, self.recip_refinements))
    }

    /// Approximate `sqrt(x)` (`x * inv_sqrt(x)`), recovery applied.
    pub fn sqrt(&self, x: f32) -> f32 {
        if x == 0.0 {
            0.0
        } else {
            x * self.inv_sqrt(x)
        }
    }

    /// [`Self::exp`] applied to every element of `xs` in place.
    ///
    /// The slice form mirrors the routing engine's slice-level
    /// `MathBackend` kernels: per element it is bit-identical to calling
    /// [`Self::exp`] in a loop (the PE has no wide datapath to model), but
    /// it costs one call per row instead of one per element — which is
    /// what keeps the *boxed* (`dyn`) approx backend off the vtable inside
    /// the hot loop.
    pub fn exp_slice(&self, xs: &mut [f32]) {
        for x in xs {
            *x = self.exp(*x);
        }
    }

    /// [`Self::inv_sqrt`] applied to every element of `xs` in place.
    pub fn inv_sqrt_slice(&self, xs: &mut [f32]) {
        for x in xs {
            *x = self.inv_sqrt(*x);
        }
    }

    /// [`Self::div`] of every element of `xs` by `denom`, in place.
    pub fn div_slice(&self, xs: &mut [f32], denom: f32) {
        for x in xs {
            *x = self.div(*x, denom);
        }
    }
}

impl Default for ApproxProfile {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_profile_beats_uncalibrated_on_isqrt() {
        let cal = ApproxProfile::calibrated();
        let raw = ApproxProfile::uncalibrated();
        let xs: Vec<f32> = (1..=400).map(|i| i as f32 * 0.25).collect();
        let err = |p: &ApproxProfile| -> f64 {
            xs.iter()
                .map(|&x| {
                    let e = 1.0 / x.sqrt();
                    ((p.inv_sqrt(x) - e) / e).abs() as f64
                })
                .sum::<f64>()
                / xs.len() as f64
        };
        assert!(
            err(&cal) < err(&raw),
            "recovery should reduce mean relative isqrt error"
        );
    }

    #[test]
    fn calibrated_exp_does_not_regress_l2() {
        let cal = ApproxProfile::calibrated();
        let xs: Vec<f32> = (-120..0).map(|i| i as f32 * 0.1).collect();
        let raw = ErrorStats::measure(&xs, |x| x.exp(), fast_exp);
        let rec = ErrorStats::measure(&xs, |x| x.exp(), |x| cal.exp(x));
        assert!(rec.l2_rel <= raw.l2_rel * 1.001);
    }

    #[test]
    fn profile_div_is_close() {
        let p = ApproxProfile::calibrated();
        for (a, b) in [(1.0f32, 3.0f32), (10.0, 7.0), (0.5, 0.25), (100.0, 9.0)] {
            let exact = a / b;
            let approx = p.div(a, b);
            assert!(
                ((approx - exact) / exact).abs() < 1e-2,
                "{a}/{b}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn profile_sqrt_handles_zero() {
        let p = ApproxProfile::calibrated();
        assert_eq!(p.sqrt(0.0), 0.0);
        assert!((p.sqrt(4.0) - 2.0).abs() < 0.02);
    }

    #[test]
    fn default_is_calibrated() {
        assert_eq!(ApproxProfile::default(), ApproxProfile::calibrated());
    }

    #[test]
    fn slice_forms_match_scalar_calls_bitwise() {
        let p = ApproxProfile::calibrated();
        let xs: Vec<f32> = (1..40).map(|i| i as f32 * 0.21).collect();

        let mut got = xs.clone();
        p.exp_slice(&mut got);
        for (g, &x) in got.iter().zip(&xs) {
            assert_eq!(g.to_bits(), p.exp(x).to_bits());
        }

        let mut got = xs.clone();
        p.inv_sqrt_slice(&mut got);
        for (g, &x) in got.iter().zip(&xs) {
            assert_eq!(g.to_bits(), p.inv_sqrt(x).to_bits());
        }

        let mut got = xs.clone();
        p.div_slice(&mut got, 3.1);
        for (g, &x) in got.iter().zip(&xs) {
            assert_eq!(g.to_bits(), p.div(x, 3.1).to_bits());
        }
    }
}
