//! The paper's exponential approximation (§5.2.2, Eqs 13–14).
//!
//! `e^x = 2^(log2(e)·x) = 2^⌊y⌋ · (1 + (2^(y−⌊y⌋) − 1))` with `y = log2(e)·x`.
//!
//! In IEEE-754 single precision the integer part `⌊y⌋` lands in the exponent
//! field and `2^frac − 1 ∈ [0, 1)` is exactly a mantissa. The paper
//! approximates `2^frac − 1 ≈ frac + Avg`, with `Avg` the average of
//! `(2^frac − frac) − 1` over `frac ∈ [0, 1)`, which is obtained offline:
//!
//! ```text
//! Avg = ∫₀¹ (2^t − t) dt − 1 = (1/ln 2 − 1/2) − 1 = −0.0572809…
//! ```
//!
//! Adding the exponent representation and the fraction representation then
//! collapses into *one* FP32 multiply-add and a 23-bit shift (the `BS(·)`
//! of Eq 14): `bits = (y + bias + Avg) · 2²³`.

/// `Avg` from the paper: mean of `2^t − 1 − t` over `t ∈ [0, 1)`.
///
/// `1/ln2 − 3/2 = −0.057 304 96…` — computed offline exactly as §5.2.2
/// prescribes (integrating the polynomial over the fraction interval).
pub const EXP_MANTISSA_AVG: f32 = -0.057_304_96;

/// The combined shift constant `b − 1 + (1 + Avg) = 127 + Avg` of Eq 14.
pub const EXP_BIAS_CONSTANT: f32 = 127.0 + EXP_MANTISSA_AVG;

const LOG2_E: f32 = std::f32::consts::LOG2_E;
/// 2^23 — the bit-shift distance that aligns `y` with the exponent field.
const MANTISSA_SCALE: f32 = 8_388_608.0;

/// Approximate `2^y` using only an add and a bit shift.
///
/// Inputs are clamped to the representable exponent range `[-126, 127]`;
/// values below underflow toward 0 and values above saturate at the clamp,
/// mirroring what the PE's fixed-width exponent field would produce.
///
/// # Examples
///
/// ```
/// use pim_approx::fast_exp2;
///
/// let y = fast_exp2(2.5);
/// assert!((y - 2f32.powf(2.5)).abs() / 2f32.powf(2.5) < 0.03);
/// ```
#[inline]
pub fn fast_exp2(y: f32) -> f32 {
    let y = y.clamp(-126.0, 127.0);
    // Eq 14: BS(y + Avg + b - 1): the FP32 addition aligns exponent and
    // fraction representations; multiplying by 2^23 *is* the bit shift.
    let bits = ((y + EXP_BIAS_CONSTANT) * MANTISSA_SCALE) as u32;
    f32::from_bits(bits)
}

/// Approximate `e^x` (paper Eq 14): `BS(log2(e)·x + Avg + b − 1)`.
///
/// Maximum relative error of the raw approximation is ~3.9% (mean ~1.5%);
/// the paper recovers most of this with [`crate::Recovery`].
///
/// # Examples
///
/// ```
/// use pim_approx::fast_exp;
///
/// let x = -2.0f32;
/// let rel = (fast_exp(x) - x.exp()).abs() / x.exp();
/// assert!(rel < 0.04);
/// ```
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    fast_exp2(LOG2_E * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_constant_matches_integral() {
        // ∫₀¹ 2^t dt = 1/ln2; ∫₀¹ t dt = 1/2.
        let integral = 1.0 / std::f64::consts::LN_2 - 0.5 - 1.0;
        assert!((EXP_MANTISSA_AVG as f64 - integral).abs() < 1e-6);
    }

    #[test]
    fn integer_powers_of_two_are_near_exact() {
        for e in -10i32..=10 {
            let exact = 2f32.powi(e);
            let approx = fast_exp2(e as f32);
            // Avg biases the mantissa slightly; integer inputs see a frac
            // representation of exactly Avg, i.e. ~-5.7% mantissa offset.
            assert!(
                ((approx - exact) / exact).abs() < 0.06,
                "2^{e}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn exp_relative_error_bounded() {
        let mut max_rel = 0.0f32;
        let mut sum_rel = 0.0f64;
        let mut n = 0usize;
        let mut x = -20.0f32;
        while x <= 20.0 {
            let exact = x.exp();
            let rel = ((fast_exp(x) - exact) / exact).abs();
            max_rel = max_rel.max(rel);
            sum_rel += rel as f64;
            n += 1;
            x += 0.01;
        }
        assert!(max_rel < 0.04, "max relative error {max_rel}");
        assert!(sum_rel / (n as f64) < 0.02, "mean relative error");
    }

    #[test]
    fn exp_is_monotone_on_grid() {
        let mut prev = fast_exp(-10.0);
        let mut x = -10.0f32 + 0.05;
        while x <= 10.0 {
            let cur = fast_exp(x);
            assert!(cur >= prev, "fast_exp not monotone at {x}");
            prev = cur;
            x += 0.05;
        }
    }

    #[test]
    fn extreme_inputs_saturate() {
        assert!(fast_exp(-1000.0) >= 0.0);
        assert!(fast_exp(-1000.0) < 1e-30);
        assert!(fast_exp(1000.0).is_finite());
        assert!(fast_exp(1000.0) > 1e30);
    }

    #[test]
    fn softmax_use_case_is_stable() {
        // The routing softmax always calls exp on max-subtracted values,
        // i.e. inputs in (-inf, 0]; verify sane behaviour there.
        for x in [-0.0f32, -0.5, -1.0, -5.0, -20.0] {
            let e = fast_exp(x);
            assert!(e > 0.0 && e <= 1.0 + 0.04, "exp({x}) = {e}");
        }
    }
}
