//! Equivalence suite for the monomorphized / boxed / arena / parallel
//! routing paths.
//!
//! The refactor away from `&dyn MathBackend` + per-call allocation is only
//! safe because every execution strategy computes the *same* floats. These
//! tests pin that down bitwise:
//!
//! * generic (monomorphized) calls vs `&dyn MathBackend` calls;
//! * fresh-scratch calls vs warm reused-scratch calls;
//! * batch-parallel sharded routing vs single-threaded routing;
//! * the arena-backed `CapsNet::forward_with` vs the materializing
//!   `CapsNet::forward`.

use capsnet::routing::{
    dynamic_routing, dynamic_routing_parallel, dynamic_routing_with, em_routing,
    em_routing_parallel, em_routing_with,
};
use capsnet::{
    ApproxMath, CapsNet, CapsNetSpec, ExactMath, ForwardArena, MathBackend, RoutingAlgorithm,
    RoutingScratch,
};
use pim_tensor::Tensor;

fn uhat(nb: usize, nl: usize, nh: usize, ch: usize, seed: u64) -> Tensor {
    Tensor::uniform(&[nb, nl, nh, ch], -0.5, 0.5, seed)
}

fn backends() -> Vec<(&'static str, Box<dyn MathBackend>)> {
    vec![
        ("exact", Box::new(ExactMath)),
        ("approx+recovery", Box::new(ApproxMath::with_recovery())),
        ("approx", Box::new(ApproxMath::without_recovery())),
    ]
}

#[test]
fn dynamic_monomorphized_matches_boxed_bitwise() {
    let u = uhat(4, 24, 6, 8, 11);
    for batch_shared in [true, false] {
        // Monomorphized: B = ExactMath / ApproxMath.
        let mono_exact = dynamic_routing(&u, 3, batch_shared, &ExactMath).unwrap();
        let mono_approx =
            dynamic_routing(&u, 3, batch_shared, &ApproxMath::with_recovery()).unwrap();
        // Boxed: B = dyn MathBackend, virtual dispatch.
        let dyn_exact: &dyn MathBackend = &ExactMath;
        let dyn_approx: &dyn MathBackend = &ApproxMath::with_recovery();
        let boxed_exact = dynamic_routing(&u, 3, batch_shared, dyn_exact).unwrap();
        let boxed_approx = dynamic_routing(&u, 3, batch_shared, dyn_approx).unwrap();
        assert_eq!(
            mono_exact.v, boxed_exact.v,
            "exact v (shared={batch_shared})"
        );
        assert_eq!(mono_exact.coefficients, boxed_exact.coefficients);
        assert_eq!(
            mono_approx.v, boxed_approx.v,
            "approx v (shared={batch_shared})"
        );
        assert_eq!(mono_approx.coefficients, boxed_approx.coefficients);
    }
}

#[test]
fn em_monomorphized_matches_boxed_bitwise() {
    let u = uhat(3, 20, 5, 6, 12);
    for (name, boxed) in backends() {
        let via_dyn = em_routing(&u, 3, boxed.as_ref()).unwrap();
        let via_mono = match name {
            "exact" => em_routing(&u, 3, &ExactMath).unwrap(),
            "approx+recovery" => em_routing(&u, 3, &ApproxMath::with_recovery()).unwrap(),
            _ => em_routing(&u, 3, &ApproxMath::without_recovery()).unwrap(),
        };
        assert_eq!(via_mono.v, via_dyn.v, "{name} v");
        assert_eq!(via_mono.coefficients, via_dyn.coefficients, "{name} r");
    }
}

#[test]
fn warm_scratch_matches_fresh_allocations_bitwise() {
    let mut scratch = RoutingScratch::new();
    // Reuse one scratch across differently-shaped problems, interleaving
    // algorithms, and compare against fresh-scratch runs each time.
    for (seed, (nb, nl, nh, ch)) in [(1u64, (2, 12, 4, 6)), (2, (5, 30, 8, 4)), (3, (1, 6, 3, 8))]
        .into_iter()
        .enumerate()
        .map(|(i, d)| (i as u64 + 40, d.1))
    {
        let u = uhat(nb, nl, nh, ch, seed);
        for batch_shared in [true, false] {
            let fresh = dynamic_routing(&u, 3, batch_shared, &ExactMath).unwrap();
            let warm = dynamic_routing_with(&u, 3, batch_shared, &ExactMath, &mut scratch).unwrap();
            assert_eq!(fresh.v, warm.v);
            assert_eq!(fresh.coefficients, warm.coefficients);
        }
        let fresh = em_routing(&u, 2, &ApproxMath::with_recovery()).unwrap();
        let warm = em_routing_with(&u, 2, &ApproxMath::with_recovery(), &mut scratch).unwrap();
        assert_eq!(fresh.v, warm.v);
        assert_eq!(fresh.coefficients, warm.coefficients);
    }
}

#[test]
fn batch_parallel_matches_single_threaded_bitwise() {
    // Big enough to clear the PAR_MIN_WORK gate so sharding really happens
    // on multicore machines.
    let u = uhat(24, 96, 10, 16, 13);
    for (name, backend) in backends() {
        let serial_dyn = dynamic_routing(&u, 3, false, backend.as_ref()).unwrap();
        let par_dyn = dynamic_routing_parallel(&u, 3, backend.as_ref()).unwrap();
        assert_eq!(serial_dyn.v, par_dyn.v, "{name} dynamic v");
        assert_eq!(
            serial_dyn.coefficients, par_dyn.coefficients,
            "{name} dynamic c"
        );

        let serial_em = em_routing(&u, 2, backend.as_ref()).unwrap();
        let par_em = em_routing_parallel(&u, 2, backend.as_ref()).unwrap();
        assert_eq!(serial_em.v, par_em.v, "{name} em v");
        assert_eq!(serial_em.coefficients, par_em.coefficients, "{name} em r");
    }
}

#[test]
fn arena_forward_matches_materializing_forward_bitwise() {
    for routing in [RoutingAlgorithm::Dynamic, RoutingAlgorithm::Em] {
        for batch_shared in [true, false] {
            let mut spec = CapsNetSpec::tiny_for_tests();
            spec.routing = routing;
            spec.batch_shared_routing = batch_shared;
            let net = CapsNet::seeded(&spec, 77).unwrap();
            let mut arena = ForwardArena::new();
            // Reuse the arena across calls and batch sizes; every call must
            // match the materializing path bitwise.
            for (seed, batch) in [(1u64, 4), (2, 4), (3, 2), (4, 6)] {
                let images = Tensor::uniform(
                    &[batch, 1, spec.input_hw.0, spec.input_hw.1],
                    0.0,
                    1.0,
                    seed,
                );
                let owned = net.forward(&images, &ExactMath).unwrap();
                let view = net.forward_with(&images, &ExactMath, &mut arena).unwrap();
                assert_eq!(owned.class_capsules.as_slice(), view.class_capsules());
                assert_eq!(owned.class_norms_sq.as_slice(), view.class_norms_sq());
                assert_eq!(
                    owned.routing_coefficients.as_slice(),
                    view.routing_coefficients()
                );
                assert_eq!(
                    owned.routing_coefficients.shape().dims(),
                    view.coefficient_dims()
                );
                assert_eq!(owned.predictions(), view.predictions());
                let roundtrip = view.to_owned_output().unwrap();
                assert_eq!(roundtrip.class_capsules, owned.class_capsules);
            }
        }
    }
}
