//! Property-based tests for the routing procedure and squash invariants.

use capsnet::routing::{dynamic_routing, em_routing};
use capsnet::{squash_in_place, ApproxMath, ExactMath};
use pim_tensor::Tensor;
use proptest::prelude::*;

/// Strategy: a û tensor with bounded values and small dimensions.
fn u_hat_strategy() -> impl Strategy<Value = (Tensor, usize, usize, usize, usize)> {
    (1usize..=3, 2usize..=6, 2usize..=4, 2usize..=6).prop_flat_map(|(b, l, h, ch)| {
        proptest::collection::vec(-1.0f32..1.0, b * l * h * ch)
            .prop_map(move |data| (Tensor::from_vec(data, &[b, l, h, ch]).unwrap(), b, l, h, ch))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn routing_coefficients_always_distributions((u_hat, _b, l, h, _ch) in u_hat_strategy()) {
        let out = dynamic_routing(&u_hat, 3, true, &ExactMath).unwrap();
        prop_assert_eq!(out.coefficients.shape().dims(), &[l, h]);
        for row in out.coefficients.as_slice().chunks(h) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {}", sum);
            prop_assert!(row.iter().all(|&c| (0.0..=1.0 + 1e-6).contains(&c)));
        }
    }

    #[test]
    fn output_capsule_norms_below_one((u_hat, b, _l, h, ch) in u_hat_strategy()) {
        let out = dynamic_routing(&u_hat, 2, true, &ExactMath).unwrap();
        prop_assert_eq!(out.v.shape().dims(), &[b, h, ch]);
        for cap in out.v.as_slice().chunks(ch) {
            let norm: f32 = cap.iter().map(|&x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm < 1.0, "norm {}", norm);
        }
    }

    #[test]
    fn routing_is_permutation_equivariant_in_l((u_hat, b, l, h, ch) in u_hat_strategy()) {
        // Reversing the order of L capsules must not change the output
        // H capsules (Eq 2 sums over L).
        let src = u_hat.as_slice();
        let mut rev = vec![0.0f32; src.len()];
        for bi in 0..b {
            for i in 0..l {
                let a = ((bi * l) + i) * h * ch;
                let z = ((bi * l) + (l - 1 - i)) * h * ch;
                rev[z..z + h * ch].copy_from_slice(&src[a..a + h * ch]);
            }
        }
        let rev_t = Tensor::from_vec(rev, &[b, l, h, ch]).unwrap();
        let out_a = dynamic_routing(&u_hat, 3, true, &ExactMath).unwrap();
        let out_b = dynamic_routing(&rev_t, 3, true, &ExactMath).unwrap();
        for (x, y) in out_a.v.as_slice().iter().zip(out_b.v.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4, "{} vs {}", x, y);
        }
    }

    #[test]
    fn single_iteration_routing_is_scale_equivariant_in_direction(
        (u_hat, _b, _l, _h, ch) in u_hat_strategy(),
    ) {
        // With one iteration the coefficients are uniform (b = 0), so
        // s = mean(û) scales linearly and the squash preserves direction
        // exactly. (With more iterations the agreement feedback makes
        // routing genuinely scale-sensitive — that is the point of the
        // algorithm, so no such property holds there.)
        let scaled = u_hat.scale(2.0);
        let a = dynamic_routing(&u_hat, 1, true, &ExactMath).unwrap();
        let b2 = dynamic_routing(&scaled, 1, true, &ExactMath).unwrap();
        for (x, y) in a.v.as_slice().chunks(ch).zip(b2.v.as_slice().chunks(ch)) {
            let dot: f32 = x.iter().zip(y).map(|(p, q)| p * q).sum();
            let nx: f32 = x.iter().map(|p| p * p).sum::<f32>().sqrt();
            let ny: f32 = y.iter().map(|q| q * q).sum::<f32>().sqrt();
            if nx > 1e-4 && ny > 1e-4 {
                prop_assert!(
                    dot / (nx * ny) > 0.999,
                    "direction changed: cos {}",
                    dot / (nx * ny)
                );
            }
        }
    }

    #[test]
    fn approx_and_exact_routing_stay_close((u_hat, _b, _l, _h, _ch) in u_hat_strategy()) {
        let exact = dynamic_routing(&u_hat, 3, true, &ExactMath).unwrap();
        let approx = dynamic_routing(&u_hat, 3, true, &ApproxMath::with_recovery()).unwrap();
        for (a, e) in approx.v.as_slice().iter().zip(exact.v.as_slice()) {
            prop_assert!((a - e).abs() < 0.1, "approx {} vs exact {}", a, e);
        }
    }

    #[test]
    fn em_responsibilities_are_distributions((u_hat, b, l, h, _ch) in u_hat_strategy()) {
        let out = em_routing(&u_hat, 2, &ExactMath).unwrap();
        prop_assert_eq!(out.coefficients.shape().dims(), &[b, l, h]);
        for row in out.coefficients.as_slice().chunks(h) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-3, "row sum {}", sum);
        }
    }

    #[test]
    fn squash_norm_monotone_and_bounded(
        data in proptest::collection::vec(-10.0f32..10.0, 1..16),
        scale in 1.1f32..4.0,
    ) {
        let mut small = data.clone();
        let mut large: Vec<f32> = data.iter().map(|&x| x * scale).collect();
        squash_in_place(&mut small, &ExactMath);
        squash_in_place(&mut large, &ExactMath);
        let n = |v: &[f32]| v.iter().map(|&x| x * x).sum::<f32>().sqrt();
        prop_assert!(n(&small) <= 1.0 + 1e-5);
        prop_assert!(n(&large) <= 1.0 + 1e-5);
        prop_assert!(n(&large) + 1e-6 >= n(&small), "squash must be monotone in magnitude");
    }
}
