//! Scalar-reference vs SIMD equivalence for the vectorized routing engine.
//!
//! The contract of the kernel refactor (mirroring the paper's
//! approximate-with-recovery framing): the scalar path is the bitwise
//! reference, and the runtime-dispatched SIMD path under [`ExactMath`] may
//! reassociate and use a polynomial `exp`, but must stay within **1e-5
//! relative error** on routing outputs and change **no classifications**.
//!
//! `ScalarRef` below implements only the required `MathBackend` methods
//! with `libm`, so every slice/block kernel takes the default scalar
//! implementation — exactly what `ExactMath` computes under
//! `PIM_SIMD=scalar`. Comparing the two inside one process needs no global
//! dispatch mutation.

use capsnet::routing::{dynamic_routing, em_routing};
use capsnet::{CapsNet, CapsNetSpec, ExactMath, MathBackend, RoutingAlgorithm};
use pim_tensor::simd::{self, SimdLevel};
use pim_tensor::Tensor;

/// Exact scalar math through the default (scalar) slice kernels — the
/// bitwise reference the SIMD path is measured against.
struct ScalarRef;

impl MathBackend for ScalarRef {
    fn exp(&self, x: f32) -> f32 {
        x.exp()
    }
    fn inv_sqrt(&self, x: f32) -> f32 {
        1.0 / x.sqrt()
    }
    fn div(&self, a: f32, b: f32) -> f32 {
        a / b
    }
    fn sqrt(&self, x: f32) -> f32 {
        x.sqrt()
    }
    fn name(&self) -> &'static str {
        "scalar-ref"
    }
}

/// Maximum error relative to each reference vector's scale: outputs are
/// compared chunk by chunk (`chunk` = one capsule, or one coefficient
/// row), normalizing by that chunk's ∞-norm. Individual components pass
/// through zero as coefficients shift, so element-wise relative error is
/// unbounded by construction; what routing consumers (norm-based
/// classification, agreement updates) see is error relative to the
/// vector's magnitude.
fn max_rel_err(got: &[f32], want: &[f32], chunk: usize) -> f32 {
    let mut worst = 0.0f32;
    for (g_chunk, w_chunk) in got.chunks(chunk).zip(want.chunks(chunk)) {
        let scale = w_chunk
            .iter()
            .fold(0.0f32, |m, &x| m.max(x.abs()))
            .max(f32::MIN_POSITIVE);
        for (&g, &w) in g_chunk.iter().zip(w_chunk) {
            worst = worst.max((g - w).abs() / scale);
        }
    }
    worst
}

#[test]
fn dynamic_routing_simd_within_1e5_of_scalar_reference() {
    for (nb, nl, nh, ch, shared) in [
        (4usize, 64usize, 10usize, 16usize, true),
        (4, 64, 10, 16, false),
        (2, 33, 7, 13, true), // awkward sizes exercise SIMD remainders
        (1, 5, 3, 4, false),
    ] {
        let u = Tensor::uniform(&[nb, nl, nh, ch], -0.5, 0.5, 42);
        let vec_out = dynamic_routing(&u, 3, shared, &ExactMath).unwrap();
        let ref_out = dynamic_routing(&u, 3, shared, &ScalarRef).unwrap();
        let v_err = max_rel_err(vec_out.v.as_slice(), ref_out.v.as_slice(), ch);
        let c_err = max_rel_err(
            vec_out.coefficients.as_slice(),
            ref_out.coefficients.as_slice(),
            nh,
        );
        assert!(
            v_err <= 1e-5,
            "[{nb},{nl},{nh},{ch}] shared={shared}: v drift {v_err}"
        );
        assert!(
            c_err <= 1e-5,
            "[{nb},{nl},{nh},{ch}] shared={shared}: coefficient drift {c_err}"
        );
    }
}

#[test]
fn em_routing_simd_within_1e5_of_scalar_reference() {
    for (nb, nl, nh, ch) in [(4usize, 48usize, 6usize, 16usize), (2, 21, 5, 9)] {
        let u = Tensor::uniform(&[nb, nl, nh, ch], -0.5, 0.5, 7);
        let vec_out = em_routing(&u, 3, &ExactMath).unwrap();
        let ref_out = em_routing(&u, 3, &ScalarRef).unwrap();
        let v_err = max_rel_err(vec_out.v.as_slice(), ref_out.v.as_slice(), ch);
        let r_err = max_rel_err(
            vec_out.coefficients.as_slice(),
            ref_out.coefficients.as_slice(),
            nh,
        );
        assert!(v_err <= 1e-5, "[{nb},{nl},{nh},{ch}]: v drift {v_err}");
        assert!(
            r_err <= 1e-5,
            "[{nb},{nl},{nh},{ch}]: responsibility drift {r_err}"
        );
    }
}

#[test]
fn simd_path_is_classification_identical_end_to_end() {
    // Full forward passes over enough samples that a systematic
    // classification drift would show; both routing algorithms.
    for algorithm in [RoutingAlgorithm::Dynamic, RoutingAlgorithm::Em] {
        let mut spec = CapsNetSpec::tiny_for_tests();
        spec.routing = algorithm;
        let net = CapsNet::seeded(&spec, 99).unwrap();
        for seed in 0..4u64 {
            let images = Tensor::uniform(
                &[16, spec.input_channels, spec.input_hw.0, spec.input_hw.1],
                0.0,
                1.0,
                seed,
            );
            let vec_preds = net.forward(&images, &ExactMath).unwrap().predictions();
            let ref_preds = net.forward(&images, &ScalarRef).unwrap().predictions();
            assert_eq!(
                vec_preds, ref_preds,
                "{algorithm:?} seed {seed}: SIMD path changed classifications"
            );
        }
    }
}

#[test]
fn scalar_dispatch_is_bitwise_identical_to_reference() {
    // When the dispatcher resolves to the scalar path (no AVX2, or
    // PIM_SIMD=scalar), ExactMath must be *bitwise* the reference — this is
    // the debugging escape hatch the README documents.
    if simd::active_level() != SimdLevel::Scalar {
        // Can't flip the cached dispatch in-process; covered by the
        // PIM_SIMD=scalar job variant and non-AVX2 hosts.
        return;
    }
    let u = Tensor::uniform(&[2, 32, 8, 12], -0.5, 0.5, 3);
    let a = dynamic_routing(&u, 3, true, &ExactMath).unwrap();
    let b = dynamic_routing(&u, 3, true, &ScalarRef).unwrap();
    assert_eq!(a.v, b.v);
    assert_eq!(a.coefficients, b.coefficients);
    let ea = em_routing(&u, 3, &ExactMath).unwrap();
    let eb = em_routing(&u, 3, &ScalarRef).unwrap();
    assert_eq!(ea.v, eb.v);
    assert_eq!(ea.coefficients, eb.coefficients);
}

#[test]
fn boxed_simd_backend_matches_monomorphized_simd_backend_bitwise() {
    // Virtual dispatch must select the same overridden kernels.
    let u = Tensor::uniform(&[2, 40, 6, 10], -0.5, 0.5, 11);
    let boxed: &dyn MathBackend = &ExactMath;
    let a = dynamic_routing(&u, 3, true, boxed).unwrap();
    let b = dynamic_routing(&u, 3, true, &ExactMath).unwrap();
    assert_eq!(a.v, b.v);
    assert_eq!(a.coefficients, b.coefficients);
}
