//! The final Caps layer: per-pair prediction vectors (`û = u·W`, paper Eq 1)
//! followed by the routing procedure.

use pim_tensor::{QuantDType, Tensor};

use crate::backend::MathBackend;
use crate::config::RoutingAlgorithm;
use crate::error::CapsNetError;
use crate::routing::{self, RoutingOutput};
use crate::weights::{WeightRef, WeightView};

/// The Caps layer connecting `L` low-level capsules (dimension `C_L`) to
/// `H` high-level capsules (dimension `C_H`) via routing.
#[derive(Debug, Clone)]
pub struct CapsLayer {
    /// Weights stored as `[L, C_L, H*C_H]` for per-capsule GEMM — dense
    /// `f32` or quantized bytes dequantized on the fly.
    weight: WeightView,
    l_caps: usize,
    cl_dim: usize,
    h_caps: usize,
    ch_dim: usize,
    routing: RoutingAlgorithm,
    iterations: usize,
    batch_shared: bool,
}

impl CapsLayer {
    /// Creates the layer with seeded weights; `sharpness` scales the
    /// weight magnitude (and therefore the agreement logits — see
    /// [`crate::CapsNetSpec::routing_sharpness`]).
    #[allow(clippy::too_many_arguments)] // mirrors the spec fields 1:1
    pub fn seeded(
        l_caps: usize,
        cl_dim: usize,
        h_caps: usize,
        ch_dim: usize,
        routing: RoutingAlgorithm,
        iterations: usize,
        sharpness: f32,
        seed: u64,
    ) -> Self {
        let std = sharpness * (1.0 / cl_dim as f32).sqrt();
        CapsLayer {
            weight: WeightView::F32(Tensor::randn(&[l_caps, cl_dim, h_caps * ch_dim], std, seed)),
            l_caps,
            cl_dim,
            h_caps,
            ch_dim,
            routing,
            iterations,
            batch_shared: true,
        }
    }

    /// Creates the layer from an explicit weight tensor (the
    /// weight-loading path). The weight layout is `[L, C_L, H·C_H]`, the
    /// same per-capsule GEMM layout [`Self::seeded`] produces.
    ///
    /// # Errors
    ///
    /// Returns [`CapsNetError::InvalidSpec`] when the weight shape does not
    /// match the capsule geometry.
    pub fn from_weights(
        weight: Tensor,
        l_caps: usize,
        cl_dim: usize,
        h_caps: usize,
        ch_dim: usize,
        routing: RoutingAlgorithm,
        iterations: usize,
    ) -> Result<Self, CapsNetError> {
        Self::from_weight_view(
            WeightView::F32(weight),
            l_caps,
            cl_dim,
            h_caps,
            ch_dim,
            routing,
            iterations,
        )
    }

    /// [`Self::from_weights`] over a typed [`WeightView`] — the path
    /// quantized artifacts load through. Quantized weights stay in byte
    /// form; the prediction-vector kernel dequantizes them on the fly.
    ///
    /// # Errors
    ///
    /// Returns [`CapsNetError::InvalidSpec`] when the weight shape does not
    /// match the capsule geometry.
    pub fn from_weight_view(
        weight: WeightView,
        l_caps: usize,
        cl_dim: usize,
        h_caps: usize,
        ch_dim: usize,
        routing: RoutingAlgorithm,
        iterations: usize,
    ) -> Result<Self, CapsNetError> {
        let dims = weight.dims();
        if dims != [l_caps, cl_dim, h_caps * ch_dim] {
            return Err(CapsNetError::InvalidSpec(format!(
                "caps weight must be [{l_caps}, {cl_dim}, {}], got {dims:?}",
                h_caps * ch_dim
            )));
        }
        Ok(CapsLayer {
            weight,
            l_caps,
            cl_dim,
            h_caps,
            ch_dim,
            routing,
            iterations,
            batch_shared: true,
        })
    }

    /// The transformation weight `[L, C_L, H·C_H]` (paper Eq 1's `W_ij`,
    /// flattened per low-level capsule).
    pub fn weight(&self) -> &WeightView {
        &self.weight
    }

    /// Switches between batch-shared (paper) and per-sample (Sabour et al.)
    /// routing coefficients.
    pub fn with_batch_shared(mut self, batch_shared: bool) -> Self {
        self.batch_shared = batch_shared;
        self
    }

    /// Number of low-level capsules.
    pub fn l_caps(&self) -> usize {
        self.l_caps
    }

    /// Number of high-level capsules.
    pub fn h_caps(&self) -> usize {
        self.h_caps
    }

    /// Routing iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Computes the prediction vectors `û_{j|i} = u_i · W_{ij}` (Eq 1) for a
    /// batch: `[B, L, C_L] -> [B, L, H, C_H]`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the input does not match the layer.
    pub fn prediction_vectors<B: MathBackend + ?Sized>(
        &self,
        u: &Tensor,
        backend: &B,
    ) -> Result<Tensor, CapsNetError> {
        let mut out = Tensor::zeros(&[0]);
        let mut gather = Vec::new();
        self.prediction_vectors_into(u, backend, &mut out, &mut gather)?;
        Ok(out)
    }

    /// Allocation-free [`Self::prediction_vectors`]: writes `û` into `out`
    /// (resized in place) using the caller-owned `gather` buffer for the
    /// per-capsule input rows.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the input does not match the layer.
    pub fn prediction_vectors_into<B: MathBackend + ?Sized>(
        &self,
        u: &Tensor,
        backend: &B,
        out: &mut Tensor,
        gather: &mut Vec<f32>,
    ) -> Result<(), CapsNetError> {
        let dims = u.shape().dims();
        if dims.len() != 3 || dims[1] != self.l_caps || dims[2] != self.cl_dim {
            return Err(CapsNetError::InputMismatch {
                expected: format!("[B, {}, {}]", self.l_caps, self.cl_dim),
                actual: dims.to_vec(),
            });
        }
        let b = dims[0];
        let hc = self.h_caps * self.ch_dim;
        let u_src = u.as_slice();
        out.resize_for(&[b, self.l_caps, self.h_caps, self.ch_dim]);
        let out_buf = out.as_mut_slice();
        // Per low-level capsule i: gather u rows [B, CL] and multiply by
        // W_i [CL, H*CH]. The gather keeps the GEMM contiguous.
        gather.clear();
        gather.resize(b * self.cl_dim, 0.0);
        let u_i = gather;
        match self.weight.as_ref() {
            WeightRef::F32(w) => {
                let w_src = w.as_slice();
                for i in 0..self.l_caps {
                    for bi in 0..b {
                        let src = &u_src[(bi * self.l_caps + i) * self.cl_dim..][..self.cl_dim];
                        u_i[bi * self.cl_dim..(bi + 1) * self.cl_dim].copy_from_slice(src);
                    }
                    let w_i = &w_src[i * self.cl_dim * hc..(i + 1) * self.cl_dim * hc];
                    // out_i [B, H*CH]
                    for bi in 0..b {
                        let urow = &u_i[bi * self.cl_dim..(bi + 1) * self.cl_dim];
                        let orow = &mut out_buf[(bi * self.l_caps + i) * hc..][..hc];
                        for (d, &uv) in urow.iter().enumerate() {
                            if uv == 0.0 {
                                continue;
                            }
                            let wrow = &w_i[d * hc..(d + 1) * hc];
                            for (o, &wv) in orow.iter_mut().zip(wrow) {
                                *o += uv * wv;
                            }
                        }
                    }
                }
            }
            WeightRef::Quant(q) => {
                // Quantized weights stream straight from the stored bytes
                // through the backend's fused dequantize-accumulate
                // kernels — ~4x (int8) / 2x (fp16) fewer bytes than the
                // f32 path, and never an f32 materialization. One affine
                // block covers each stored vault partition, so a whole
                // W_i row block shares its (scale, zero_point).
                let bytes = q.bytes();
                let eb = q.dtype().elem_bytes();
                for i in 0..self.l_caps {
                    for bi in 0..b {
                        let src = &u_src[(bi * self.l_caps + i) * self.cl_dim..][..self.cl_dim];
                        u_i[bi * self.cl_dim..(bi + 1) * self.cl_dim].copy_from_slice(src);
                    }
                    let row0 = i * self.cl_dim * hc;
                    let block = q.block_at(row0);
                    debug_assert!(
                        row0 + self.cl_dim * hc <= block.start + block.elems,
                        "partition split must fall on capsule boundaries"
                    );
                    for bi in 0..b {
                        let urow = &u_i[bi * self.cl_dim..(bi + 1) * self.cl_dim];
                        let orow = &mut out_buf[(bi * self.l_caps + i) * hc..][..hc];
                        for (d, &uv) in urow.iter().enumerate() {
                            if uv == 0.0 {
                                continue;
                            }
                            let off = (row0 + d * hc) * eb;
                            match q.dtype() {
                                QuantDType::I8 => backend.axpy_i8(
                                    uv,
                                    &bytes[off..off + hc],
                                    block.scale,
                                    block.zero_point,
                                    orow,
                                ),
                                QuantDType::F16 => {
                                    backend.axpy_f16(uv, &bytes[off..off + hc * 2], orow)
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Full forward pass: prediction vectors then routing.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from [`Self::prediction_vectors`].
    pub fn forward<B: MathBackend + Sync + ?Sized>(
        &self,
        u: &Tensor,
        backend: &B,
    ) -> Result<RoutingOutput, CapsNetError> {
        let u_hat = self.prediction_vectors(u, backend)?;
        match (self.routing, self.batch_shared) {
            (RoutingAlgorithm::Dynamic, true) => {
                routing::dynamic_routing(&u_hat, self.iterations, true, backend)
            }
            // Per-sample coefficients route every sample independently, so
            // the batch shards across cores; results are bit-identical to
            // the serial path (the driver falls back to it for small work).
            (RoutingAlgorithm::Dynamic, false) => {
                routing::dynamic_routing_parallel(&u_hat, self.iterations, backend)
            }
            (RoutingAlgorithm::Em, _) => {
                routing::em_routing_parallel(&u_hat, self.iterations, backend)
            }
        }
    }

    /// Allocation-free forward pass for the arena-backed model path: `û`
    /// lands in `u_hat`, the routed capsules and coefficients in `scratch`
    /// (read them via [`RoutingScratch::v`] and the coefficient accessors).
    ///
    /// Serial by design — the batch-parallel driver owns per-thread
    /// scratches instead (see [`routing::dynamic_routing_parallel`]).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from [`Self::prediction_vectors_into`].
    pub fn forward_into<B: MathBackend + ?Sized>(
        &self,
        u: &Tensor,
        backend: &B,
        u_hat: &mut Tensor,
        gather: &mut Vec<f32>,
        scratch: &mut crate::routing::RoutingScratch,
    ) -> Result<(), CapsNetError> {
        self.prediction_vectors_into(u, backend, u_hat, gather)?;
        let d = u_hat.shape().dims();
        let dims = (d[0], d[1], d[2], d[3]);
        match self.routing {
            RoutingAlgorithm::Dynamic => routing::dynamic_routing_core(
                u_hat.as_slice(),
                dims,
                self.iterations,
                self.batch_shared,
                backend,
                scratch,
            ),
            RoutingAlgorithm::Em => {
                routing::em_routing_core(u_hat.as_slice(), dims, self.iterations, backend, scratch)
            }
        }
        Ok(())
    }

    /// `true` when routing coefficients are shared across the batch.
    pub fn batch_shared(&self) -> bool {
        self.batch_shared
    }

    /// The routing algorithm this layer uses.
    pub fn routing_algorithm(&self) -> RoutingAlgorithm {
        self.routing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ExactMath;

    fn layer() -> CapsLayer {
        CapsLayer::seeded(5, 4, 3, 6, RoutingAlgorithm::Dynamic, 3, 1.0, 17)
    }

    #[test]
    fn prediction_vector_shape() {
        let l = layer();
        let u = Tensor::uniform(&[2, 5, 4], -1.0, 1.0, 1);
        let u_hat = l.prediction_vectors(&u, &ExactMath).unwrap();
        assert_eq!(u_hat.shape().dims(), &[2, 5, 3, 6]);
    }

    #[test]
    fn prediction_vectors_match_manual_matvec() {
        let l = layer();
        let u = Tensor::uniform(&[1, 5, 4], -1.0, 1.0, 2);
        let u_hat = l.prediction_vectors(&u, &ExactMath).unwrap();
        // Manually compute û for capsule i=2, H capsule j=1.
        let i = 2;
        let w = l.weight.as_slice();
        let hc = 3 * 6;
        for j in 0..3 {
            for d in 0..6 {
                let mut acc = 0.0f32;
                for p in 0..4 {
                    acc += u.at(&[0, i, p]) * w[i * 4 * hc + p * hc + j * 6 + d];
                }
                let got = u_hat.at(&[0, i, j, d]);
                assert!((acc - got).abs() < 1e-5, "{acc} vs {got}");
            }
        }
    }

    #[test]
    fn input_mismatch_is_rejected() {
        let l = layer();
        let e = &ExactMath;
        assert!(l.prediction_vectors(&Tensor::zeros(&[2, 5, 3]), e).is_err());
        assert!(l.prediction_vectors(&Tensor::zeros(&[2, 4, 4]), e).is_err());
        assert!(l.prediction_vectors(&Tensor::zeros(&[2, 5]), e).is_err());
    }

    #[test]
    fn forward_produces_squashed_capsules() {
        let l = layer();
        let u = Tensor::uniform(&[2, 5, 4], -1.0, 1.0, 3);
        let out = l.forward(&u, &ExactMath).unwrap();
        assert_eq!(out.v.shape().dims(), &[2, 3, 6]);
        for cap in out.v.as_slice().chunks(6) {
            let n: f32 = cap.iter().map(|&x| x * x).sum::<f32>().sqrt();
            assert!(n < 1.0);
        }
    }

    #[test]
    fn quantized_weight_predictions_track_dequantized_f32() {
        use pim_tensor::QuantTensor;
        let l = layer();
        let u = Tensor::uniform(&[2, 5, 4], -1.0, 1.0, 9);
        let base = l.prediction_vectors(&u, &ExactMath).unwrap();
        let w = l.weight().expect_f32();
        for dtype in [QuantDType::I8, QuantDType::F16] {
            // Two blocks splitting the leading (capsule) dim, as the
            // store's vault partitioning does.
            let q = QuantTensor::quantize(dtype, w.as_slice(), w.shape().dims(), &[2, 3]).unwrap();
            // A layer over the *dequantized* f32 copy computes with the
            // same effective weights, so the fused path must track it.
            let deq =
                CapsLayer::from_weights(q.dequantize(), 5, 4, 3, 6, RoutingAlgorithm::Dynamic, 3)
                    .unwrap();
            let ql = CapsLayer::from_weight_view(
                crate::WeightView::Quant(q),
                5,
                4,
                3,
                6,
                RoutingAlgorithm::Dynamic,
                3,
            )
            .unwrap();
            let want = deq.prediction_vectors(&u, &ExactMath).unwrap();
            let got = ql.prediction_vectors(&u, &ExactMath).unwrap();
            assert_eq!(got.shape().dims(), base.shape().dims());
            for (g, w_) in got.as_slice().iter().zip(want.as_slice()) {
                assert!(
                    (g - w_).abs() <= 1e-5 * w_.abs().max(1.0),
                    "fused dequant path diverged: {g} vs {w_} ({dtype:?})"
                );
            }
            // And the quantized result stays close to the f32 original
            // (loose bound: int8 carries real quantization error).
            for (g, b) in got.as_slice().iter().zip(base.as_slice()) {
                assert!((g - b).abs() < 0.2, "{g} vs {b} ({dtype:?})");
            }
        }
    }

    #[test]
    fn quantized_weight_rejects_bad_shape() {
        use pim_tensor::QuantTensor;
        let q = QuantTensor::quantize(QuantDType::I8, &[0.5; 24], &[2, 3, 4], &[2]).unwrap();
        assert!(CapsLayer::from_weight_view(
            crate::WeightView::Quant(q),
            5,
            4,
            3,
            6,
            RoutingAlgorithm::Dynamic,
            3
        )
        .is_err());
    }

    #[test]
    fn em_routing_also_runs() {
        let l = CapsLayer::seeded(5, 4, 3, 6, RoutingAlgorithm::Em, 3, 1.0, 17);
        let u = Tensor::uniform(&[2, 5, 4], -1.0, 1.0, 3);
        let out = l.forward(&u, &ExactMath).unwrap();
        assert_eq!(out.v.shape().dims(), &[2, 3, 6]);
        assert!(out.v.as_slice().iter().all(|x| x.is_finite()));
    }
}
