//! The PrimaryCaps layer: a convolution whose output channels are grouped
//! into capsule vectors, squashed per capsule (Fig 2's "PrimaryCaps Layer").

use pim_tensor::{Conv2dScratch, Tensor};

use crate::backend::MathBackend;
use crate::error::CapsNetError;
use crate::layers::conv::{Activation, Conv2dLayer};
use crate::squash::squash_in_place;

/// PrimaryCaps: conv → reshape into `[B, L, C_L]` capsules → squash.
#[derive(Debug, Clone)]
pub struct PrimaryCapsLayer {
    conv: Conv2dLayer,
    caps_channels: usize,
    cl_dim: usize,
}

impl PrimaryCapsLayer {
    /// Creates the layer with seeded weights.
    ///
    /// The convolution produces `caps_channels * cl_dim` output channels;
    /// each group of `cl_dim` channels at each spatial location is one
    /// low-level capsule.
    pub fn seeded(
        in_channels: usize,
        caps_channels: usize,
        cl_dim: usize,
        kernel: usize,
        stride: usize,
        seed: u64,
    ) -> Self {
        PrimaryCapsLayer {
            conv: Conv2dLayer::seeded(
                in_channels,
                caps_channels * cl_dim,
                kernel,
                stride,
                Activation::Linear,
                seed,
            ),
            caps_channels,
            cl_dim,
        }
    }

    /// Creates the layer around an existing convolution (the
    /// weight-loading path).
    ///
    /// # Errors
    ///
    /// Returns [`CapsNetError::InvalidSpec`] when the convolution's output
    /// channels are not `caps_channels · cl_dim`.
    pub fn from_conv(
        conv: Conv2dLayer,
        caps_channels: usize,
        cl_dim: usize,
    ) -> Result<Self, CapsNetError> {
        let out_channels = conv.weight().shape().dims()[0];
        if out_channels != caps_channels * cl_dim {
            return Err(CapsNetError::InvalidSpec(format!(
                "primary conv has {out_channels} output channels, expected \
                 {caps_channels} capsule groups × {cl_dim} dims"
            )));
        }
        Ok(PrimaryCapsLayer {
            conv,
            caps_channels,
            cl_dim,
        })
    }

    /// The underlying convolution.
    pub fn conv(&self) -> &Conv2dLayer {
        &self.conv
    }

    /// Number of capsule channel groups.
    pub fn caps_channels(&self) -> usize {
        self.caps_channels
    }

    /// Capsule dimension `C_L`.
    pub fn cl_dim(&self) -> usize {
        self.cl_dim
    }

    /// Forward pass: `[B, in, H, W] -> [B, L, C_L]` with
    /// `L = caps_channels · H' · W'`, squash applied per capsule.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward<B: MathBackend + ?Sized>(
        &self,
        input: &Tensor,
        backend: &B,
    ) -> Result<Tensor, CapsNetError> {
        let mut out = Tensor::zeros(&[0]);
        let mut conv_buf = Tensor::zeros(&[0]);
        let mut scratch = Conv2dScratch::default();
        self.forward_into(input, backend, &mut out, &mut conv_buf, &mut scratch)?;
        Ok(out)
    }

    /// Allocation-free forward pass: the convolution output lands in
    /// `conv_buf`, the squashed capsules in `out` (both resized in place).
    /// Same math as [`Self::forward`].
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward_into<B: MathBackend + ?Sized>(
        &self,
        input: &Tensor,
        backend: &B,
        out: &mut Tensor,
        conv_buf: &mut Tensor,
        scratch: &mut Conv2dScratch,
    ) -> Result<(), CapsNetError> {
        self.conv.forward_into(input, conv_buf, scratch)?; // [B, caps*cl, H', W']
        let dims = conv_buf.shape().dims().to_vec();
        let (b, _c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let l = self.caps_channels * h * w;
        // Regroup [B, caps*cl, H, W] -> [B, L, CL] where capsule index runs
        // over (channel_group, y, x).
        out.resize_for(&[b, l, self.cl_dim]);
        let dst = out.as_mut_slice();
        let src = conv_buf.as_slice();
        for bi in 0..b {
            for g in 0..self.caps_channels {
                for y in 0..h {
                    for x in 0..w {
                        let cap = (g * h + y) * w + x;
                        for d in 0..self.cl_dim {
                            let ch = g * self.cl_dim + d;
                            dst[(bi * l + cap) * self.cl_dim + d] =
                                src[((bi * dims[1] + ch) * h + y) * w + x];
                        }
                    }
                }
            }
        }
        // Squash each capsule vector.
        for cap in dst.chunks_mut(self.cl_dim) {
            squash_in_place(cap, backend);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ExactMath;

    #[test]
    fn forward_shape_and_norms() {
        let layer = PrimaryCapsLayer::seeded(2, 3, 4, 3, 2, 5);
        let input = Tensor::uniform(&[2, 2, 9, 9], -1.0, 1.0, 6);
        let out = layer.forward(&input, &ExactMath).unwrap();
        // 9 -> (9-3)/2+1 = 4; L = 3*4*4 = 48.
        assert_eq!(out.shape().dims(), &[2, 48, 4]);
        // All capsule norms must be < 1 after squashing.
        for cap in out.as_slice().chunks(4) {
            let n: f32 = cap.iter().map(|&x| x * x).sum::<f32>().sqrt();
            assert!(n < 1.0, "capsule norm {n} >= 1");
        }
    }

    #[test]
    fn capsule_grouping_is_channelwise() {
        // With identity-like behaviour hard to arrange through conv, at
        // least check determinism and that different seeds differ.
        let input = Tensor::uniform(&[1, 1, 7, 7], 0.0, 1.0, 1);
        let a = PrimaryCapsLayer::seeded(1, 2, 2, 3, 2, 10)
            .forward(&input, &ExactMath)
            .unwrap();
        let b = PrimaryCapsLayer::seeded(1, 2, 2, 3, 2, 10)
            .forward(&input, &ExactMath)
            .unwrap();
        let c = PrimaryCapsLayer::seeded(1, 2, 2, 3, 2, 11)
            .forward(&input, &ExactMath)
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cl_dim_accessor() {
        let layer = PrimaryCapsLayer::seeded(1, 2, 8, 3, 1, 0);
        assert_eq!(layer.cl_dim(), 8);
    }
}
