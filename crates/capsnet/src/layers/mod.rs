//! The CapsNet layer zoo: convolution, PrimaryCaps, the routed Caps layer
//! and the fully-connected decoder layers.

mod caps;
mod conv;
mod fc;
mod primary;

pub use caps::CapsLayer;
pub use conv::{Activation, Conv2dLayer};
pub use fc::DenseLayer;
pub use primary::PrimaryCapsLayer;
