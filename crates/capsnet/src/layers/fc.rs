//! Fully-connected decoder layers (Fig 2's reconstruction stack).

use pim_tensor::{matmul_into, simd, QuantDType, Tensor};

use crate::error::CapsNetError;
use crate::layers::conv::Activation;
use crate::weights::{WeightRef, WeightView};

/// A dense layer `y = act(x·W + b)`.
#[derive(Debug, Clone)]
pub struct DenseLayer {
    weight: WeightView, // [in, out]
    bias: Tensor,       // [out]
    activation: Activation,
}

impl DenseLayer {
    /// Creates a layer with seeded Xavier-style weights.
    pub fn seeded(input: usize, output: usize, activation: Activation, seed: u64) -> Self {
        let std = (1.0 / input as f32).sqrt();
        DenseLayer {
            weight: WeightView::F32(Tensor::randn(&[input, output], std, seed)),
            bias: Tensor::zeros(&[output]),
            activation,
        }
    }

    /// Creates a layer from explicit weights.
    ///
    /// # Errors
    ///
    /// Returns [`CapsNetError::InvalidSpec`] when the weight is not a
    /// matrix or the bias length does not match its output width.
    pub fn from_weights(
        weight: Tensor,
        bias: Tensor,
        activation: Activation,
    ) -> Result<Self, CapsNetError> {
        Self::from_weight_view(WeightView::F32(weight), bias, activation)
    }

    /// [`Self::from_weights`] over a typed [`WeightView`] — the path
    /// quantized artifacts load through. Quantized weights stay in byte
    /// form and dequantize on the fly inside [`Self::forward_into`].
    ///
    /// # Errors
    ///
    /// Returns [`CapsNetError::InvalidSpec`] when the weight is not a
    /// matrix or the bias length does not match its output width.
    pub fn from_weight_view(
        weight: WeightView,
        bias: Tensor,
        activation: Activation,
    ) -> Result<Self, CapsNetError> {
        let dims = weight.dims().to_vec();
        if dims.len() != 2 {
            return Err(CapsNetError::InvalidSpec(format!(
                "dense weight must be [in, out], got {dims:?}"
            )));
        }
        if bias.len() != dims[1] {
            return Err(CapsNetError::InvalidSpec(format!(
                "dense bias length {} != output width {}",
                bias.len(),
                dims[1]
            )));
        }
        Ok(DenseLayer {
            weight,
            bias,
            activation,
        })
    }

    /// The weight matrix `[in, out]`.
    pub fn weight(&self) -> &WeightView {
        &self.weight
    }

    /// The bias vector `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// The activation applied after the affine map.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Forward pass `[B, in] -> [B, out]`.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, CapsNetError> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Self::forward`]: writes the activations into `out`
    /// (resized in place), with the GEMM running through
    /// [`pim_tensor::matmul_into`] so a warm buffer makes the whole layer
    /// zero-allocation.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward_into(&self, input: &Tensor, out: &mut Tensor) -> Result<(), CapsNetError> {
        let dims = input.shape().dims();
        let (input_dim, output_dim) = (self.input_dim(), self.output_dim());
        if dims.len() != 2 || dims[1] != input_dim {
            return Err(CapsNetError::InputMismatch {
                expected: format!("[B, {input_dim}]"),
                actual: dims.to_vec(),
            });
        }
        let rows = dims[0];
        out.resize_for(&[rows, output_dim]);
        match self.weight.as_ref() {
            WeightRef::F32(w) => {
                matmul_into(
                    input.as_slice(),
                    w.as_slice(),
                    out.as_mut_slice(),
                    rows,
                    input_dim,
                    output_dim,
                );
            }
            WeightRef::Quant(q) => {
                // Row-major W [in, out]: accumulate x[r][k] · W[k, :] into
                // out[r, :] through the fused dequantize kernels — the
                // quantized rows stream straight from the stored bytes.
                let bytes = q.bytes();
                let eb = q.dtype().elem_bytes();
                let x = input.as_slice();
                let data = out.as_mut_slice();
                data.fill(0.0);
                for r in 0..rows {
                    let orow = &mut data[r * output_dim..(r + 1) * output_dim];
                    for k in 0..input_dim {
                        let xv = x[r * input_dim + k];
                        if xv == 0.0 {
                            continue;
                        }
                        let block = q.block_at(k * output_dim);
                        let off = k * output_dim * eb;
                        match q.dtype() {
                            QuantDType::I8 => simd::axpy_i8(
                                xv,
                                &bytes[off..off + output_dim],
                                block.scale,
                                block.zero_point,
                                orow,
                            ),
                            QuantDType::F16 => {
                                simd::axpy_f16(xv, &bytes[off..off + output_dim * 2], orow)
                            }
                        }
                    }
                }
            }
        }
        let bias = self.bias.as_slice();
        let data = out.as_mut_slice();
        for r in 0..rows {
            for c in 0..output_dim {
                data[r * output_dim + c] += bias[c];
            }
        }
        self.activation.apply_in_place(out.as_mut_slice());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let layer = DenseLayer::seeded(8, 4, Activation::Relu, 1);
        let x = Tensor::uniform(&[3, 8], -1.0, 1.0, 2);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[3, 4]);
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
        assert_eq!(layer.input_dim(), 8);
        assert_eq!(layer.output_dim(), 4);
    }

    #[test]
    fn forward_into_matches_owned_and_reuses_buffer() {
        let layer = DenseLayer::seeded(8, 4, Activation::Relu, 1);
        let x = Tensor::uniform(&[3, 8], -1.0, 1.0, 2);
        let owned = layer.forward(&x).unwrap();
        let mut out = Tensor::zeros(&[0]);
        layer.forward_into(&x, &mut out).unwrap();
        assert_eq!(owned, out);
        // Second pass into the warm buffer: same result, shape preserved.
        layer.forward_into(&x, &mut out).unwrap();
        assert_eq!(owned, out);
        assert!(layer
            .forward_into(&Tensor::zeros(&[3, 7]), &mut out)
            .is_err());
    }

    #[test]
    fn wrong_input_width_errors() {
        let layer = DenseLayer::seeded(8, 4, Activation::Linear, 1);
        let x = Tensor::zeros(&[3, 7]);
        assert!(layer.forward(&x).is_err());
    }

    #[test]
    fn quantized_weight_forward_tracks_dequantized_f32() {
        use pim_tensor::QuantTensor;
        let layer = DenseLayer::seeded(8, 4, Activation::Sigmoid, 5);
        let x = Tensor::uniform(&[3, 8], -1.0, 1.0, 6);
        let w = layer.weight().expect_f32();
        for dtype in [QuantDType::I8, QuantDType::F16] {
            let q = QuantTensor::quantize(dtype, w.as_slice(), w.shape().dims(), &[5, 3]).unwrap();
            let deq =
                DenseLayer::from_weights(q.dequantize(), layer.bias().clone(), Activation::Sigmoid)
                    .unwrap();
            let ql = DenseLayer::from_weight_view(
                crate::WeightView::Quant(q),
                layer.bias().clone(),
                Activation::Sigmoid,
            )
            .unwrap();
            assert_eq!(ql.input_dim(), 8);
            assert_eq!(ql.output_dim(), 4);
            let want = deq.forward(&x).unwrap();
            let got = ql.forward(&x).unwrap();
            for (g, w_) in got.as_slice().iter().zip(want.as_slice()) {
                assert!(
                    (g - w_).abs() <= 1e-5,
                    "fused dequant dense diverged: {g} vs {w_} ({dtype:?})"
                );
            }
        }
    }

    #[test]
    fn quantized_weight_rejects_bias_mismatch() {
        use pim_tensor::QuantTensor;
        let q = QuantTensor::quantize(QuantDType::F16, &[0.25; 32], &[8, 4], &[8]).unwrap();
        assert!(DenseLayer::from_weight_view(
            crate::WeightView::Quant(q),
            Tensor::zeros(&[3]),
            Activation::Linear
        )
        .is_err());
    }

    #[test]
    fn sigmoid_output_bounded() {
        let layer = DenseLayer::seeded(4, 4, Activation::Sigmoid, 3);
        let x = Tensor::uniform(&[2, 4], -10.0, 10.0, 4);
        let y = layer.forward(&x).unwrap();
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
