//! Fully-connected decoder layers (Fig 2's reconstruction stack).

use pim_tensor::Tensor;

use crate::error::CapsNetError;
use crate::layers::conv::Activation;

/// A dense layer `y = act(x·W + b)`.
#[derive(Debug, Clone)]
pub struct DenseLayer {
    weight: Tensor, // [in, out]
    bias: Tensor,   // [out]
    activation: Activation,
}

impl DenseLayer {
    /// Creates a layer with seeded Xavier-style weights.
    pub fn seeded(input: usize, output: usize, activation: Activation, seed: u64) -> Self {
        let std = (1.0 / input as f32).sqrt();
        DenseLayer {
            weight: Tensor::randn(&[input, output], std, seed),
            bias: Tensor::zeros(&[output]),
            activation,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.weight.shape().dims()[0]
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.weight.shape().dims()[1]
    }

    /// Forward pass `[B, in] -> [B, out]`.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, CapsNetError> {
        let mut out = input.matmul(&self.weight)?;
        let (rows, cols) = (out.shape().dims()[0], out.shape().dims()[1]);
        let bias = self.bias.as_slice();
        let data = out.as_mut_slice();
        for r in 0..rows {
            for c in 0..cols {
                data[r * cols + c] += bias[c];
            }
        }
        Ok(self.activation.apply(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let layer = DenseLayer::seeded(8, 4, Activation::Relu, 1);
        let x = Tensor::uniform(&[3, 8], -1.0, 1.0, 2);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[3, 4]);
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
        assert_eq!(layer.input_dim(), 8);
        assert_eq!(layer.output_dim(), 4);
    }

    #[test]
    fn wrong_input_width_errors() {
        let layer = DenseLayer::seeded(8, 4, Activation::Linear, 1);
        let x = Tensor::zeros(&[3, 7]);
        assert!(layer.forward(&x).is_err());
    }

    #[test]
    fn sigmoid_output_bounded() {
        let layer = DenseLayer::seeded(4, 4, Activation::Sigmoid, 3);
        let x = Tensor::uniform(&[2, 4], -10.0, 10.0, 4);
        let y = layer.forward(&x).unwrap();
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
