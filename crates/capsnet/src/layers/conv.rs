//! Plain convolutional layer (the CNN-type layer that stays on the GPU in
//! the paper's hybrid design).

use pim_tensor::{conv2d, Conv2dSpec, Tensor};
use serde::{Deserialize, Serialize};

use crate::error::CapsNetError;

/// Pointwise activation applied after a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// No activation.
    #[default]
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a tensor.
    pub fn apply(&self, t: Tensor) -> Tensor {
        match self {
            Activation::Linear => t,
            Activation::Relu => t.relu(),
            Activation::Sigmoid => t.sigmoid(),
        }
    }
}

/// A 2D convolutional layer with optional bias and activation.
#[derive(Debug, Clone)]
pub struct Conv2dLayer {
    weight: Tensor,
    bias: Option<Tensor>,
    spec: Conv2dSpec,
    activation: Activation,
}

impl Conv2dLayer {
    /// Creates a layer with deterministic seeded weights (He-style scale).
    pub fn seeded(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        activation: Activation,
        seed: u64,
    ) -> Self {
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        Conv2dLayer {
            weight: Tensor::randn(&[out_channels, in_channels, kernel, kernel], std, seed),
            bias: Some(Tensor::zeros(&[out_channels])),
            spec: Conv2dSpec::new(kernel, stride, 0),
            activation,
        }
    }

    /// Creates a layer from explicit weights.
    ///
    /// # Errors
    ///
    /// Returns [`CapsNetError::InvalidSpec`] when the weight tensor is not
    /// rank 4 or bias length mismatches.
    pub fn from_weights(
        weight: Tensor,
        bias: Option<Tensor>,
        stride: usize,
        activation: Activation,
    ) -> Result<Self, CapsNetError> {
        let dims = weight.shape().dims().to_vec();
        if dims.len() != 4 || dims[2] != dims[3] {
            return Err(CapsNetError::InvalidSpec(format!(
                "conv weight must be [out,in,k,k], got {dims:?}"
            )));
        }
        if let Some(b) = &bias {
            if b.len() != dims[0] {
                return Err(CapsNetError::InvalidSpec(format!(
                    "bias length {} != out channels {}",
                    b.len(),
                    dims[0]
                )));
            }
        }
        Ok(Conv2dLayer {
            spec: Conv2dSpec::new(dims[2], stride, 0),
            weight,
            bias,
            activation,
        })
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// The weight tensor `[out, in, k, k]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Forward pass: `[B, in, H, W] -> [B, out, H', W']`.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, CapsNetError> {
        let out = conv2d(input, &self.weight, self.bias.as_ref(), self.spec)?;
        Ok(self.activation.apply(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let layer = Conv2dLayer::seeded(1, 4, 3, 1, Activation::Relu, 1);
        let input = Tensor::uniform(&[2, 1, 8, 8], 0.0, 1.0, 2);
        let out = layer.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2, 4, 6, 6]);
        // ReLU guarantees non-negative outputs.
        assert!(out.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn from_weights_validates() {
        let w = Tensor::zeros(&[4, 1, 3, 3]);
        assert!(Conv2dLayer::from_weights(w.clone(), None, 1, Activation::Linear).is_ok());
        let bad_bias = Tensor::zeros(&[5]);
        assert!(
            Conv2dLayer::from_weights(w, Some(bad_bias), 1, Activation::Linear).is_err()
        );
        let non_square = Tensor::zeros(&[4, 1, 3, 5]);
        assert!(Conv2dLayer::from_weights(non_square, None, 1, Activation::Linear).is_err());
    }

    #[test]
    fn activations_apply() {
        let t = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        assert_eq!(Activation::Relu.apply(t.clone()).as_slice(), &[0.0, 2.0]);
        assert_eq!(Activation::Linear.apply(t.clone()).as_slice(), &[-1.0, 2.0]);
        let s = Activation::Sigmoid.apply(t);
        assert!(s.as_slice()[0] < 0.5 && s.as_slice()[1] > 0.5);
    }

    #[test]
    fn seeded_weights_are_deterministic() {
        let a = Conv2dLayer::seeded(2, 3, 3, 1, Activation::Linear, 9);
        let b = Conv2dLayer::seeded(2, 3, 3, 1, Activation::Linear, 9);
        assert_eq!(a.weight().as_slice(), b.weight().as_slice());
    }
}
