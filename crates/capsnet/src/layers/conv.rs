//! Plain convolutional layer (the CNN-type layer that stays on the GPU in
//! the paper's hybrid design).

use pim_tensor::{conv2d_pretransposed_into, Conv2dScratch, Conv2dSpec, Tensor};
use serde::{Deserialize, Serialize};

use crate::error::CapsNetError;

/// Pointwise activation applied after a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// No activation.
    #[default]
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a tensor.
    pub fn apply(&self, t: Tensor) -> Tensor {
        match self {
            Activation::Linear => t,
            Activation::Relu => t.relu(),
            Activation::Sigmoid => t.sigmoid(),
        }
    }

    /// Applies the activation elementwise in place (the allocation-free
    /// counterpart of [`Activation::apply`], same math).
    pub fn apply_in_place(&self, data: &mut [f32]) {
        match self {
            Activation::Linear => {}
            Activation::Relu => {
                for x in data {
                    *x = x.max(0.0);
                }
            }
            Activation::Sigmoid => {
                for x in data {
                    *x = 1.0 / (1.0 + (-*x).exp());
                }
            }
        }
    }
}

/// A 2D convolutional layer with optional bias and activation.
///
/// The weight is also cached pre-reshaped+transposed (`[in*k*k, out]`) so
/// the forward GEMM never re-derives it — the transpose the seed code paid
/// per `forward` call now happens once at construction.
#[derive(Debug, Clone)]
pub struct Conv2dLayer {
    weight: Tensor,
    weight_t: Tensor,
    bias: Option<Tensor>,
    spec: Conv2dSpec,
    activation: Activation,
}

impl Conv2dLayer {
    /// Creates a layer with deterministic seeded weights (He-style scale).
    pub fn seeded(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        activation: Activation,
        seed: u64,
    ) -> Self {
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        let weight = Tensor::randn(&[out_channels, in_channels, kernel, kernel], std, seed);
        let weight_t = transpose_weight(&weight);
        Conv2dLayer {
            weight,
            weight_t,
            bias: Some(Tensor::zeros(&[out_channels])),
            spec: Conv2dSpec::new(kernel, stride, 0),
            activation,
        }
    }

    /// Creates a layer from explicit weights.
    ///
    /// # Errors
    ///
    /// Returns [`CapsNetError::InvalidSpec`] when the weight tensor is not
    /// rank 4 or bias length mismatches.
    pub fn from_weights(
        weight: Tensor,
        bias: Option<Tensor>,
        stride: usize,
        activation: Activation,
    ) -> Result<Self, CapsNetError> {
        let dims = weight.shape().dims().to_vec();
        if dims.len() != 4 || dims[2] != dims[3] {
            return Err(CapsNetError::InvalidSpec(format!(
                "conv weight must be [out,in,k,k], got {dims:?}"
            )));
        }
        if let Some(b) = &bias {
            if b.len() != dims[0] {
                return Err(CapsNetError::InvalidSpec(format!(
                    "bias length {} != out channels {}",
                    b.len(),
                    dims[0]
                )));
            }
        }
        let weight_t = transpose_weight(&weight);
        Ok(Conv2dLayer {
            spec: Conv2dSpec::new(dims[2], stride, 0),
            weight,
            weight_t,
            bias,
            activation,
        })
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// The weight tensor `[out, in, k, k]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias vector `[out]`, when the layer has one.
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }

    /// The activation applied after the convolution.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Forward pass: `[B, in, H, W] -> [B, out, H', W']`.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, CapsNetError> {
        let mut out = Tensor::zeros(&[0]);
        let mut scratch = Conv2dScratch::default();
        self.forward_into(input, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Allocation-free forward pass: writes into `out` (resized in place)
    /// using caller-owned scratch. Same math as [`Self::forward`].
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward_into(
        &self,
        input: &Tensor,
        out: &mut Tensor,
        scratch: &mut Conv2dScratch,
    ) -> Result<(), CapsNetError> {
        conv2d_pretransposed_into(
            input,
            &self.weight_t,
            self.bias.as_ref(),
            self.spec,
            out,
            scratch,
        )?;
        self.activation.apply_in_place(out.as_mut_slice());
        Ok(())
    }
}

/// `[out, in, k, k]` → `[in*k*k, out]`, the GEMM-ready layout.
fn transpose_weight(weight: &Tensor) -> Tensor {
    let dims = weight.shape().dims();
    let out_c = dims[0];
    let ckk: usize = dims[1..].iter().product();
    weight
        .reshape(&[out_c, ckk])
        .and_then(|w| w.transpose())
        .expect("conv weight is rank 4 by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let layer = Conv2dLayer::seeded(1, 4, 3, 1, Activation::Relu, 1);
        let input = Tensor::uniform(&[2, 1, 8, 8], 0.0, 1.0, 2);
        let out = layer.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2, 4, 6, 6]);
        // ReLU guarantees non-negative outputs.
        assert!(out.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn from_weights_validates() {
        let w = Tensor::zeros(&[4, 1, 3, 3]);
        assert!(Conv2dLayer::from_weights(w.clone(), None, 1, Activation::Linear).is_ok());
        let bad_bias = Tensor::zeros(&[5]);
        assert!(Conv2dLayer::from_weights(w, Some(bad_bias), 1, Activation::Linear).is_err());
        let non_square = Tensor::zeros(&[4, 1, 3, 5]);
        assert!(Conv2dLayer::from_weights(non_square, None, 1, Activation::Linear).is_err());
    }

    #[test]
    fn activations_apply() {
        let t = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        assert_eq!(Activation::Relu.apply(t.clone()).as_slice(), &[0.0, 2.0]);
        assert_eq!(Activation::Linear.apply(t.clone()).as_slice(), &[-1.0, 2.0]);
        let s = Activation::Sigmoid.apply(t);
        assert!(s.as_slice()[0] < 0.5 && s.as_slice()[1] > 0.5);
    }

    #[test]
    fn seeded_weights_are_deterministic() {
        let a = Conv2dLayer::seeded(2, 3, 3, 1, Activation::Linear, 9);
        let b = Conv2dLayer::seeded(2, 3, 3, 1, Activation::Linear, 9);
        assert_eq!(a.weight().as_slice(), b.weight().as_slice());
    }
}
