//! The squash non-linearity (paper Eq 3):
//!
//! ```text
//! v = (||s||² / (1 + ||s||²)) · (s / ||s||)
//! ```
//!
//! shrinks short vectors toward zero and long vectors toward unit norm,
//! preserving orientation. In backend terms it costs `CH` multiply-adds for
//! the norm square, one inverse square root, one division and `CH`
//! multiplies — the "3·CH + 19 operations" the paper's E-model charges
//! per capsule (Eq 6).

use crate::backend::MathBackend;

/// Computes the scalar factor `||s||/(1+||s||²)` the squash applies to `s`,
/// given the squared norm.
///
/// Exposed separately so the census/PE-program builders can reason about
/// the special-function content: one `inv_sqrt`, one `div`, two multiplies.
///
/// Generic over the backend (with `?Sized` so `&dyn MathBackend` still
/// works): concrete backends monomorphize and inline, which is what keeps
/// the routing hot loop free of virtual calls.
#[inline]
pub fn squash_scale<B: MathBackend + ?Sized>(norm_sq: f32, backend: &B) -> f32 {
    // Non-positive, NaN, or overflowed (∞) norm squares all clamp to a zero
    // scale: capsule norm-squares are non-negative and finite by
    // construction, so anything else is numerical noise, and the raw
    // composition below would turn ∞ into `∞ · inv_sqrt(∞) = NaN`.
    if norm_sq.is_nan() || norm_sq <= 0.0 || norm_sq == f32::INFINITY {
        return 0.0;
    }
    // ||s||/(1+||s||²)  ==  norm_sq * inv_sqrt(norm_sq) / (1 + norm_sq)
    let norm = norm_sq * backend.inv_sqrt(norm_sq);
    backend.div(norm, 1.0 + norm_sq)
}

/// Applies the squash in place to one capsule vector.
///
/// # Examples
///
/// ```
/// use capsnet::{squash_in_place, ExactMath};
///
/// let mut long = [100.0f32, 0.0];
/// squash_in_place(&mut long, &ExactMath);
/// assert!((long[0] - 100.0 * 100.0 / (1.0 + 100.0f32 * 100.0) ).abs() < 1e-3);
/// assert!(long[0] < 1.0 && long[0] > 0.99); // long vectors approach unit norm
///
/// let mut short = [0.01f32, 0.0];
/// squash_in_place(&mut short, &ExactMath);
/// assert!(short[0] < 0.011); // short vectors shrink toward zero
/// ```
#[inline]
pub fn squash_in_place<B: MathBackend + ?Sized>(s: &mut [f32], backend: &B) {
    if s.is_empty() {
        return;
    }
    let norm_sq = backend.dot(s, s);
    let k = squash_scale(norm_sq, backend);
    for x in s {
        *x *= k;
    }
}

/// Squashes `s` into `v` without mutating `s`: the norm square is one
/// backend `dot`, the write-out one backend `scale_add` — both SIMD-wide
/// under [`crate::ExactMath`], and `v`'s previous contents are ignored
/// (safe for reused arena buffers).
///
/// # Panics
///
/// Debug-asserts `s` and `v` have equal lengths.
#[inline]
pub fn squash_into<B: MathBackend + ?Sized>(s: &[f32], v: &mut [f32], backend: &B) {
    debug_assert_eq!(s.len(), v.len());
    // Zero-length capsule slices are a no-op by definition (guard audit:
    // degenerate geometry must not reach the backend kernels, whose
    // behavior on empty chunks is an implementation detail).
    if s.is_empty() {
        return;
    }
    let norm_sq = backend.dot(s, s);
    let k = squash_scale(norm_sq, backend);
    backend.scale_add(k, s, 0.0, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ApproxMath, ExactMath};

    fn norm(v: &[f32]) -> f32 {
        v.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    #[test]
    fn zero_vector_stays_zero() {
        let mut v = [0.0f32; 4];
        squash_in_place(&mut v, &ExactMath);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn output_norm_below_one() {
        for scale in [0.01f32, 0.1, 1.0, 10.0, 1000.0] {
            let mut v = [scale, -scale, scale * 0.5];
            squash_in_place(&mut v, &ExactMath);
            assert!(norm(&v) < 1.0, "norm {} at scale {scale}", norm(&v));
        }
    }

    #[test]
    fn preserves_direction() {
        let mut v = [3.0f32, 4.0];
        squash_in_place(&mut v, &ExactMath);
        // direction (3,4)/5 must be preserved
        let n = norm(&v);
        assert!((v[0] / n - 0.6).abs() < 1e-5);
        assert!((v[1] / n - 0.8).abs() < 1e-5);
    }

    #[test]
    fn matches_closed_form() {
        let mut v = [1.0f32, 2.0, 2.0]; // norm 3, norm_sq 9
        squash_in_place(&mut v, &ExactMath);
        // k = 9/(1+9) / 3 = 0.3
        assert!((v[0] - 0.3).abs() < 1e-6);
        assert!((v[1] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn monotone_in_magnitude() {
        // Larger inputs squash to larger outputs (norm-wise).
        let mut prev = 0.0f32;
        for scale in [0.1f32, 0.5, 1.0, 2.0, 8.0] {
            let mut v = [scale, 0.0];
            squash_in_place(&mut v, &ExactMath);
            assert!(v[0] > prev);
            prev = v[0];
        }
    }

    #[test]
    fn squash_into_matches_in_place() {
        for backend_choice in 0..2 {
            let src = [0.3f32, -0.8, 1.4, 0.05, -2.2];
            let mut in_place = src;
            let mut into = [f32::NAN; 5]; // stale garbage must be overwritten
            if backend_choice == 0 {
                squash_in_place(&mut in_place, &ExactMath);
                squash_into(&src, &mut into, &ExactMath);
            } else {
                let b = ApproxMath::with_recovery();
                squash_in_place(&mut in_place, &b);
                squash_into(&src, &mut into, &b);
            }
            for (a, b) in in_place.iter().zip(&into) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn zero_vector_edge_cases_all_lengths() {
        // Zero vectors must squash to exactly zero for every length the
        // SIMD kernels chunk differently (full lanes, remainders, empty).
        for len in [0usize, 1, 3, 7, 8, 9, 16, 17] {
            let mut v = vec![0.0f32; len];
            squash_in_place(&mut v, &ExactMath);
            assert!(v.iter().all(|&x| x == 0.0), "len {len}");
            let mut out = vec![f32::NAN; len];
            squash_into(&vec![0.0f32; len], &mut out, &ExactMath);
            assert!(out.iter().all(|&x| x == 0.0), "len {len}");
        }
    }

    #[test]
    fn empty_capsule_slices_are_a_no_op_on_every_backend() {
        // Regression (guard audit): zero-length capsules must no-op before
        // reaching the backend kernels, on exact and approximate backends.
        let approx = ApproxMath::with_recovery();
        squash_in_place::<ExactMath>(&mut [], &ExactMath);
        squash_in_place::<ApproxMath>(&mut [], &approx);
        squash_into::<ExactMath>(&[], &mut [], &ExactMath);
        squash_into::<ApproxMath>(&[], &mut [], &approx);
    }

    #[test]
    fn huge_norms_stay_finite_and_below_one() {
        // Norm squares up to ~1e38 (the edge of f32) must not round-trip
        // through ∞ or NaN; the squashed norm approaches 1 from below.
        for scale in [1e10f32, 1e15, 1e18, 3e18] {
            let mut v = [scale, -scale, scale * 0.5, scale * 0.25];
            squash_in_place(&mut v, &ExactMath);
            assert!(v.iter().all(|x| x.is_finite()), "scale {scale}: {v:?}");
            let n = norm(&v);
            assert!(n < 1.0 + 1e-5, "scale {scale}: norm {n}");
            assert!(n > 0.9, "scale {scale}: norm collapsed to {n}");
        }
    }

    #[test]
    fn overflowing_norm_square_clamps_not_nans() {
        // ||s||² overflows f32 → inf; squash_scale must treat that as the
        // long-vector limit (norm → 1 direction preserved or zeroed), never
        // NaN.
        let mut v = [f32::MAX / 2.0, f32::MAX / 2.0];
        squash_in_place(&mut v, &ExactMath);
        assert!(v.iter().all(|x| !x.is_nan()), "{v:?}");
    }

    #[test]
    fn subnormal_inputs_shrink_toward_zero() {
        let tiny = f32::MIN_POSITIVE; // smallest normal
        let mut v = [tiny, tiny * 0.5, 0.0];
        squash_in_place(&mut v, &ExactMath);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!(norm(&v) <= tiny, "short vectors shrink: {v:?}");
    }

    #[test]
    fn approx_backend_is_close() {
        let approx = ApproxMath::with_recovery();
        for scale in [0.05f32, 0.7, 3.0, 50.0] {
            let mut a = [scale, scale * 0.3, -scale];
            let mut e = a;
            squash_in_place(&mut a, &approx);
            squash_in_place(&mut e, &ExactMath);
            for (x, y) in a.iter().zip(&e) {
                assert!(
                    (x - y).abs() <= 0.01 * (1.0 + y.abs()),
                    "approx {x} vs exact {y} at scale {scale}"
                );
            }
        }
    }
}
