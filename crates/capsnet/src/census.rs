//! The **op census**: exact operation / byte / synchronization counts for
//! every routing-procedure equation and every network layer, derived purely
//! from a [`CapsNetSpec`] and a batch size.
//!
//! Both simulators consume these numbers:
//!
//! * `gpu-sim` lowers the layer profiles to GPU kernels and derives the
//!   Fig 4–7 characterization (traffic vs on-chip storage, stall classes);
//! * `hmc-sim` / `pim-capsnet` turn the per-equation profiles into PE
//!   micro-op streams and per-vault DRAM traffic.
//!
//! Counting conventions:
//!
//! * a `mac` is one multiply-accumulate pair (2 FLOPs);
//! * special functions (`exp`, `div`, `isqrt`) are counted as single
//!   operations here — each consumer expands them to its own cost (CUDA SFU
//!   vs PE approximation sequence);
//! * `reduction_groups`/`reduction_width` describe the aggregation shape of
//!   each equation (the source of the paper's synchronization overheads):
//!   e.g. Eq 2 reduces over `L` for every `(batch, H-capsule, component)`.

use serde::{Deserialize, Serialize};

use crate::config::{CapsNetSpec, RoutingAlgorithm};
use crate::error::CapsNetError;

/// Bytes per FP32 scalar.
pub const F32_BYTES: u64 = 4;

/// The five equations of the dynamic routing procedure (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RpEquation {
    /// `û_{j|i} = u_i · W_ij` — prediction vectors.
    Eq1,
    /// `s_j = Σ_i û_{j|i} · c_ij` — weighted aggregation over L.
    Eq2,
    /// `v_j = squash(s_j)`.
    Eq3,
    /// `b_ij += Σ_k v_j^k · û_{j|i}^k` — agreement update.
    Eq4,
    /// `c_ij = softmax_j(b_ij)`.
    Eq5,
}

impl RpEquation {
    /// All five equations in execution order.
    pub const ALL: [RpEquation; 5] = [
        RpEquation::Eq1,
        RpEquation::Eq2,
        RpEquation::Eq3,
        RpEquation::Eq4,
        RpEquation::Eq5,
    ];

    /// 0-based index.
    pub fn index(&self) -> usize {
        match self {
            RpEquation::Eq1 => 0,
            RpEquation::Eq2 => 1,
            RpEquation::Eq3 => 2,
            RpEquation::Eq4 => 3,
            RpEquation::Eq5 => 4,
        }
    }
}

impl std::fmt::Display for RpEquation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Eq{}", self.index() + 1)
    }
}

/// Operation and traffic counts for one RP equation (for one execution —
/// multiply by iterations where [`EquationProfile::per_iteration`] is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EquationProfile {
    /// Which equation this profiles.
    pub eq: RpEquation,
    /// Multiply-accumulate pairs.
    pub macs: u64,
    /// Standalone additions.
    pub adds: u64,
    /// Standalone multiplications.
    pub muls: u64,
    /// Divisions.
    pub divs: u64,
    /// Exponentials.
    pub exps: u64,
    /// Inverse square roots.
    pub isqrts: u64,
    /// Bytes read from memory (all operand tensors).
    pub read_bytes: u64,
    /// Bytes written to memory (result tensors).
    pub write_bytes: u64,
    /// Number of aggregation groups (each is a synchronization point on a
    /// shared-memory architecture).
    pub reduction_groups: u64,
    /// Elements reduced per group.
    pub reduction_width: u64,
    /// Whether the equation re-executes every routing iteration.
    pub per_iteration: bool,
}

impl EquationProfile {
    /// Total FLOPs, counting a MAC as two operations and special functions
    /// as one each.
    pub fn flops(&self) -> u64 {
        2 * self.macs + self.adds + self.muls + self.divs + self.exps + self.isqrts
    }

    /// Total special-function invocations.
    pub fn special_ops(&self) -> u64 {
        self.divs + self.exps + self.isqrts
    }

    /// Total memory traffic.
    pub fn traffic_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// Sizes (in bytes) of the RP's tensors for one batch.
///
/// The paper's Fig 6(a) compares `total_unshareable` against GPU on-chip
/// storage; "unshareable" means not reusable across batches (û, s, v, b, c
/// are all batch- or iteration-private).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntermediateSizes {
    /// Input capsules `u`: `B·L·C_L` scalars.
    pub u: u64,
    /// Weights `W`: `L·H·C_L·C_H` scalars (shared across batches).
    pub w: u64,
    /// Prediction vectors `û`: `B·L·H·C_H` scalars — the giant one.
    pub u_hat: u64,
    /// Pre-squash accumulators `s`: `B·H·C_H`.
    pub s: u64,
    /// High-level capsules `v`: `B·H·C_H`.
    pub v: u64,
    /// Agreement logits `b`: `L·H`.
    pub b: u64,
    /// Routing coefficients `c`: `L·H`.
    pub c: u64,
}

impl IntermediateSizes {
    /// Total size of the unshareable intermediate variables
    /// (û, s, v, b, c — everything produced inside the RP).
    pub fn total_unshareable(&self) -> u64 {
        self.u_hat + self.s + self.v + self.b + self.c
    }

    /// Fig 6(a)'s ratio: intermediate size / on-chip storage.
    pub fn ratio_to_onchip(&self, onchip_bytes: u64) -> f64 {
        self.total_unshareable() as f64 / onchip_bytes as f64
    }
}

/// Complete census of the routing procedure for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpCensus {
    /// Batch size `N_B`.
    pub nb: usize,
    /// Low-level capsules `N_L`.
    pub nl: usize,
    /// High-level capsules `N_H`.
    pub nh: usize,
    /// Low-level capsule dimension `C_L`.
    pub cl: usize,
    /// High-level capsule dimension `C_H`.
    pub ch: usize,
    /// Routing iterations `I`.
    pub iterations: usize,
    /// Which routing algorithm the census describes. EM routing maps onto
    /// the same five slots because its aggregation structure matches
    /// (votes → per-H reduction over L → per-capsule nonlinearity →
    /// all-pairs agreement → per-L normalization over H) — the paper's
    /// §2.2 "similar execution pattern" observation, made literal.
    #[serde(default)]
    pub routing: RoutingAlgorithm,
    /// Per-equation profiles (`Eq1..Eq5`, in order).
    pub equations: Vec<EquationProfile>,
    /// Tensor sizes in bytes.
    pub sizes: IntermediateSizes,
}

impl RpCensus {
    /// Builds the census from raw dimensions.
    pub fn new(nb: usize, nl: usize, nh: usize, cl: usize, ch: usize, iterations: usize) -> Self {
        let (nb_, nl_, nh_, cl_, ch_) = (nb as u64, nl as u64, nh as u64, cl as u64, ch as u64);
        let sizes = IntermediateSizes {
            u: nb_ * nl_ * cl_ * F32_BYTES,
            w: nl_ * nh_ * cl_ * ch_ * F32_BYTES,
            u_hat: nb_ * nl_ * nh_ * ch_ * F32_BYTES,
            s: nb_ * nh_ * ch_ * F32_BYTES,
            v: nb_ * nh_ * ch_ * F32_BYTES,
            b: nl_ * nh_ * F32_BYTES,
            c: nl_ * nh_ * F32_BYTES,
        };
        let eq1 = EquationProfile {
            eq: RpEquation::Eq1,
            macs: nb_ * nl_ * nh_ * ch_ * cl_,
            adds: 0,
            muls: 0,
            divs: 0,
            exps: 0,
            isqrts: 0,
            read_bytes: sizes.u + sizes.w,
            write_bytes: sizes.u_hat,
            reduction_groups: 0, // C_L-wide dot products stay thread-local
            reduction_width: cl_,
            per_iteration: false,
        };
        let eq2 = EquationProfile {
            eq: RpEquation::Eq2,
            macs: nb_ * nh_ * ch_ * nl_,
            adds: 0,
            muls: 0,
            divs: 0,
            exps: 0,
            isqrts: 0,
            read_bytes: sizes.u_hat + sizes.c,
            write_bytes: sizes.s,
            reduction_groups: nb_ * nh_ * ch_,
            reduction_width: nl_,
            per_iteration: true,
        };
        let eq3 = EquationProfile {
            eq: RpEquation::Eq3,
            // norm square: CH macs; then scale: 1 isqrt, 1 div, 1 add,
            // (CH+1) muls per capsule.
            macs: nb_ * nh_ * ch_,
            adds: nb_ * nh_,
            muls: nb_ * nh_ * (ch_ + 1),
            divs: nb_ * nh_,
            exps: 0,
            isqrts: nb_ * nh_,
            read_bytes: sizes.s,
            write_bytes: sizes.v,
            reduction_groups: nb_ * nh_,
            reduction_width: ch_,
            per_iteration: true,
        };
        let eq4 = EquationProfile {
            eq: RpEquation::Eq4,
            macs: nb_ * nl_ * nh_ * ch_,
            adds: nb_ * nl_ * nh_, // accumulation of agreements into b
            muls: 0,
            divs: 0,
            exps: 0,
            isqrts: 0,
            read_bytes: sizes.u_hat + sizes.v + sizes.b,
            write_bytes: sizes.b,
            reduction_groups: nl_ * nh_,
            reduction_width: nb_,
            per_iteration: true,
        };
        let eq5 = EquationProfile {
            eq: RpEquation::Eq5,
            macs: 0,
            adds: nl_ * (nh_ - 1),
            muls: 0,
            divs: nl_ * nh_,
            exps: nl_ * nh_,
            isqrts: 0,
            read_bytes: sizes.b,
            write_bytes: sizes.c,
            reduction_groups: nl_,
            reduction_width: nh_,
            per_iteration: true,
        };
        RpCensus {
            nb,
            nl,
            nh,
            cl,
            ch,
            iterations,
            routing: RoutingAlgorithm::Dynamic,
            equations: vec![eq1, eq2, eq3, eq4, eq5],
            sizes,
        }
    }

    /// Builds the census for **EM routing** (Hinton et al. 2018) with the
    /// same five-slot structure:
    ///
    /// | slot | dynamic routing | EM routing |
    /// |---|---|---|
    /// | Eq1 | û = u·W | votes = u·W |
    /// | Eq2 | s = Σ_L û·c | M-step means μ = Σ_L R·û / ΣR |
    /// | Eq3 | squash | M-step variances + activations |
    /// | Eq4 | b += v·û | E-step vote likelihoods |
    /// | Eq5 | softmax over H | E-step responsibility normalization |
    ///
    /// The aggregation dimensions per slot are identical, which is why the
    /// inter-vault distribution (Table 2, Eqs 6–12) applies unchanged —
    /// the paper's generality claim.
    pub fn new_em(
        nb: usize,
        nl: usize,
        nh: usize,
        cl: usize,
        ch: usize,
        iterations: usize,
    ) -> Self {
        let (nb_, nl_, nh_, cl_, ch_) = (nb as u64, nl as u64, nh as u64, cl as u64, ch as u64);
        // Per-sample responsibilities R are [B, L, H]; μ/σ are [B, H, CH].
        let r_bytes = nb_ * nl_ * nh_ * F32_BYTES;
        let mu_bytes = nb_ * nh_ * ch_ * F32_BYTES;
        let sizes = IntermediateSizes {
            u: nb_ * nl_ * cl_ * F32_BYTES,
            w: nl_ * nh_ * cl_ * ch_ * F32_BYTES,
            u_hat: nb_ * nl_ * nh_ * ch_ * F32_BYTES,
            s: mu_bytes,
            v: mu_bytes,
            b: r_bytes,
            c: r_bytes,
        };
        let eq1 = EquationProfile {
            eq: RpEquation::Eq1,
            macs: nb_ * nl_ * nh_ * ch_ * cl_,
            adds: 0,
            muls: 0,
            divs: 0,
            exps: 0,
            isqrts: 0,
            read_bytes: sizes.u + sizes.w,
            write_bytes: sizes.u_hat,
            reduction_groups: 0,
            reduction_width: cl_,
            per_iteration: false,
        };
        // M-step means: Σ_L R·û per (B, H, component), then divide by ΣR.
        let eq2 = EquationProfile {
            eq: RpEquation::Eq2,
            macs: nb_ * nh_ * ch_ * nl_ + nb_ * nh_ * nl_, // weighted sum + ΣR
            adds: 0,
            muls: 0,
            divs: nb_ * nh_ * ch_,
            exps: 0,
            isqrts: 0,
            read_bytes: sizes.u_hat + r_bytes,
            write_bytes: mu_bytes,
            reduction_groups: nb_ * nh_ * ch_,
            reduction_width: nl_,
            per_iteration: true,
        };
        // M-step variances + activations: weighted squared deviations over
        // L, then a logistic per capsule.
        let eq3 = EquationProfile {
            eq: RpEquation::Eq3,
            macs: 2 * nb_ * nh_ * ch_ * nl_, // (û-μ)² accumulation
            adds: nb_ * nh_ * ch_,
            muls: nb_ * nh_ * ch_,
            divs: nb_ * nh_ * ch_ + nb_ * nh_,
            exps: nb_ * nh_, // logistic
            isqrts: 0,
            read_bytes: sizes.u_hat + mu_bytes + r_bytes,
            write_bytes: mu_bytes + nb_ * nh_ * F32_BYTES,
            reduction_groups: nb_ * nh_ * ch_,
            reduction_width: nl_,
            per_iteration: true,
        };
        // E-step likelihood quadratics per (B, L, H) pair over CH.
        let eq4 = EquationProfile {
            eq: RpEquation::Eq4,
            macs: nb_ * nl_ * nh_ * ch_,
            adds: 0,
            muls: 0,
            divs: nb_ * nl_ * nh_ * ch_, // per-component /σ²
            exps: 0,
            isqrts: 0,
            read_bytes: sizes.u_hat + 2 * mu_bytes,
            write_bytes: r_bytes,
            reduction_groups: nb_ * nl_ * nh_,
            reduction_width: ch_,
            per_iteration: true,
        };
        // E-step responsibility normalization over H per (B, L).
        let eq5 = EquationProfile {
            eq: RpEquation::Eq5,
            macs: 0,
            adds: nb_ * nl_ * (nh_ - 1),
            muls: nb_ * nl_ * nh_, // fold in activations
            divs: nb_ * nl_ * nh_,
            exps: nb_ * nl_ * nh_,
            isqrts: 0,
            read_bytes: r_bytes + nb_ * nh_ * F32_BYTES,
            write_bytes: r_bytes,
            reduction_groups: nb_ * nl_,
            reduction_width: nh_,
            per_iteration: true,
        };
        RpCensus {
            nb,
            nl,
            nh,
            cl,
            ch,
            iterations,
            routing: RoutingAlgorithm::Em,
            equations: vec![eq1, eq2, eq3, eq4, eq5],
            sizes,
        }
    }

    /// Builds the census from a network spec, honouring the spec's routing
    /// algorithm.
    ///
    /// # Errors
    ///
    /// Propagates spec validation errors.
    pub fn from_spec(spec: &CapsNetSpec, batch: usize) -> Result<Self, CapsNetError> {
        let (nl, nh, cl, ch, it) = (
            spec.l_caps()?,
            spec.h_caps,
            spec.cl_dim,
            spec.ch_dim,
            spec.routing_iterations,
        );
        Ok(match spec.routing {
            RoutingAlgorithm::Dynamic => Self::new(batch, nl, nh, cl, ch, it),
            RoutingAlgorithm::Em => Self::new_em(batch, nl, nh, cl, ch, it),
        })
    }

    /// Iteration multiplier for a profile.
    fn multiplier(&self, p: &EquationProfile) -> u64 {
        if p.per_iteration {
            self.iterations as u64
        } else {
            1
        }
    }

    /// Total FLOPs across all equations and iterations.
    pub fn total_flops(&self) -> u64 {
        self.equations
            .iter()
            .map(|p| p.flops() * self.multiplier(p))
            .sum()
    }

    /// Total special-function invocations across iterations.
    pub fn total_special_ops(&self) -> u64 {
        self.equations
            .iter()
            .map(|p| p.special_ops() * self.multiplier(p))
            .sum()
    }

    /// Total memory traffic across iterations (the quantity that swamps the
    /// GPU: û is re-read in Eq 2 *and* Eq 4 every iteration).
    pub fn total_traffic_bytes(&self) -> u64 {
        self.equations
            .iter()
            .map(|p| p.traffic_bytes() * self.multiplier(p))
            .sum()
    }

    /// Total synchronization groups (aggregations) across iterations.
    pub fn total_reduction_groups(&self) -> u64 {
        self.equations
            .iter()
            .map(|p| p.reduction_groups * self.multiplier(p))
            .sum()
    }

    /// Profile for one equation.
    pub fn equation(&self, eq: RpEquation) -> &EquationProfile {
        &self.equations[eq.index()]
    }
}

/// Kind of a non-RP layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Plain convolution.
    Conv,
    /// PrimaryCaps convolution + squash.
    PrimaryCaps,
    /// Fully-connected decoder layer.
    Fc,
}

/// Operation/traffic profile of one non-RP layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Display name.
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Total FLOPs (MACs counted as 2).
    pub flops: u64,
    /// Bytes read (inputs + weights).
    pub read_bytes: u64,
    /// Bytes written (outputs).
    pub write_bytes: u64,
    /// Weight bytes (reusable across batches).
    pub weight_bytes: u64,
}

/// Census of the whole network for one batch size: the Fig 4 layer split
/// (Conv / L Caps / H Caps(RP) / FC).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkCensus {
    /// Batch size.
    pub batch: usize,
    /// Conv1 profile.
    pub conv: LayerProfile,
    /// PrimaryCaps (the "L Caps layer").
    pub primary: LayerProfile,
    /// The routing procedure (the "H Caps layer"), including Eq 1.
    pub rp: RpCensus,
    /// Decoder FC layers.
    pub fc: Vec<LayerProfile>,
}

impl NetworkCensus {
    /// Builds the census for `spec` at `batch`.
    ///
    /// # Errors
    ///
    /// Propagates spec validation errors.
    pub fn from_spec(spec: &CapsNetSpec, batch: usize) -> Result<Self, CapsNetError> {
        spec.validate()?;
        let b = batch as u64;
        let (c1h, c1w) = spec.conv1_out_hw()?;
        let in_c = spec.input_channels as u64;
        let c1c = spec.conv1_channels as u64;
        let k1 = spec.conv1_kernel as u64;
        let conv_out_elems = b * c1c * (c1h as u64) * (c1w as u64);
        let conv = LayerProfile {
            name: "Conv1".into(),
            kind: LayerKind::Conv,
            flops: 2 * conv_out_elems * in_c * k1 * k1,
            read_bytes: b * in_c * (spec.input_hw.0 as u64) * (spec.input_hw.1 as u64) * F32_BYTES
                + c1c * in_c * k1 * k1 * F32_BYTES,
            write_bytes: conv_out_elems * F32_BYTES,
            weight_bytes: c1c * in_c * k1 * k1 * F32_BYTES,
        };

        let (gh, gw) = spec.primary_grid()?;
        let nl = spec.l_caps()? as u64;
        let cl = spec.cl_dim as u64;
        let pk = spec.primary_kernel as u64;
        let p_out_c = (spec.primary_channels * spec.cl_dim) as u64;
        let p_out_elems = b * p_out_c * (gh as u64) * (gw as u64);
        let squash_flops = b * nl * (3 * cl + 19); // paper's per-capsule squash cost
        let primary = LayerProfile {
            name: "PrimaryCaps".into(),
            kind: LayerKind::PrimaryCaps,
            flops: 2 * p_out_elems * c1c * pk * pk + squash_flops,
            read_bytes: conv_out_elems * F32_BYTES + p_out_c * c1c * pk * pk * F32_BYTES,
            write_bytes: b * nl * cl * F32_BYTES,
            weight_bytes: p_out_c * c1c * pk * pk * F32_BYTES,
        };

        let rp = RpCensus::from_spec(spec, batch)?;

        let mut fc = Vec::new();
        let mut in_dim = (spec.h_caps * spec.ch_dim) as u64;
        for (i, &out) in spec.decoder_dims.iter().enumerate() {
            let out = out as u64;
            fc.push(LayerProfile {
                name: format!("FC{}", i + 1),
                kind: LayerKind::Fc,
                flops: 2 * b * in_dim * out,
                read_bytes: b * in_dim * F32_BYTES + in_dim * out * F32_BYTES,
                write_bytes: b * out * F32_BYTES,
                weight_bytes: in_dim * out * F32_BYTES,
            });
            in_dim = out;
        }

        Ok(NetworkCensus {
            batch,
            conv,
            primary,
            rp,
            fc,
        })
    }

    /// Total FLOPs of the non-RP layers.
    pub fn non_rp_flops(&self) -> u64 {
        self.conv.flops + self.primary.flops + self.fc.iter().map(|l| l.flops).sum::<u64>()
    }

    /// All non-RP layer profiles in execution order.
    pub fn non_rp_layers(&self) -> Vec<&LayerProfile> {
        let mut v = vec![&self.conv, &self.primary];
        v.extend(self.fc.iter());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CapsNet-MNIST at batch 100 = the paper's Caps-MN1.
    fn mn1() -> RpCensus {
        RpCensus::new(100, 1152, 10, 8, 16, 3)
    }

    #[test]
    fn u_hat_dominates_intermediates() {
        let c = mn1();
        // û = 100·1152·10·16·4 bytes ≈ 73.7 MB.
        assert_eq!(c.sizes.u_hat, 100 * 1152 * 10 * 16 * 4);
        assert!(c.sizes.u_hat > 70_000_000);
        assert!(c.sizes.u_hat as f64 / c.sizes.total_unshareable() as f64 > 0.99);
    }

    #[test]
    fn fig6a_ratio_matches_paper_magnitude() {
        // Paper Fig 6(a): Caps-MN1 on K40m (1.73 MB on-chip) lands in the
        // ~40-50x band.
        let c = mn1();
        let ratio = c.sizes.ratio_to_onchip(1_730_000);
        assert!(
            (35.0..60.0).contains(&ratio),
            "MN1/K40m ratio {ratio} outside the paper's band"
        );
    }

    #[test]
    fn eq1_runs_once_others_iterate() {
        let c = mn1();
        assert!(!c.equation(RpEquation::Eq1).per_iteration);
        for eq in [
            RpEquation::Eq2,
            RpEquation::Eq3,
            RpEquation::Eq4,
            RpEquation::Eq5,
        ] {
            assert!(c.equation(eq).per_iteration, "{eq} must iterate");
        }
    }

    #[test]
    fn eq1_mac_count_exact() {
        let c = mn1();
        assert_eq!(
            c.equation(RpEquation::Eq1).macs,
            100 * 1152 * 10 * 16 * 8u64
        );
    }

    #[test]
    fn traffic_rereads_u_hat_each_iteration() {
        let c = mn1();
        // û appears in reads of Eq2 and Eq4, each × iterations, plus one
        // write in Eq1: at least 7× û of traffic for 3 iterations.
        assert!(c.total_traffic_bytes() > 7 * c.sizes.u_hat);
    }

    #[test]
    fn special_ops_live_in_eq3_and_eq5() {
        let c = mn1();
        assert_eq!(c.equation(RpEquation::Eq1).special_ops(), 0);
        assert_eq!(c.equation(RpEquation::Eq2).special_ops(), 0);
        assert!(c.equation(RpEquation::Eq3).isqrts > 0);
        assert!(c.equation(RpEquation::Eq5).exps > 0);
        assert_eq!(c.equation(RpEquation::Eq5).exps, 1152 * 10);
    }

    #[test]
    fn reduction_shapes_match_equations() {
        let c = mn1();
        let eq2 = c.equation(RpEquation::Eq2);
        assert_eq!(eq2.reduction_width, 1152); // aggregates over L
        let eq4 = c.equation(RpEquation::Eq4);
        assert_eq!(eq4.reduction_width, 100); // aggregates over batch
        let eq5 = c.equation(RpEquation::Eq5);
        assert_eq!(eq5.reduction_width, 10); // softmax over H
    }

    #[test]
    fn scaling_iterations_scales_per_iter_ops_only() {
        let c3 = RpCensus::new(100, 576, 10, 8, 16, 3);
        let c9 = RpCensus::new(100, 576, 10, 8, 16, 9);
        let eq1_3 = c3.equation(RpEquation::Eq1).flops();
        let eq1_9 = c9.equation(RpEquation::Eq1).flops();
        assert_eq!(eq1_3, eq1_9);
        let per_iter_3 = c3.total_flops() - eq1_3;
        let per_iter_9 = c9.total_flops() - eq1_9;
        assert_eq!(per_iter_3 * 3, per_iter_9);
    }

    #[test]
    fn network_census_builds_for_mnist() {
        let spec = CapsNetSpec::mnist();
        let nc = NetworkCensus::from_spec(&spec, 100).unwrap();
        assert_eq!(nc.rp.nl, 1152);
        assert_eq!(nc.fc.len(), 3);
        assert_eq!(nc.non_rp_layers().len(), 5);
        // Conv1 of CapsNet-MNIST: 2·B·256·20·20·1·81 flops.
        assert_eq!(nc.conv.flops, 2 * 100 * 256 * 400 * 81);
        // Decoder dims 512 -> 1024 -> 784.
        assert_eq!(nc.fc[0].flops, 2 * 100 * 160 * 512);
        assert_eq!(nc.fc[2].write_bytes, 100 * 784 * 4);
    }

    #[test]
    fn batch_scales_unshareable_but_not_weights() {
        let spec = CapsNetSpec::mnist();
        let a = NetworkCensus::from_spec(&spec, 100).unwrap();
        let b = NetworkCensus::from_spec(&spec, 300).unwrap();
        assert_eq!(b.rp.sizes.u_hat, 3 * a.rp.sizes.u_hat);
        assert_eq!(b.rp.sizes.w, a.rp.sizes.w);
        assert_eq!(b.rp.sizes.b, a.rp.sizes.b); // batch-shared coefficients
    }
}
