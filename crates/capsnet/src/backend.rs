//! Math backends: exact FP32 (the GPU baseline) vs the PE bit-level
//! approximations of §5.2.2.
//!
//! The routing procedure is written once against [`MathBackend`]; swapping
//! the backend is exactly what the paper's hardware does when it moves RP
//! from CUDA cores to the in-vault PEs, so Table 5's accuracy comparison
//! falls out of running the same code with two backends.

use pim_approx::ApproxProfile;
use pim_tensor::simd;

/// The special functions the routing procedure needs beyond multiply-add.
///
/// Implementations must be pure (no interior mutability observable through
/// the trait) so that inference is deterministic and thread-safe.
///
/// # Slice-level kernels
///
/// Beyond the scalar special functions, the trait carries the slice/block
/// kernels the routing inner loops are written against (`exp_slice`,
/// `softmax_row`, `dot`, `axpy`, the fused Eq 2/Eq 4 and EM blocks). Every
/// one has a default implementation that loops the scalar methods in the
/// exact order the pre-vectorized engine used, so a backend that only
/// provides `exp`/`inv_sqrt`/`div` (e.g. [`ApproxMath`], modelling the
/// paper's PE) routes **bit-identically** to before. [`ExactMath`]
/// overrides them with the runtime-dispatched SIMD kernels of
/// [`pim_tensor::simd`] — that widening is exactly the paper's move of the
/// RP onto wide in-vault arithmetic, replayed on the CPU host.
pub trait MathBackend: Send + Sync {
    /// `e^x`.
    fn exp(&self, x: f32) -> f32;
    /// `1/sqrt(x)` for `x > 0`.
    fn inv_sqrt(&self, x: f32) -> f32;
    /// `a / b`.
    fn div(&self, a: f32, b: f32) -> f32;
    /// `xs[i] = e^xs[i]` for every element.
    fn exp_slice(&self, xs: &mut [f32]) {
        for x in xs {
            *x = self.exp(*x);
        }
    }
    /// `xs[i] = 1/sqrt(xs[i])` for every element.
    fn inv_sqrt_slice(&self, xs: &mut [f32]) {
        for x in xs {
            *x = self.inv_sqrt(*x);
        }
    }
    /// `xs[i] = xs[i] / denom` for every element.
    fn div_slice(&self, xs: &mut [f32], denom: f32) {
        for x in xs {
            *x = self.div(*x, denom);
        }
    }
    /// Numerically-stable softmax of one row (Eq 5):
    /// `out[i] = exp(logits[i] − max) / Σ_j exp(logits[j] − max)`.
    fn softmax_row(&self, logits: &[f32], out: &mut [f32]) {
        let mx = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (&l, o) in logits.iter().zip(out.iter_mut()) {
            let e = self.exp(l - mx);
            *o = e;
            denom += e;
        }
        for o in out.iter_mut() {
            *o = self.div(*o, denom);
        }
    }
    /// Dot product `Σ a[i]·b[i]`.
    ///
    /// Backend-independent pure arithmetic, so the default IS the scalar
    /// reference kernel (one definition, no copy to keep in lockstep).
    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        simd::scalar::dot(a, b)
    }
    /// `y[i] += alpha · x[i]` (BLAS `saxpy`).
    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        simd::scalar::axpy(alpha, x, y);
    }
    /// Fused dequantize-accumulate over int8 affine bytes:
    /// `y[i] += alpha · (q[i] − zero_point) · scale`. The quantized weight
    /// is never materialized as an `f32` copy — the default delegates to
    /// the scalar reference kernel so every backend dequantizes to the
    /// same bits.
    fn axpy_i8(&self, alpha: f32, q: &[u8], scale: f32, zero_point: i32, y: &mut [f32]) {
        simd::scalar::axpy_i8(alpha, q, scale, zero_point, y);
    }
    /// Fused dequantize-accumulate over little-endian IEEE-754 `binary16`
    /// byte pairs: `y[i] += alpha · f32(h[2i..2i+2])`.
    fn axpy_f16(&self, alpha: f32, h: &[u8], y: &mut [f32]) {
        simd::scalar::axpy_f16(alpha, h, y);
    }
    /// `y[i] = alpha·x[i] + beta·y[i]` (BLAS `saxpby`); with `beta == 0.0`
    /// the previous contents of `y` are overwritten, never read, so stale
    /// NaN/∞ in a reused buffer cannot leak through.
    fn scale_add(&self, alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
        simd::scalar::scale_add(alpha, x, beta, y);
    }
    /// Eq 2 weighted-sum block: for each row `j` of the `[rows, ch]`
    /// blocks, `s[j·ch..] += c[j] · u[j·ch..]`.
    fn weighted_sum_block(&self, c: &[f32], u: &[f32], s: &mut [f32], ch: usize) {
        for (j, &cj) in c.iter().enumerate() {
            self.axpy(cj, &u[j * ch..(j + 1) * ch], &mut s[j * ch..(j + 1) * ch]);
        }
    }
    /// Eq 4 agreement block: for each row `j`,
    /// `b[j] += ⟨u[j·ch..], v[j·ch..]⟩`.
    fn agreement_block(&self, u: &[f32], v: &[f32], b: &mut [f32], ch: usize) {
        for (j, bj) in b.iter_mut().enumerate() {
            *bj += self.dot(&u[j * ch..(j + 1) * ch], &v[j * ch..(j + 1) * ch]);
        }
    }
    /// [`Self::agreement_block`] swept over `nb` u-blocks spaced `u_stride`
    /// floats apart (Eq 4 for one L capsule across the whole batch); `v`
    /// holds the `nb` contiguous `[rows, ch]` v-blocks.
    #[allow(clippy::too_many_arguments)]
    fn agreement_blocks_strided(
        &self,
        u: &[f32],
        u_stride: usize,
        v: &[f32],
        nb: usize,
        b: &mut [f32],
        ch: usize,
    ) {
        let block = b.len() * ch;
        for k in 0..nb {
            self.agreement_block(
                &u[k * u_stride..k * u_stride + block],
                &v[k * block..(k + 1) * block],
                b,
                ch,
            );
        }
    }
    /// [`Self::weighted_sum_block`] swept over `nb` u/s block pairs with
    /// u-blocks `u_stride` floats apart (Eq 2 for one L capsule across the
    /// whole batch).
    #[allow(clippy::too_many_arguments)]
    fn weighted_sum_blocks_strided(
        &self,
        c: &[f32],
        u: &[f32],
        u_stride: usize,
        s: &mut [f32],
        nb: usize,
        ch: usize,
    ) {
        let block = c.len() * ch;
        for k in 0..nb {
            self.weighted_sum_block(
                c,
                &u[k * u_stride..k * u_stride + block],
                &mut s[k * block..(k + 1) * block],
                ch,
            );
        }
    }
    /// EM M-step variance block: for each row `j` and dim `d`,
    /// `acc[j·ch+d] += r[j] · (u[j·ch+d] − m[j·ch+d])²` (pure arithmetic —
    /// the default delegates to the scalar reference kernel).
    fn sq_diff_axpy_block(&self, r: &[f32], u: &[f32], m: &[f32], acc: &mut [f32], ch: usize) {
        simd::scalar::sq_diff_axpy_block(r, u, m, acc, ch);
    }
    /// EM E-step quadratic-form block:
    /// `out[j] = Σ_d (u[j·ch+d] − m[j·ch+d])² / s[j·ch+d]`, where the
    /// divide goes through this backend's `div`.
    fn mahalanobis_block(&self, u: &[f32], m: &[f32], s: &[f32], out: &mut [f32], ch: usize) {
        for (j, o) in out.iter_mut().enumerate() {
            let base = j * ch;
            let mut quad = 0.0f32;
            for d in 0..ch {
                let diff = u[base + d] - m[base + d];
                quad += self.div(diff * diff, s[base + d]);
            }
            *o = quad;
        }
    }
    /// `sqrt(x)`; default composes `x * inv_sqrt(x)`, which is how the PE
    /// evaluates it (no dedicated sqrt unit).
    ///
    /// The composition is only meaningful for positive finite inputs, so the
    /// default guards the rest: zero, negatives and NaN return `0.0`
    /// (capsule norm-squares are non-negative by construction, so a negative
    /// here is always numerical noise worth clamping rather than turning
    /// into NaN via `x * inv_sqrt(x)`), and `+∞` returns `+∞` instead of
    /// the `∞ · 0` NaN the raw composition would produce.
    fn sqrt(&self, x: f32) -> f32 {
        if x == f32::INFINITY {
            f32::INFINITY
        } else if x > 0.0 {
            x * self.inv_sqrt(x)
        } else {
            0.0
        }
    }
    /// Short human-readable backend name (used in reports).
    fn name(&self) -> &'static str;
}

/// Exact IEEE-754 single-precision math — the CUDA-core reference.
///
/// The slice/block kernels are overridden with the runtime-dispatched SIMD
/// implementations from [`pim_tensor::simd`]: on AVX2+FMA hosts the routing
/// hot loops run 8 lanes wide with a polynomial `exp` (≤1e-5 relative
/// drift, validated by the equivalence suite); with `PIM_SIMD=scalar` in
/// the environment every kernel falls back to the scalar reference and
/// results are bit-identical to the per-element trait defaults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactMath;

impl MathBackend for ExactMath {
    #[inline]
    fn exp(&self, x: f32) -> f32 {
        x.exp()
    }
    #[inline]
    fn inv_sqrt(&self, x: f32) -> f32 {
        1.0 / x.sqrt()
    }
    #[inline]
    fn div(&self, a: f32, b: f32) -> f32 {
        a / b
    }
    #[inline]
    fn sqrt(&self, x: f32) -> f32 {
        x.sqrt()
    }
    #[inline]
    fn exp_slice(&self, xs: &mut [f32]) {
        simd::exp_slice(xs);
    }
    #[inline]
    fn inv_sqrt_slice(&self, xs: &mut [f32]) {
        simd::inv_sqrt_slice(xs);
    }
    #[inline]
    fn div_slice(&self, xs: &mut [f32], denom: f32) {
        simd::div_slice(xs, denom);
    }
    #[inline]
    fn softmax_row(&self, logits: &[f32], out: &mut [f32]) {
        simd::softmax_row(logits, out);
    }
    #[inline]
    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        simd::dot(a, b)
    }
    #[inline]
    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        simd::axpy(alpha, x, y);
    }
    #[inline]
    fn axpy_i8(&self, alpha: f32, q: &[u8], scale: f32, zero_point: i32, y: &mut [f32]) {
        simd::axpy_i8(alpha, q, scale, zero_point, y);
    }
    #[inline]
    fn axpy_f16(&self, alpha: f32, h: &[u8], y: &mut [f32]) {
        simd::axpy_f16(alpha, h, y);
    }
    #[inline]
    fn scale_add(&self, alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
        simd::scale_add(alpha, x, beta, y);
    }
    #[inline]
    fn weighted_sum_block(&self, c: &[f32], u: &[f32], s: &mut [f32], ch: usize) {
        simd::weighted_sum_block(c, u, s, ch);
    }
    #[inline]
    fn agreement_block(&self, u: &[f32], v: &[f32], b: &mut [f32], ch: usize) {
        simd::agreement_block(u, v, b, ch);
    }
    #[inline]
    fn agreement_blocks_strided(
        &self,
        u: &[f32],
        u_stride: usize,
        v: &[f32],
        nb: usize,
        b: &mut [f32],
        ch: usize,
    ) {
        simd::agreement_blocks_strided(u, u_stride, v, nb, b, ch);
    }
    #[inline]
    fn weighted_sum_blocks_strided(
        &self,
        c: &[f32],
        u: &[f32],
        u_stride: usize,
        s: &mut [f32],
        nb: usize,
        ch: usize,
    ) {
        simd::weighted_sum_blocks_strided(c, u, u_stride, s, nb, ch);
    }
    #[inline]
    fn sq_diff_axpy_block(&self, r: &[f32], u: &[f32], m: &[f32], acc: &mut [f32], ch: usize) {
        simd::sq_diff_axpy_block(r, u, m, acc, ch);
    }
    #[inline]
    fn mahalanobis_block(&self, u: &[f32], m: &[f32], s: &[f32], out: &mut [f32], ch: usize) {
        simd::mahalanobis_block(u, m, s, out, ch);
    }
    fn name(&self) -> &'static str {
        "exact"
    }
}

/// The PE approximation backend: bit-level `exp` / `1/sqrt` / division with
/// optional accuracy recovery (§5.2.2).
///
/// # Examples
///
/// ```
/// use capsnet::{ApproxMath, MathBackend};
///
/// let with_recovery = ApproxMath::with_recovery();
/// let without = ApproxMath::without_recovery();
/// let x = 0.3f32;
/// assert!((with_recovery.exp(x) - x.exp()).abs() / x.exp() < 0.05);
/// assert!((without.exp(x) - x.exp()).abs() / x.exp() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxMath {
    profile: ApproxProfile,
    recovery: bool,
}

impl ApproxMath {
    /// Approximate math with the paper's 10,000-sample accuracy recovery.
    pub fn with_recovery() -> Self {
        ApproxMath {
            profile: ApproxProfile::calibrated(),
            recovery: true,
        }
    }

    /// Approximate math with recovery disabled (Table 5's "w/o Accuracy
    /// Recovery" rows).
    pub fn without_recovery() -> Self {
        ApproxMath {
            profile: ApproxProfile::uncalibrated(),
            recovery: false,
        }
    }

    /// Builds from an explicit profile.
    pub fn from_profile(profile: ApproxProfile, recovery: bool) -> Self {
        ApproxMath { profile, recovery }
    }

    /// Whether accuracy recovery is applied.
    pub fn recovery_enabled(&self) -> bool {
        self.recovery
    }
}

impl MathBackend for ApproxMath {
    #[inline]
    fn exp(&self, x: f32) -> f32 {
        self.profile.exp(x)
    }
    #[inline]
    fn inv_sqrt(&self, x: f32) -> f32 {
        self.profile.inv_sqrt(x)
    }
    #[inline]
    fn div(&self, a: f32, b: f32) -> f32 {
        self.profile.div(a, b)
    }
    // The slice forms delegate to `ApproxProfile`'s loops — bit-identical
    // to the trait defaults (the PE model stays scalar by design), but a
    // boxed `dyn MathBackend` then pays one virtual call per row instead
    // of one per element.
    #[inline]
    fn exp_slice(&self, xs: &mut [f32]) {
        self.profile.exp_slice(xs);
    }
    #[inline]
    fn inv_sqrt_slice(&self, xs: &mut [f32]) {
        self.profile.inv_sqrt_slice(xs);
    }
    #[inline]
    fn div_slice(&self, xs: &mut [f32], denom: f32) {
        self.profile.div_slice(xs, denom);
    }
    fn name(&self) -> &'static str {
        if self.recovery {
            "approx+recovery"
        } else {
            "approx"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_backend_is_exact() {
        let b = ExactMath;
        assert_eq!(b.exp(0.0), 1.0);
        assert_eq!(b.div(7.0, 2.0), 3.5);
        assert_eq!(b.sqrt(9.0), 3.0);
        assert_eq!(b.inv_sqrt(4.0), 0.5);
        assert_eq!(b.name(), "exact");
    }

    #[test]
    fn approx_backend_close_to_exact() {
        let b = ApproxMath::with_recovery();
        for x in [0.1f32, 0.9, 2.3, 7.7] {
            assert!(((b.exp(x) - x.exp()) / x.exp()).abs() < 0.05);
            assert!(((b.inv_sqrt(x) - 1.0 / x.sqrt()) * x.sqrt()).abs() < 0.01);
            assert!(((b.div(1.0, x) - 1.0 / x) * x).abs() < 0.01);
        }
    }

    #[test]
    fn names_distinguish_recovery() {
        assert_eq!(ApproxMath::with_recovery().name(), "approx+recovery");
        assert_eq!(ApproxMath::without_recovery().name(), "approx");
        assert!(ApproxMath::with_recovery().recovery_enabled());
    }

    #[test]
    fn default_sqrt_composes_inv_sqrt() {
        let b = ApproxMath::with_recovery();
        assert_eq!(b.sqrt(0.0), 0.0);
        assert!((b.sqrt(16.0) - 4.0).abs() < 0.05);
    }

    /// Backend that only provides the required methods, so `sqrt` exercises
    /// the trait's default implementation.
    struct DefaultSqrt;

    impl MathBackend for DefaultSqrt {
        fn exp(&self, x: f32) -> f32 {
            x.exp()
        }
        fn inv_sqrt(&self, x: f32) -> f32 {
            1.0 / x.sqrt()
        }
        fn div(&self, a: f32, b: f32) -> f32 {
            a / b
        }
        fn name(&self) -> &'static str {
            "default-sqrt"
        }
    }

    #[test]
    fn default_sqrt_guards_nonpositive_and_nonfinite() {
        let b = DefaultSqrt;
        assert_eq!(b.sqrt(0.0), 0.0);
        assert_eq!(b.sqrt(-0.0), 0.0);
        assert_eq!(b.sqrt(-1.0), 0.0, "negative inputs clamp to 0, not NaN");
        assert_eq!(b.sqrt(f32::NEG_INFINITY), 0.0);
        assert_eq!(b.sqrt(f32::NAN), 0.0);
        assert_eq!(b.sqrt(f32::INFINITY), f32::INFINITY);
        assert!((b.sqrt(9.0) - 3.0).abs() < 1e-6);
        // Subnormals and tiny values stay finite and non-negative.
        let tiny = b.sqrt(f32::MIN_POSITIVE);
        assert!(tiny.is_finite() && tiny >= 0.0);
    }

    #[test]
    fn approx_sqrt_is_nan_free_on_garbage() {
        let b = ApproxMath::without_recovery();
        for x in [-5.0f32, -0.0, f32::NAN, f32::NEG_INFINITY] {
            assert_eq!(b.sqrt(x), 0.0, "sqrt({x}) must clamp");
        }
    }

    #[test]
    fn approx_slice_defaults_match_scalar_calls_bitwise() {
        // The defaults must replay the per-element methods in the exact
        // order the pre-vectorized engine used — ApproxMath routing is
        // bit-identical before/after the kernel refactor because of this.
        let b = ApproxMath::with_recovery();
        let xs: Vec<f32> = (0..13).map(|i| 0.1 + i as f32 * 0.37).collect();

        let mut got = xs.clone();
        b.exp_slice(&mut got);
        for (g, &x) in got.iter().zip(&xs) {
            assert_eq!(g.to_bits(), b.exp(x).to_bits());
        }

        let mut got = xs.clone();
        b.inv_sqrt_slice(&mut got);
        for (g, &x) in got.iter().zip(&xs) {
            assert_eq!(g.to_bits(), b.inv_sqrt(x).to_bits());
        }

        let mut got = xs.clone();
        b.div_slice(&mut got, 2.7);
        for (g, &x) in got.iter().zip(&xs) {
            assert_eq!(g.to_bits(), b.div(x, 2.7).to_bits());
        }
    }

    #[test]
    fn default_block_kernels_compose_scalar_ops() {
        let b = ApproxMath::without_recovery();
        let ch = 4;
        let c = [0.25f32, 0.5, 0.25];
        let u: Vec<f32> = (0..12).map(|i| i as f32 * 0.1 - 0.5).collect();
        let mut s = vec![0.0f32; 12];
        b.weighted_sum_block(&c, &u, &mut s, ch);
        for j in 0..3 {
            for d in 0..ch {
                assert_eq!(s[j * ch + d], c[j] * u[j * ch + d]);
            }
        }
        let mut logits = vec![0.0f32; 3];
        b.agreement_block(&u, &s, &mut logits, ch);
        for (j, &l) in logits.iter().enumerate() {
            let expect = b.dot(&u[j * ch..(j + 1) * ch], &s[j * ch..(j + 1) * ch]);
            assert_eq!(l, expect);
        }
    }

    #[test]
    fn exact_softmax_row_is_a_distribution() {
        let b = ExactMath;
        let logits = [0.3f32, -1.2, 2.0, 0.0, 0.7, -0.4, 1.1, 0.2, -2.0, 0.9];
        let mut out = [0.0f32; 10];
        b.softmax_row(&logits, &mut out);
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(out.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exact_scale_add_ignores_stale_nan_when_beta_zero() {
        let b = ExactMath;
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [f32::NAN; 3];
        b.scale_add(0.5, &x, 0.0, &mut y);
        assert_eq!(y, [0.5, 1.0, 1.5]);
    }

    #[test]
    fn backends_are_object_safe() {
        let backends: Vec<Box<dyn MathBackend>> =
            vec![Box::new(ExactMath), Box::new(ApproxMath::with_recovery())];
        for b in &backends {
            assert!(b.exp(0.0) > 0.9);
        }
    }
}
