//! Math backends: exact FP32 (the GPU baseline) vs the PE bit-level
//! approximations of §5.2.2.
//!
//! The routing procedure is written once against [`MathBackend`]; swapping
//! the backend is exactly what the paper's hardware does when it moves RP
//! from CUDA cores to the in-vault PEs, so Table 5's accuracy comparison
//! falls out of running the same code with two backends.

use pim_approx::ApproxProfile;

/// The special functions the routing procedure needs beyond multiply-add.
///
/// Implementations must be pure (no interior mutability observable through
/// the trait) so that inference is deterministic and thread-safe.
pub trait MathBackend: Send + Sync {
    /// `e^x`.
    fn exp(&self, x: f32) -> f32;
    /// `1/sqrt(x)` for `x > 0`.
    fn inv_sqrt(&self, x: f32) -> f32;
    /// `a / b`.
    fn div(&self, a: f32, b: f32) -> f32;
    /// `sqrt(x)`; default composes `x * inv_sqrt(x)`, which is how the PE
    /// evaluates it (no dedicated sqrt unit).
    ///
    /// The composition is only meaningful for positive finite inputs, so the
    /// default guards the rest: zero, negatives and NaN return `0.0`
    /// (capsule norm-squares are non-negative by construction, so a negative
    /// here is always numerical noise worth clamping rather than turning
    /// into NaN via `x * inv_sqrt(x)`), and `+∞` returns `+∞` instead of
    /// the `∞ · 0` NaN the raw composition would produce.
    fn sqrt(&self, x: f32) -> f32 {
        if x == f32::INFINITY {
            f32::INFINITY
        } else if x > 0.0 {
            x * self.inv_sqrt(x)
        } else {
            0.0
        }
    }
    /// Short human-readable backend name (used in reports).
    fn name(&self) -> &'static str;
}

/// Exact IEEE-754 single-precision math — the CUDA-core reference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactMath;

impl MathBackend for ExactMath {
    #[inline]
    fn exp(&self, x: f32) -> f32 {
        x.exp()
    }
    #[inline]
    fn inv_sqrt(&self, x: f32) -> f32 {
        1.0 / x.sqrt()
    }
    #[inline]
    fn div(&self, a: f32, b: f32) -> f32 {
        a / b
    }
    #[inline]
    fn sqrt(&self, x: f32) -> f32 {
        x.sqrt()
    }
    fn name(&self) -> &'static str {
        "exact"
    }
}

/// The PE approximation backend: bit-level `exp` / `1/sqrt` / division with
/// optional accuracy recovery (§5.2.2).
///
/// # Examples
///
/// ```
/// use capsnet::{ApproxMath, MathBackend};
///
/// let with_recovery = ApproxMath::with_recovery();
/// let without = ApproxMath::without_recovery();
/// let x = 0.3f32;
/// assert!((with_recovery.exp(x) - x.exp()).abs() / x.exp() < 0.05);
/// assert!((without.exp(x) - x.exp()).abs() / x.exp() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxMath {
    profile: ApproxProfile,
    recovery: bool,
}

impl ApproxMath {
    /// Approximate math with the paper's 10,000-sample accuracy recovery.
    pub fn with_recovery() -> Self {
        ApproxMath {
            profile: ApproxProfile::calibrated(),
            recovery: true,
        }
    }

    /// Approximate math with recovery disabled (Table 5's "w/o Accuracy
    /// Recovery" rows).
    pub fn without_recovery() -> Self {
        ApproxMath {
            profile: ApproxProfile::uncalibrated(),
            recovery: false,
        }
    }

    /// Builds from an explicit profile.
    pub fn from_profile(profile: ApproxProfile, recovery: bool) -> Self {
        ApproxMath { profile, recovery }
    }

    /// Whether accuracy recovery is applied.
    pub fn recovery_enabled(&self) -> bool {
        self.recovery
    }
}

impl MathBackend for ApproxMath {
    #[inline]
    fn exp(&self, x: f32) -> f32 {
        self.profile.exp(x)
    }
    #[inline]
    fn inv_sqrt(&self, x: f32) -> f32 {
        self.profile.inv_sqrt(x)
    }
    #[inline]
    fn div(&self, a: f32, b: f32) -> f32 {
        self.profile.div(a, b)
    }
    fn name(&self) -> &'static str {
        if self.recovery {
            "approx+recovery"
        } else {
            "approx"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_backend_is_exact() {
        let b = ExactMath;
        assert_eq!(b.exp(0.0), 1.0);
        assert_eq!(b.div(7.0, 2.0), 3.5);
        assert_eq!(b.sqrt(9.0), 3.0);
        assert_eq!(b.inv_sqrt(4.0), 0.5);
        assert_eq!(b.name(), "exact");
    }

    #[test]
    fn approx_backend_close_to_exact() {
        let b = ApproxMath::with_recovery();
        for x in [0.1f32, 0.9, 2.3, 7.7] {
            assert!(((b.exp(x) - x.exp()) / x.exp()).abs() < 0.05);
            assert!(((b.inv_sqrt(x) - 1.0 / x.sqrt()) * x.sqrt()).abs() < 0.01);
            assert!(((b.div(1.0, x) - 1.0 / x) * x).abs() < 0.01);
        }
    }

    #[test]
    fn names_distinguish_recovery() {
        assert_eq!(ApproxMath::with_recovery().name(), "approx+recovery");
        assert_eq!(ApproxMath::without_recovery().name(), "approx");
        assert!(ApproxMath::with_recovery().recovery_enabled());
    }

    #[test]
    fn default_sqrt_composes_inv_sqrt() {
        let b = ApproxMath::with_recovery();
        assert_eq!(b.sqrt(0.0), 0.0);
        assert!((b.sqrt(16.0) - 4.0).abs() < 0.05);
    }

    /// Backend that only provides the required methods, so `sqrt` exercises
    /// the trait's default implementation.
    struct DefaultSqrt;

    impl MathBackend for DefaultSqrt {
        fn exp(&self, x: f32) -> f32 {
            x.exp()
        }
        fn inv_sqrt(&self, x: f32) -> f32 {
            1.0 / x.sqrt()
        }
        fn div(&self, a: f32, b: f32) -> f32 {
            a / b
        }
        fn name(&self) -> &'static str {
            "default-sqrt"
        }
    }

    #[test]
    fn default_sqrt_guards_nonpositive_and_nonfinite() {
        let b = DefaultSqrt;
        assert_eq!(b.sqrt(0.0), 0.0);
        assert_eq!(b.sqrt(-0.0), 0.0);
        assert_eq!(b.sqrt(-1.0), 0.0, "negative inputs clamp to 0, not NaN");
        assert_eq!(b.sqrt(f32::NEG_INFINITY), 0.0);
        assert_eq!(b.sqrt(f32::NAN), 0.0);
        assert_eq!(b.sqrt(f32::INFINITY), f32::INFINITY);
        assert!((b.sqrt(9.0) - 3.0).abs() < 1e-6);
        // Subnormals and tiny values stay finite and non-negative.
        let tiny = b.sqrt(f32::MIN_POSITIVE);
        assert!(tiny.is_finite() && tiny >= 0.0);
    }

    #[test]
    fn approx_sqrt_is_nan_free_on_garbage() {
        let b = ApproxMath::without_recovery();
        for x in [-5.0f32, -0.0, f32::NAN, f32::NEG_INFINITY] {
            assert_eq!(b.sqrt(x), 0.0, "sqrt({x}) must clamp");
        }
    }

    #[test]
    fn backends_are_object_safe() {
        let backends: Vec<Box<dyn MathBackend>> =
            vec![Box::new(ExactMath), Box::new(ApproxMath::with_recovery())];
        for b in &backends {
            assert!(b.exp(0.0) > 0.9);
        }
    }
}
