//! The assembled CapsNet model: encoder (Conv1 → PrimaryCaps → Caps layer
//! with routing) and FC decoder, per Fig 2.
//!
//! Two forward paths share the same math (and produce bit-identical
//! outputs):
//!
//! * [`CapsNet::forward`] — materializes owned tensors per call and lets
//!   the routing layer shard independent samples across cores;
//! * [`CapsNet::forward_with`] — threads a [`ForwardArena`] through every
//!   layer so steady-state inference performs **zero heap allocations**
//!   after the first (warm-up) call at a given batch size.

use pim_tensor::{Conv2dScratch, Tensor};

use crate::backend::MathBackend;
use crate::config::{CapsNetSpec, RoutingAlgorithm};
use crate::error::CapsNetError;
use crate::layers::{Activation, CapsLayer, Conv2dLayer, DenseLayer, PrimaryCapsLayer};
use crate::routing::RoutingScratch;
use crate::weights::{WeightRef, WeightView};

/// Everything the encoder produces for a batch.
#[derive(Debug, Clone)]
pub struct ForwardOutput {
    /// High-level (class) capsules, `[B, H, C_H]`.
    pub class_capsules: Tensor,
    /// Squared norms of the class capsules, `[B, H]` — the classification
    /// scores (argmax equals argmax of the norms).
    pub class_norms_sq: Tensor,
    /// Final routing coefficients (see
    /// [`crate::routing::RoutingOutput::coefficients`]).
    pub routing_coefficients: Tensor,
}

impl ForwardOutput {
    /// Predicted class per sample: argmax of capsule norm.
    pub fn predictions(&self) -> Vec<usize> {
        let dims = self.class_norms_sq.shape().dims();
        argmax_rows(self.class_norms_sq.as_slice(), dims[0], dims[1])
    }
}

/// Squared capsule norms: `v` is `[B, H, C_H]`, `out` receives `[B, H]`.
fn norms_sq_into(v: &[f32], b: usize, h: usize, ch: usize, out: &mut [f32]) {
    for bi in 0..b {
        for j in 0..h {
            out[bi * h + j] = v[(bi * h + j) * ch..(bi * h + j + 1) * ch]
                .iter()
                .map(|&x| x * x)
                .sum();
        }
    }
}

/// Row-wise argmax of a `[B, H]` score matrix.
fn argmax_rows(data: &[f32], b: usize, h: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(b);
    argmax_rows_into(data, b, h, &mut out);
    out
}

/// [`argmax_rows`] into a caller-owned buffer (cleared first).
fn argmax_rows_into(data: &[f32], b: usize, h: usize, out: &mut Vec<usize>) {
    out.clear();
    out.extend((0..b).map(|bi| {
        let row = &data[bi * h..(bi + 1) * h];
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }));
}

/// Reusable buffers for [`CapsNet::forward_with`]: every intermediate the
/// encoder materializes, including the routing scratch.
///
/// Keep one per thread (arenas are cheap when cold and grow to the largest
/// problem seen). All buffers are resized in place, so after the first
/// call at a given geometry, forward passes allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct ForwardArena {
    conv1_out: Tensor,
    primary_conv: Tensor,
    primary_caps: Tensor,
    u_hat: Tensor,
    gather: Vec<f32>,
    // One scratch per conv stage: the two convolutions have different
    // im2col geometries, and sharing one buffer would re-shape it (and
    // reallocate its Shape) on every pass, breaking the zero-allocation
    // steady state.
    conv1_scratch: Conv2dScratch,
    primary_scratch: Conv2dScratch,
    routing: RoutingScratch,
    norms: Vec<f32>,
}

impl ForwardArena {
    /// Creates an empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Borrowed view of one [`CapsNet::forward_with`] result — all slices point
/// into the [`ForwardArena`], so reading costs nothing.
#[derive(Debug, Clone, Copy)]
pub struct ForwardView<'a> {
    class_capsules: &'a [f32],
    class_norms_sq: &'a [f32],
    routing_coefficients: &'a [f32],
    batch: usize,
    h_caps: usize,
    ch_dim: usize,
    coeff_dims: [usize; 3],
    coeff_rank: usize,
}

impl ForwardView<'_> {
    /// High-level (class) capsules, `[B, H, C_H]` row-major.
    pub fn class_capsules(&self) -> &[f32] {
        self.class_capsules
    }

    /// Squared norms of the class capsules, `[B, H]` row-major.
    pub fn class_norms_sq(&self) -> &[f32] {
        self.class_norms_sq
    }

    /// Final routing coefficients (`[L, H]` batch-shared dynamic,
    /// `[B, L, H]` otherwise — see [`Self::coefficient_dims`]).
    pub fn routing_coefficients(&self) -> &[f32] {
        self.routing_coefficients
    }

    /// The coefficient tensor's dimensions.
    pub fn coefficient_dims(&self) -> &[usize] {
        &self.coeff_dims[..self.coeff_rank]
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Predicted class per sample: argmax of capsule norm.
    pub fn predictions(&self) -> Vec<usize> {
        argmax_rows(self.class_norms_sq, self.batch, self.h_caps)
    }

    /// [`Self::predictions`] into a caller-owned buffer (cleared first), for
    /// allocation-free steady-state readout.
    pub fn predictions_into(&self, out: &mut Vec<usize>) {
        argmax_rows_into(self.class_norms_sq, self.batch, self.h_caps, out);
    }

    /// Materializes an owned [`ForwardOutput`] from this view.
    ///
    /// # Errors
    ///
    /// Propagates tensor construction errors (lengths always match by
    /// construction).
    pub fn to_owned_output(&self) -> Result<ForwardOutput, CapsNetError> {
        Ok(ForwardOutput {
            class_capsules: Tensor::from_vec(
                self.class_capsules.to_vec(),
                &[self.batch, self.h_caps, self.ch_dim],
            )?,
            class_norms_sq: Tensor::from_vec(
                self.class_norms_sq.to_vec(),
                &[self.batch, self.h_caps],
            )?,
            routing_coefficients: Tensor::from_vec(
                self.routing_coefficients.to_vec(),
                self.coefficient_dims(),
            )?,
        })
    }
}

/// Provides named weight tensors for [`CapsNet::from_views`].
///
/// A source may hand out **owned** tensors (e.g. freshly read from disk)
/// or **shared** zero-copy views ([`Tensor::from_shared`] windows into an
/// mmapped artifact) — the network runs bit-identically off either, since
/// every forward path reads weights through `as_slice`.
///
/// The canonical names are the ones [`CapsNet::named_weights`] emits:
/// `conv1.weight`, `conv1.bias`, `primary.weight`, `primary.bias`,
/// `caps.weight`, and `decoder.{i}.weight` / `decoder.{i}.bias`.
pub trait WeightSource {
    /// `true` when the source can produce `name` (optional tensors like
    /// biases are only requested when present).
    fn contains(&self, name: &str) -> bool;

    /// The tensor stored under `name`, which must have exactly `dims`.
    /// Sources holding quantized storage dequantize here (this is the
    /// path for small tensors — conv kernels and biases — where an `f32`
    /// copy is cheap).
    ///
    /// # Errors
    ///
    /// Implementations return an error for unknown names or shape
    /// mismatches.
    fn tensor(&mut self, name: &str, dims: &[usize]) -> Result<Tensor, CapsNetError>;

    /// The weight stored under `name` as a typed [`WeightView`] — the path
    /// the large streamed weights (`caps.weight`, decoder matrices) load
    /// through, so quantized artifacts reach the fused kernels without an
    /// `f32` materialization. The default wraps [`WeightSource::tensor`],
    /// keeping plain `f32` sources source-compatible.
    ///
    /// # Errors
    ///
    /// Same contract as [`WeightSource::tensor`].
    fn weight(&mut self, name: &str, dims: &[usize]) -> Result<WeightView, CapsNetError> {
        self.tensor(name, dims).map(WeightView::F32)
    }
}

/// A `BTreeMap` of tensors is a valid weight source (used by tests and by
/// in-memory weight transfers).
impl WeightSource for std::collections::BTreeMap<String, Tensor> {
    fn contains(&self, name: &str) -> bool {
        self.contains_key(name)
    }

    fn tensor(&mut self, name: &str, dims: &[usize]) -> Result<Tensor, CapsNetError> {
        let t = self
            .get(name)
            .ok_or_else(|| CapsNetError::InvalidSpec(format!("missing weight {name:?}")))?;
        if t.shape().dims() != dims {
            return Err(CapsNetError::InvalidSpec(format!(
                "weight {name:?} has shape {:?}, expected {dims:?}",
                t.shape().dims()
            )));
        }
        Ok(t.clone())
    }
}

/// How a network's weight bytes are stored — see
/// [`CapsNet::weight_storage`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeightStorageCensus {
    /// Bytes held as zero-copy shared views (one physical copy across all
    /// holders of the same backing buffer).
    pub shared_bytes: usize,
    /// Bytes materialized in this network's own allocations.
    pub owned_bytes: usize,
    /// Total weight tensors.
    pub tensors: usize,
    /// Weight tensors with shared storage.
    pub shared_tensors: usize,
}

/// A complete CapsNet with deterministic seeded weights.
#[derive(Debug, Clone)]
pub struct CapsNet {
    spec: CapsNetSpec,
    conv1: Conv2dLayer,
    primary: PrimaryCapsLayer,
    caps: CapsLayer,
    decoder: Vec<DenseLayer>,
}

impl CapsNet {
    /// Builds a network from a spec with weights seeded from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`CapsNetError::InvalidSpec`] if the spec fails validation.
    pub fn seeded(spec: &CapsNetSpec, seed: u64) -> Result<Self, CapsNetError> {
        spec.validate()?;
        let conv1 = Conv2dLayer::seeded(
            spec.input_channels,
            spec.conv1_channels,
            spec.conv1_kernel,
            spec.conv1_stride,
            Activation::Relu,
            seed,
        );
        let primary = PrimaryCapsLayer::seeded(
            spec.conv1_channels,
            spec.primary_channels,
            spec.cl_dim,
            spec.primary_kernel,
            spec.primary_stride,
            seed.wrapping_add(1),
        );
        let caps = CapsLayer::seeded(
            spec.l_caps()?,
            spec.cl_dim,
            spec.h_caps,
            spec.ch_dim,
            spec.routing,
            spec.routing_iterations,
            spec.routing_sharpness,
            seed.wrapping_add(2),
        )
        .with_batch_shared(spec.batch_shared_routing);
        let mut decoder = Vec::new();
        let mut in_dim = spec.h_caps * spec.ch_dim;
        for (li, &out_dim) in spec.decoder_dims.iter().enumerate() {
            let act = if li + 1 == spec.decoder_dims.len() {
                Activation::Sigmoid
            } else {
                Activation::Relu
            };
            decoder.push(DenseLayer::seeded(
                in_dim,
                out_dim,
                act,
                seed.wrapping_add(3 + li as u64),
            ));
            in_dim = out_dim;
        }
        Ok(CapsNet {
            spec: spec.clone(),
            conv1,
            primary,
            caps,
            decoder,
        })
    }

    /// Builds a network from a spec and a [`WeightSource`] instead of RNG —
    /// the model-loading path. When the source hands out shared
    /// ([`Tensor::from_shared`]) views, the network's weights borrow the
    /// source's backing buffer with zero copies; forward passes are
    /// bit-identical to a network owning the same weight values.
    ///
    /// # Errors
    ///
    /// Returns [`CapsNetError::InvalidSpec`] if the spec fails validation,
    /// and propagates source errors (missing tensors, shape mismatches).
    pub fn from_views<S: WeightSource + ?Sized>(
        spec: &CapsNetSpec,
        source: &mut S,
    ) -> Result<Self, CapsNetError> {
        spec.validate()?;
        let k1 = spec.conv1_kernel;
        let conv1_w = source.tensor(
            "conv1.weight",
            &[spec.conv1_channels, spec.input_channels, k1, k1],
        )?;
        let conv1_b = if source.contains("conv1.bias") {
            Some(source.tensor("conv1.bias", &[spec.conv1_channels])?)
        } else {
            None
        };
        let conv1 =
            Conv2dLayer::from_weights(conv1_w, conv1_b, spec.conv1_stride, Activation::Relu)?;

        let pc_out = spec.primary_channels * spec.cl_dim;
        let kp = spec.primary_kernel;
        let primary_w = source.tensor("primary.weight", &[pc_out, spec.conv1_channels, kp, kp])?;
        let primary_b = if source.contains("primary.bias") {
            Some(source.tensor("primary.bias", &[pc_out])?)
        } else {
            None
        };
        let primary_conv = Conv2dLayer::from_weights(
            primary_w,
            primary_b,
            spec.primary_stride,
            Activation::Linear,
        )?;
        let primary =
            PrimaryCapsLayer::from_conv(primary_conv, spec.primary_channels, spec.cl_dim)?;

        let l = spec.l_caps()?;
        let caps_w = source.weight("caps.weight", &[l, spec.cl_dim, spec.h_caps * spec.ch_dim])?;
        let caps = CapsLayer::from_weight_view(
            caps_w,
            l,
            spec.cl_dim,
            spec.h_caps,
            spec.ch_dim,
            spec.routing,
            spec.routing_iterations,
        )?
        .with_batch_shared(spec.batch_shared_routing);

        let mut decoder = Vec::new();
        let mut in_dim = spec.h_caps * spec.ch_dim;
        for (li, &out_dim) in spec.decoder_dims.iter().enumerate() {
            let act = if li + 1 == spec.decoder_dims.len() {
                Activation::Sigmoid
            } else {
                Activation::Relu
            };
            let w = source.weight(&format!("decoder.{li}.weight"), &[in_dim, out_dim])?;
            let b = source.tensor(&format!("decoder.{li}.bias"), &[out_dim])?;
            decoder.push(DenseLayer::from_weight_view(w, b, act)?);
            in_dim = out_dim;
        }
        Ok(CapsNet {
            spec: spec.clone(),
            conv1,
            primary,
            caps,
            decoder,
        })
    }

    /// Every weight with its canonical name, in a fixed order (the order
    /// model writers persist them in). Names round-trip through
    /// [`CapsNet::from_views`]. Conv kernels and biases are always dense
    /// [`WeightRef::F32`]; the capsule and decoder matrices are
    /// [`WeightRef::Quant`] when the network was loaded from a quantized
    /// artifact.
    pub fn named_weights(&self) -> Vec<(String, WeightRef<'_>)> {
        let mut out: Vec<(String, WeightRef<'_>)> =
            vec![("conv1.weight".into(), WeightRef::F32(self.conv1.weight()))];
        if let Some(b) = self.conv1.bias() {
            out.push(("conv1.bias".into(), WeightRef::F32(b)));
        }
        out.push((
            "primary.weight".into(),
            WeightRef::F32(self.primary.conv().weight()),
        ));
        if let Some(b) = self.primary.conv().bias() {
            out.push(("primary.bias".into(), WeightRef::F32(b)));
        }
        out.push(("caps.weight".into(), self.caps.weight().as_ref()));
        for (li, layer) in self.decoder.iter().enumerate() {
            out.push((format!("decoder.{li}.weight"), layer.weight().as_ref()));
            out.push((format!("decoder.{li}.bias"), WeightRef::F32(layer.bias())));
        }
        out
    }

    /// The network's specification.
    pub fn spec(&self) -> &CapsNetSpec {
        &self.spec
    }

    /// Partitions the network's weight bytes by storage kind: **shared**
    /// (zero-copy windows into an external buffer, e.g. a `pim-store`
    /// mapping — one physical copy however many networks hold them) versus
    /// **owned** (materialized per network).
    ///
    /// This is the accounting behind replicated serving's memory claim: a
    /// replica pool built off one mapped artifact should report
    /// `owned_bytes` near zero, because cloning a shared-backed network
    /// only bumps reference counts ([`pim_tensor::Tensor`] clones of
    /// shared storage are `Arc` clones, never byte copies).
    pub fn weight_storage(&self) -> WeightStorageCensus {
        let mut census = WeightStorageCensus::default();
        for (_, t) in self.named_weights() {
            census.tensors += 1;
            if t.is_shared() {
                census.shared_tensors += 1;
                census.shared_bytes += t.size_bytes();
            } else {
                census.owned_bytes += t.size_bytes();
            }
        }
        census
    }

    /// Encoder forward pass: images `[B, C, H, W]` → class capsules.
    ///
    /// Generic over the backend (concrete types monomorphize the routing
    /// hot loop; `&dyn MathBackend` still works). With per-sample routing
    /// coefficients the routing layer shards the batch across cores —
    /// results are bit-identical either way.
    ///
    /// # Errors
    ///
    /// Returns [`CapsNetError::InputMismatch`] for wrong image geometry and
    /// propagates tensor errors.
    pub fn forward<B: MathBackend + Sync + ?Sized>(
        &self,
        images: &Tensor,
        backend: &B,
    ) -> Result<ForwardOutput, CapsNetError> {
        self.validate_images(images)?;
        let c1 = self.conv1.forward(images)?;
        let u = self.primary.forward(&c1, backend)?;
        let routed = self.caps.forward(&u, backend)?;

        // Class scores: squared norms of the H capsules.
        let vdims = routed.v.shape().dims();
        let (b, h, ch) = (vdims[0], vdims[1], vdims[2]);
        let mut norms = vec![0.0f32; b * h];
        norms_sq_into(routed.v.as_slice(), b, h, ch, &mut norms);
        Ok(ForwardOutput {
            class_capsules: routed.v,
            class_norms_sq: Tensor::from_vec(norms, &[b, h])?,
            routing_coefficients: routed.coefficients,
        })
    }

    /// Arena-backed encoder forward pass: identical math and bit-identical
    /// outputs to [`Self::forward`], but every intermediate lives in
    /// `arena`, so a warm arena makes the whole pass allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`CapsNetError::InputMismatch`] for wrong image geometry and
    /// propagates tensor errors.
    pub fn forward_with<'a, B: MathBackend + ?Sized>(
        &self,
        images: &Tensor,
        backend: &B,
        arena: &'a mut ForwardArena,
    ) -> Result<ForwardView<'a>, CapsNetError> {
        self.validate_images(images)?;
        self.conv1
            .forward_into(images, &mut arena.conv1_out, &mut arena.conv1_scratch)?;
        self.primary.forward_into(
            &arena.conv1_out,
            backend,
            &mut arena.primary_caps,
            &mut arena.primary_conv,
            &mut arena.primary_scratch,
        )?;
        self.caps.forward_into(
            &arena.primary_caps,
            backend,
            &mut arena.u_hat,
            &mut arena.gather,
            &mut arena.routing,
        )?;

        let b = images.shape().dims()[0];
        let (h, ch) = (self.spec.h_caps, self.spec.ch_dim);
        arena.norms.clear();
        arena.norms.resize(b * h, 0.0);
        norms_sq_into(arena.routing.v(), b, h, ch, &mut arena.norms);

        let l = self.caps.l_caps();
        let (coeff_dims, coeff_rank) = if self.caps.routing_algorithm() == RoutingAlgorithm::Dynamic
            && self.caps.batch_shared()
        {
            ([l, h, 0], 2)
        } else {
            ([b, l, h], 3)
        };
        let routing_coefficients = if self.caps.routing_algorithm() == RoutingAlgorithm::Dynamic {
            arena.routing.coefficients()
        } else {
            arena.routing.responsibilities()
        };
        Ok(ForwardView {
            class_capsules: arena.routing.v(),
            class_norms_sq: &arena.norms,
            routing_coefficients,
            batch: b,
            h_caps: h,
            ch_dim: ch,
            coeff_dims,
            coeff_rank,
        })
    }

    fn validate_images(&self, images: &Tensor) -> Result<(), CapsNetError> {
        let dims = images.shape().dims();
        if dims.len() != 4
            || dims[1] != self.spec.input_channels
            || dims[2] != self.spec.input_hw.0
            || dims[3] != self.spec.input_hw.1
        {
            return Err(CapsNetError::InputMismatch {
                expected: format!(
                    "[B, {}, {}, {}]",
                    self.spec.input_channels, self.spec.input_hw.0, self.spec.input_hw.1
                ),
                actual: dims.to_vec(),
            });
        }
        Ok(())
    }

    /// Decoder forward pass: reconstructs inputs from class capsules with
    /// all but the target capsule masked to zero (Fig 2's decoding stage).
    ///
    /// # Errors
    ///
    /// Propagates tensor errors; `targets` must have one entry per sample.
    pub fn reconstruct(
        &self,
        output: &ForwardOutput,
        targets: &[usize],
    ) -> Result<Tensor, CapsNetError> {
        let vdims = output.class_capsules.shape().dims();
        let (b, h, ch) = (vdims[0], vdims[1], vdims[2]);
        if targets.len() != b {
            return Err(CapsNetError::InputMismatch {
                expected: format!("{b} target labels"),
                actual: vec![targets.len()],
            });
        }
        let vs = output.class_capsules.as_slice();
        let mut masked = vec![0.0f32; b * h * ch];
        for (bi, &t) in targets.iter().enumerate() {
            if t >= h {
                return Err(CapsNetError::InputMismatch {
                    expected: format!("labels < {h}"),
                    actual: vec![t],
                });
            }
            let off = (bi * h + t) * ch;
            masked[off..off + ch].copy_from_slice(&vs[off..off + ch]);
        }
        let mut x = Tensor::from_vec(masked, &[b, h * ch])?;
        for layer in &self.decoder {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Margin loss (Sabour et al. Eq 4): per-sample sum over classes of
    /// `T_k·max(0, 0.9−‖v‖)² + 0.5·(1−T_k)·max(0, ‖v‖−0.1)²`.
    ///
    /// # Errors
    ///
    /// Requires one label per sample.
    pub fn margin_loss(
        &self,
        output: &ForwardOutput,
        labels: &[usize],
    ) -> Result<f32, CapsNetError> {
        let dims = output.class_norms_sq.shape().dims();
        let (b, h) = (dims[0], dims[1]);
        if labels.len() != b {
            return Err(CapsNetError::InputMismatch {
                expected: format!("{b} labels"),
                actual: vec![labels.len()],
            });
        }
        let norms = output.class_norms_sq.as_slice();
        let mut total = 0.0f32;
        for (bi, &label) in labels.iter().enumerate() {
            for j in 0..h {
                let norm = norms[bi * h + j].max(0.0).sqrt();
                if j == label {
                    let d = (0.9 - norm).max(0.0);
                    total += d * d;
                } else {
                    let d = (norm - 0.1).max(0.0);
                    total += 0.5 * d * d;
                }
            }
        }
        Ok(total / b as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ApproxMath, ExactMath};
    use crate::config::RoutingAlgorithm;

    fn tiny_net() -> CapsNet {
        CapsNet::seeded(&CapsNetSpec::tiny_for_tests(), 99).unwrap()
    }

    fn tiny_images(b: usize, seed: u64) -> Tensor {
        let spec = CapsNetSpec::tiny_for_tests();
        Tensor::uniform(&[b, 1, spec.input_hw.0, spec.input_hw.1], 0.0, 1.0, seed)
    }

    #[test]
    fn forward_shapes() {
        let net = tiny_net();
        let out = net.forward(&tiny_images(3, 1), &ExactMath).unwrap();
        assert_eq!(out.class_capsules.shape().dims(), &[3, 3, 6]);
        assert_eq!(out.class_norms_sq.shape().dims(), &[3, 3]);
        assert_eq!(out.predictions().len(), 3);
    }

    #[test]
    fn rejects_wrong_geometry() {
        let net = tiny_net();
        let bad = Tensor::zeros(&[2, 1, 10, 10]);
        assert!(net.forward(&bad, &ExactMath).is_err());
    }

    #[test]
    fn reconstruct_shape_and_range() {
        let net = tiny_net();
        let out = net.forward(&tiny_images(2, 2), &ExactMath).unwrap();
        let rec = net.reconstruct(&out, &[0, 2]).unwrap();
        assert_eq!(rec.shape().dims(), &[2, 144]);
        assert!(rec.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!(net.reconstruct(&out, &[0]).is_err());
        assert!(net.reconstruct(&out, &[0, 99]).is_err());
    }

    #[test]
    fn margin_loss_prefers_correct_labels() {
        let net = tiny_net();
        let out = net.forward(&tiny_images(1, 3), &ExactMath).unwrap();
        let pred = out.predictions()[0];
        let wrong = (pred + 1) % 3;
        let loss_right = net.margin_loss(&out, &[pred]).unwrap();
        let loss_wrong = net.margin_loss(&out, &[wrong]).unwrap();
        assert!(loss_right < loss_wrong, "loss {loss_right} vs {loss_wrong}");
    }

    #[test]
    fn deterministic_across_constructions() {
        let a = tiny_net().forward(&tiny_images(2, 4), &ExactMath).unwrap();
        let b = tiny_net().forward(&tiny_images(2, 4), &ExactMath).unwrap();
        assert_eq!(a.class_capsules, b.class_capsules);
    }

    #[test]
    fn approx_backend_rarely_changes_predictions() {
        let net = tiny_net();
        let images = tiny_images(16, 5);
        let exact = net.forward(&images, &ExactMath).unwrap().predictions();
        let approx = net
            .forward(&images, &ApproxMath::with_recovery())
            .unwrap()
            .predictions();
        let agree = exact.iter().zip(&approx).filter(|(a, b)| a == b).count();
        assert!(agree >= 14, "only {agree}/16 predictions agree");
    }

    #[test]
    fn from_views_roundtrips_named_weights_bit_identically() {
        let net = tiny_net();
        // Collect the weights into a map source (owned clones)…
        let mut source: std::collections::BTreeMap<String, Tensor> = net
            .named_weights()
            .into_iter()
            .map(|(name, t)| (name, t.expect_f32().clone()))
            .collect();
        assert!(source.contains_key("caps.weight"));
        assert!(source.contains_key("decoder.2.bias"));
        // …and rebuild. Forward must be bit-identical.
        let rebuilt = CapsNet::from_views(net.spec(), &mut source).unwrap();
        let images = tiny_images(3, 5);
        let a = net.forward(&images, &ExactMath).unwrap();
        let b = rebuilt.forward(&images, &ExactMath).unwrap();
        for (x, y) in a
            .class_capsules
            .as_slice()
            .iter()
            .zip(b.class_capsules.as_slice())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a
            .class_norms_sq
            .as_slice()
            .iter()
            .zip(b.class_norms_sq.as_slice())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The decoder too (reconstruction exercises every dense layer).
        let ra = net.reconstruct(&a, &[0, 1, 2]).unwrap();
        let rb = rebuilt.reconstruct(&b, &[0, 1, 2]).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn from_views_rejects_missing_and_misshapen_weights() {
        let net = tiny_net();
        let weights: Vec<(String, Tensor)> = net
            .named_weights()
            .into_iter()
            .map(|(n, t)| (n, t.expect_f32().clone()))
            .collect();

        let mut missing: std::collections::BTreeMap<String, Tensor> = weights
            .iter()
            .filter(|(n, _)| n != "caps.weight")
            .cloned()
            .collect();
        assert!(CapsNet::from_views(net.spec(), &mut missing).is_err());

        let mut misshapen: std::collections::BTreeMap<String, Tensor> =
            weights.into_iter().collect();
        misshapen.insert("caps.weight".into(), Tensor::zeros(&[1, 2, 3]));
        assert!(CapsNet::from_views(net.spec(), &mut misshapen).is_err());
    }

    #[test]
    fn from_views_runs_off_shared_storage() {
        use pim_tensor::TensorBuf;
        use std::sync::Arc;

        let net = tiny_net();
        // Pack every weight into one flat buffer, then serve shared
        // (zero-copy) windows of it — the in-memory analogue of mmap.
        struct Packed {
            buf: Arc<dyn TensorBuf>,
            index: std::collections::BTreeMap<String, (usize, Vec<usize>)>,
        }
        impl WeightSource for Packed {
            fn contains(&self, name: &str) -> bool {
                self.index.contains_key(name)
            }
            fn tensor(&mut self, name: &str, dims: &[usize]) -> Result<Tensor, CapsNetError> {
                let (offset, stored) = self
                    .index
                    .get(name)
                    .ok_or_else(|| CapsNetError::InvalidSpec(format!("missing {name:?}")))?;
                assert_eq!(stored, dims, "{name}");
                Tensor::from_shared(Arc::clone(&self.buf), *offset, dims)
                    .map_err(CapsNetError::from)
            }
        }
        let mut flat = Vec::new();
        let mut index = std::collections::BTreeMap::new();
        for (name, t) in net.named_weights() {
            index.insert(name, (flat.len(), t.dims().to_vec()));
            flat.extend_from_slice(t.expect_f32().as_slice());
        }
        let mut source = Packed {
            buf: Arc::new(flat),
            index,
        };
        let shared_net = CapsNet::from_views(net.spec(), &mut source).unwrap();
        // The big caps weight really is a borrowed view…
        assert!(shared_net.caps.weight().is_shared());
        // …and forward is bit-identical to the owning network.
        let images = tiny_images(2, 8);
        let a = net.forward(&images, &ExactMath).unwrap();
        let b = shared_net.forward(&images, &ExactMath).unwrap();
        for (x, y) in a
            .class_capsules
            .as_slice()
            .iter()
            .zip(b.class_capsules.as_slice())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn weight_storage_census_and_cheap_shared_clone() {
        use pim_tensor::TensorBuf;
        use std::sync::Arc;

        // A seeded network owns everything.
        let net = tiny_net();
        let owned = net.weight_storage();
        assert_eq!(owned.shared_bytes, 0);
        assert_eq!(owned.shared_tensors, 0);
        assert_eq!(owned.tensors, net.named_weights().len());
        let total_bytes: usize = net
            .named_weights()
            .iter()
            .map(|(_, t)| t.size_bytes())
            .sum();
        assert_eq!(owned.owned_bytes, total_bytes);

        // A shared-backed network (every weight a window into one buffer)
        // reports everything shared…
        let mut flat = Vec::new();
        let mut index: std::collections::BTreeMap<String, (usize, Vec<usize>)> =
            std::collections::BTreeMap::new();
        for (name, t) in net.named_weights() {
            index.insert(name, (flat.len(), t.dims().to_vec()));
            flat.extend_from_slice(t.expect_f32().as_slice());
        }
        struct Packed {
            buf: Arc<dyn TensorBuf>,
            index: std::collections::BTreeMap<String, (usize, Vec<usize>)>,
        }
        impl WeightSource for Packed {
            fn contains(&self, name: &str) -> bool {
                self.index.contains_key(name)
            }
            fn tensor(&mut self, name: &str, dims: &[usize]) -> Result<Tensor, CapsNetError> {
                let (offset, _) = self.index.get(name).expect("packed source complete");
                Tensor::from_shared(Arc::clone(&self.buf), *offset, dims)
                    .map_err(CapsNetError::from)
            }
        }
        let mut source = Packed {
            buf: Arc::new(flat),
            index,
        };
        let shared_net = CapsNet::from_views(net.spec(), &mut source).unwrap();
        let shared = shared_net.weight_storage();
        assert_eq!(shared.owned_bytes, 0);
        assert_eq!(shared.shared_bytes, total_bytes);
        assert_eq!(shared.shared_tensors, shared.tensors);

        // …and cloning it (the per-replica operation) copies no weight
        // bytes: the clone's views alias the original's backing buffer.
        let replica = shared_net.clone();
        assert_eq!(replica.weight_storage().owned_bytes, 0);
        assert_eq!(
            replica.caps.weight().as_slice().as_ptr(),
            shared_net.caps.weight().as_slice().as_ptr(),
            "clone must alias, not copy, shared weights"
        );
    }

    #[test]
    fn em_variant_runs_end_to_end() {
        let mut spec = CapsNetSpec::tiny_for_tests();
        spec.routing = RoutingAlgorithm::Em;
        let net = CapsNet::seeded(&spec, 7).unwrap();
        let out = net.forward(&tiny_images(2, 6), &ExactMath).unwrap();
        assert_eq!(out.class_capsules.shape().dims(), &[2, 3, 6]);
    }
}
