//! Capsule Network algorithm substrate for the PIM-CapsNet reproduction.
//!
//! Implements the full CapsNet inference pipeline of §2 of the paper:
//!
//! * the **encoder** — Conv layer(s), PrimaryCaps layer, and a final Caps
//!   layer whose input/output capsules are connected by the **routing
//!   procedure** (RP);
//! * the **decoder** — fully-connected reconstruction layers;
//! * two routing algorithms: **dynamic routing** (Algorithm 1, with the
//!   batch-shared routing coefficients the paper assumes) and a simplified
//!   **EM routing**, to back the paper's claim that the PIM design
//!   generalizes across RP algorithms;
//! * a pluggable [`MathBackend`] so the special functions (`exp`,
//!   `1/sqrt`, division) can be computed exactly (GPU baseline) or with the
//!   PE bit-level approximations of §5.2.2 (via [`pim_approx`]);
//! * an **op census** ([`census`]) that derives, from a network
//!   configuration alone, the exact FLOP/byte/special-function counts of
//!   every RP equation and every layer — the single source of truth that
//!   drives both the GPU timing model and the HMC simulator.
//!
//! # Example
//!
//! ```
//! use capsnet::{CapsNetSpec, CapsNet, ExactMath};
//! use pim_tensor::Tensor;
//!
//! # fn main() -> Result<(), capsnet::CapsNetError> {
//! let spec = CapsNetSpec::tiny_for_tests();
//! let net = CapsNet::seeded(&spec, 42)?;
//! let images = Tensor::uniform(&[2, 1, spec.input_hw.0, spec.input_hw.1], 0.0, 1.0, 7);
//! let out = net.forward(&images, &ExactMath)?;
//! assert_eq!(out.class_capsules.shape().dims(), &[2, spec.h_caps, spec.ch_dim]);
//! # Ok(())
//! # }
//! ```

mod backend;
pub mod census;
mod config;
mod error;
pub mod layers;
mod model;
pub mod routing;
mod squash;
mod weights;

pub use backend::{ApproxMath, ExactMath, MathBackend};
pub use census::{EquationProfile, IntermediateSizes, NetworkCensus, RpCensus, RpEquation};
pub use config::{CapsNetSpec, RoutingAlgorithm};
pub use error::CapsNetError;
pub use model::{
    CapsNet, ForwardArena, ForwardOutput, ForwardView, WeightSource, WeightStorageCensus,
};
pub use weights::{WeightRef, WeightView};
// The routing drivers at the crate root: the serving layer (and any other
// embedder) picks an execution strategy without reaching into the module
// tree.
pub use routing::{
    dynamic_routing, dynamic_routing_parallel, dynamic_routing_with, em_routing,
    em_routing_parallel, em_routing_with, RoutingScratch,
};
pub use squash::{squash_in_place, squash_into, squash_scale};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CapsNetError>;

#[cfg(test)]
mod thread_safety {
    use super::*;

    /// The serving layer shares models across `std::thread::scope` workers
    /// and moves arenas into them; these bounds are API guarantees, not
    /// accidents of the current field types.
    #[test]
    fn serving_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CapsNet>();
        assert_send_sync::<CapsNetSpec>();
        assert_send_sync::<ForwardArena>();
        assert_send_sync::<RoutingScratch>();
        assert_send_sync::<ExactMath>();
        assert_send_sync::<ApproxMath>();
    }
}
