//! Typed weight views: every layer weight is either a dense `f32`
//! [`Tensor`] or a [`QuantTensor`] whose bytes are dequantized on the fly
//! by the fused [`pim_tensor::simd`] kernels.
//!
//! [`WeightView`] is the owned storage the layers hold; [`WeightRef`] is
//! the borrowed form [`crate::CapsNet::named_weights`] hands out so
//! writers and censuses can account for both storage kinds without
//! materializing `f32` copies of quantized weights.

use pim_tensor::{QuantTensor, Tensor};

/// An owned (or zero-copy shared) weight: dense `f32` or quantized bytes.
#[derive(Debug, Clone)]
pub enum WeightView {
    /// Dense IEEE-754 single precision (the default).
    F32(Tensor),
    /// Quantized storage (int8 affine or fp16), dequantized on the fly.
    Quant(QuantTensor),
}

impl WeightView {
    /// The logical tensor dims.
    pub fn dims(&self) -> &[usize] {
        match self {
            WeightView::F32(t) => t.shape().dims(),
            WeightView::Quant(q) => q.shape().dims(),
        }
    }

    /// Logical element count.
    pub fn len(&self) -> usize {
        match self {
            WeightView::F32(t) => t.len(),
            WeightView::Quant(q) => q.len(),
        }
    }

    /// `true` when the weight has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes actually stored (4 per element for `f32`, 1–2 when quantized).
    pub fn size_bytes(&self) -> usize {
        match self {
            WeightView::F32(t) => t.size_bytes(),
            WeightView::Quant(q) => q.size_bytes(),
        }
    }

    /// `true` when the storage is a zero-copy window over a shared buffer.
    pub fn is_shared(&self) -> bool {
        match self {
            WeightView::F32(t) => t.is_shared(),
            WeightView::Quant(q) => q.is_shared(),
        }
    }

    /// The dense tensor, when this view is `f32`.
    pub fn as_f32(&self) -> Option<&Tensor> {
        match self {
            WeightView::F32(t) => Some(t),
            WeightView::Quant(_) => None,
        }
    }

    /// The quantized tensor, when this view is quantized.
    pub fn as_quant(&self) -> Option<&QuantTensor> {
        match self {
            WeightView::F32(_) => None,
            WeightView::Quant(q) => Some(q),
        }
    }

    /// The dense tensor's data slice.
    ///
    /// # Panics
    ///
    /// Panics when the weight is quantized — callers that can meet a
    /// quantized weight must match on the view instead.
    pub fn as_slice(&self) -> &[f32] {
        self.expect_f32().as_slice()
    }

    /// The dense tensor.
    ///
    /// # Panics
    ///
    /// Panics when the weight is quantized.
    pub fn expect_f32(&self) -> &Tensor {
        match self {
            WeightView::F32(t) => t,
            WeightView::Quant(q) => panic!(
                "expected an f32 weight, found {} quantized storage",
                q.dtype().label()
            ),
        }
    }

    /// A borrowed [`WeightRef`] of this view.
    pub fn as_ref(&self) -> WeightRef<'_> {
        match self {
            WeightView::F32(t) => WeightRef::F32(t),
            WeightView::Quant(q) => WeightRef::Quant(q),
        }
    }
}

impl From<Tensor> for WeightView {
    fn from(t: Tensor) -> Self {
        WeightView::F32(t)
    }
}

impl From<QuantTensor> for WeightView {
    fn from(q: QuantTensor) -> Self {
        WeightView::Quant(q)
    }
}

/// A borrowed weight: what [`crate::CapsNet::named_weights`] yields.
#[derive(Debug, Clone, Copy)]
pub enum WeightRef<'a> {
    /// Dense `f32` storage.
    F32(&'a Tensor),
    /// Quantized storage.
    Quant(&'a QuantTensor),
}

impl<'a> WeightRef<'a> {
    /// The logical tensor dims.
    pub fn dims(&self) -> &[usize] {
        match self {
            WeightRef::F32(t) => t.shape().dims(),
            WeightRef::Quant(q) => q.shape().dims(),
        }
    }

    /// Logical element count.
    pub fn len(&self) -> usize {
        match self {
            WeightRef::F32(t) => t.len(),
            WeightRef::Quant(q) => q.len(),
        }
    }

    /// `true` when the weight has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes actually stored.
    pub fn size_bytes(&self) -> usize {
        match self {
            WeightRef::F32(t) => t.size_bytes(),
            WeightRef::Quant(q) => q.size_bytes(),
        }
    }

    /// `true` when the storage is a zero-copy shared window.
    pub fn is_shared(&self) -> bool {
        match self {
            WeightRef::F32(t) => t.is_shared(),
            WeightRef::Quant(q) => q.is_shared(),
        }
    }

    /// The dense tensor, when this ref is `f32`.
    pub fn as_f32(&self) -> Option<&'a Tensor> {
        match self {
            WeightRef::F32(t) => Some(t),
            WeightRef::Quant(_) => None,
        }
    }

    /// The dense tensor.
    ///
    /// # Panics
    ///
    /// Panics when the weight is quantized.
    pub fn expect_f32(&self) -> &'a Tensor {
        match self {
            WeightRef::F32(t) => t,
            WeightRef::Quant(q) => panic!(
                "expected an f32 weight, found {} quantized storage",
                q.dtype().label()
            ),
        }
    }

    /// The quantized tensor, when this ref is quantized.
    pub fn as_quant(&self) -> Option<&'a QuantTensor> {
        match self {
            WeightRef::F32(_) => None,
            WeightRef::Quant(q) => Some(q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_tensor::QuantDType;

    #[test]
    fn view_accounting_covers_both_kinds() {
        let t = Tensor::uniform(&[4, 8], -1.0, 1.0, 7);
        let q = QuantTensor::quantize(QuantDType::I8, t.as_slice(), &[4, 8], &[4]).unwrap();
        let dense = WeightView::from(t.clone());
        let quant = WeightView::from(q);
        assert_eq!(dense.dims(), quant.dims());
        assert_eq!(dense.len(), 32);
        assert_eq!(dense.size_bytes(), 128);
        assert_eq!(quant.size_bytes(), 32);
        assert!(dense.as_f32().is_some() && quant.as_f32().is_none());
        assert!(quant.as_quant().is_some());
        assert_eq!(dense.as_slice(), t.as_slice());
        assert!(!dense.is_shared() && !quant.is_shared());
        assert_eq!(quant.as_ref().size_bytes(), 32);
        assert!(quant.as_ref().as_quant().is_some());
    }

    #[test]
    #[should_panic(expected = "expected an f32 weight")]
    fn expect_f32_panics_on_quantized() {
        let q = QuantTensor::quantize(QuantDType::F16, &[1.0, 2.0], &[2], &[2]).unwrap();
        let _ = WeightView::from(q).as_slice();
    }
}
