//! Network specification: the static description from which both the
//! functional model and the op census are built.

use serde::{Deserialize, Serialize};

use crate::error::CapsNetError;

/// Which routing algorithm connects the PrimaryCaps layer to the final Caps
/// layer (§2.2: "There have been several routing algorithms … such as
/// Dynamic Routing and Expectation-Maximization routing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RoutingAlgorithm {
    /// Dynamic routing (Sabour et al. 2017), Algorithm 1 in the paper.
    #[default]
    Dynamic,
    /// Simplified Expectation-Maximization routing (Hinton et al. 2018).
    Em,
}

/// Full static description of a CapsNet (Fig 2 geometry).
///
/// The encoder is `Conv1 → PrimaryCaps → (routing) → final Caps layer`; the
/// decoder is a stack of fully-connected layers. Everything the op census
/// and the simulators need is derivable from this struct.
///
/// # Examples
///
/// ```
/// use capsnet::CapsNetSpec;
///
/// let spec = CapsNetSpec::mnist();
/// assert_eq!(spec.l_caps().unwrap(), 1152); // 6*6*32 primary capsules
/// assert_eq!(spec.h_caps, 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapsNetSpec {
    /// Human-readable name (e.g. `Caps-MN1`).
    pub name: String,
    /// Input image channels (1 for MNIST-like, 3 for CIFAR/SVHN-like).
    pub input_channels: usize,
    /// Input image height and width.
    pub input_hw: (usize, usize),
    /// Output channels of the first convolution.
    pub conv1_channels: usize,
    /// Kernel side of the first convolution.
    pub conv1_kernel: usize,
    /// Stride of the first convolution.
    pub conv1_stride: usize,
    /// Number of primary-capsule channel groups (32 in CapsNet-MNIST).
    pub primary_channels: usize,
    /// Dimension `C_L` of each low-level capsule (8 in CapsNet-MNIST).
    pub cl_dim: usize,
    /// Kernel side of the PrimaryCaps convolution.
    pub primary_kernel: usize,
    /// Stride of the PrimaryCaps convolution.
    pub primary_stride: usize,
    /// Number of high-level capsules `N_H` (one per class).
    pub h_caps: usize,
    /// Dimension `C_H` of each high-level capsule (16 in CapsNet-MNIST).
    pub ch_dim: usize,
    /// Routing iterations (3 in the original; Table 1 sweeps 3/6/9).
    pub routing_iterations: usize,
    /// Routing algorithm.
    pub routing: RoutingAlgorithm,
    /// Hidden/output sizes of the FC decoder (e.g. `[512, 1024, 784]`).
    pub decoder_dims: Vec<usize>,
    /// Scale applied to the Caps-layer weights (and therefore the
    /// prediction vectors û). Trained CapsNets produce large agreement
    /// logits and near-one-hot routing coefficients; seeded random networks
    /// default to 1.0 (soft routing) and the Table 5 harness raises this to
    /// emulate a trained network's routing confidence.
    #[serde(default = "default_sharpness")]
    pub routing_sharpness: f32,
    /// `true` (the paper's configuration) shares the routing coefficients
    /// across the batch (Eq 4 aggregates over k); `false` routes each
    /// sample independently (the original Sabour et al. formulation). The
    /// accuracy harness uses per-sample routing so that each prediction
    /// depends only on its own input.
    #[serde(default = "default_batch_shared")]
    pub batch_shared_routing: bool,
}

fn default_sharpness() -> f32 {
    1.0
}

fn default_batch_shared() -> bool {
    true
}

impl CapsNetSpec {
    /// The CapsNet-MNIST reference network of Fig 2.
    pub fn mnist() -> Self {
        CapsNetSpec {
            name: "CapsNet-MNIST".into(),
            input_channels: 1,
            input_hw: (28, 28),
            conv1_channels: 256,
            conv1_kernel: 9,
            conv1_stride: 1,
            primary_channels: 32,
            cl_dim: 8,
            primary_kernel: 9,
            primary_stride: 2,
            h_caps: 10,
            ch_dim: 16,
            routing_iterations: 3,
            routing: RoutingAlgorithm::Dynamic,
            decoder_dims: vec![512, 1024, 784],
            routing_sharpness: 1.0,
            batch_shared_routing: true,
        }
    }

    /// A very small network for unit tests: same structure, tiny extents.
    pub fn tiny_for_tests() -> Self {
        CapsNetSpec {
            name: "tiny".into(),
            input_channels: 1,
            input_hw: (12, 12),
            conv1_channels: 8,
            conv1_kernel: 5,
            conv1_stride: 1,
            primary_channels: 4,
            cl_dim: 4,
            primary_kernel: 5,
            primary_stride: 2,
            h_caps: 3,
            ch_dim: 6,
            routing_iterations: 3,
            routing: RoutingAlgorithm::Dynamic,
            decoder_dims: vec![16, 32, 144],
            routing_sharpness: 1.0,
            batch_shared_routing: true,
        }
    }

    /// Spatial size after the first convolution.
    pub fn conv1_out_hw(&self) -> Result<(usize, usize), CapsNetError> {
        let f = |d: usize| -> Result<usize, CapsNetError> {
            if d < self.conv1_kernel {
                return Err(CapsNetError::InvalidSpec(format!(
                    "conv1 kernel {} larger than input {d}",
                    self.conv1_kernel
                )));
            }
            Ok((d - self.conv1_kernel) / self.conv1_stride + 1)
        };
        Ok((f(self.input_hw.0)?, f(self.input_hw.1)?))
    }

    /// Spatial grid of the PrimaryCaps layer.
    pub fn primary_grid(&self) -> Result<(usize, usize), CapsNetError> {
        let (h, w) = self.conv1_out_hw()?;
        let f = |d: usize| -> Result<usize, CapsNetError> {
            if d < self.primary_kernel {
                return Err(CapsNetError::InvalidSpec(format!(
                    "primary kernel {} larger than conv1 output {d}",
                    self.primary_kernel
                )));
            }
            Ok((d - self.primary_kernel) / self.primary_stride + 1)
        };
        Ok((f(h)?, f(w)?))
    }

    /// Total number of low-level capsules `N_L = grid_h · grid_w · channels`.
    pub fn l_caps(&self) -> Result<usize, CapsNetError> {
        let (gh, gw) = self.primary_grid()?;
        Ok(gh * gw * self.primary_channels)
    }

    /// Number of input pixels (`channels · h · w`), the decoder target size.
    pub fn input_pixels(&self) -> usize {
        self.input_channels * self.input_hw.0 * self.input_hw.1
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CapsNetError::InvalidSpec`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), CapsNetError> {
        if self.conv1_channels == 0 {
            return Err(CapsNetError::InvalidSpec(
                "conv1_channels must be > 0".into(),
            ));
        }
        if self.cl_dim == 0 || self.ch_dim == 0 {
            return Err(CapsNetError::InvalidSpec(
                "capsule dimensions must be > 0".into(),
            ));
        }
        if self.routing_iterations == 0 {
            return Err(CapsNetError::InvalidSpec(
                "routing_iterations must be >= 1".into(),
            ));
        }
        if self.h_caps == 0 {
            return Err(CapsNetError::InvalidSpec("h_caps must be > 0".into()));
        }
        // PrimaryCaps conv output channels = primary_channels * cl_dim.
        let _ = self.l_caps()?;
        if self.decoder_dims.is_empty() {
            return Err(CapsNetError::InvalidSpec(
                "decoder needs at least one layer".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_geometry_matches_paper() {
        let s = CapsNetSpec::mnist();
        assert_eq!(s.conv1_out_hw().unwrap(), (20, 20));
        assert_eq!(s.primary_grid().unwrap(), (6, 6));
        assert_eq!(s.l_caps().unwrap(), 1152);
        assert_eq!(s.input_pixels(), 784);
        s.validate().unwrap();
    }

    #[test]
    fn tiny_is_valid() {
        let s = CapsNetSpec::tiny_for_tests();
        s.validate().unwrap();
        // 12 -> conv5/s1 -> 8 -> conv5/s2 -> 2; 2*2*4 = 16 L capsules.
        assert_eq!(s.primary_grid().unwrap(), (2, 2));
        assert_eq!(s.l_caps().unwrap(), 16);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = CapsNetSpec::tiny_for_tests();
        s.routing_iterations = 0;
        assert!(s.validate().is_err());

        let mut s = CapsNetSpec::tiny_for_tests();
        s.conv1_kernel = 99;
        assert!(s.validate().is_err());

        let mut s = CapsNetSpec::tiny_for_tests();
        s.decoder_dims.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn spec_types_are_serde() {
        fn assert_serde<T: serde::Serialize + for<'a> serde::Deserialize<'a>>() {}
        assert_serde::<CapsNetSpec>();
        assert_serde::<RoutingAlgorithm>();
    }
}
