use std::error::Error;
use std::fmt;

use pim_tensor::TensorError;

/// Error type for CapsNet construction and inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapsNetError {
    /// A tensor operation failed (shape mismatch etc.).
    Tensor(TensorError),
    /// The network specification is internally inconsistent.
    InvalidSpec(String),
    /// An input tensor does not match the network's expected geometry.
    InputMismatch {
        /// Human-readable description of what was expected.
        expected: String,
        /// The shape that was supplied.
        actual: Vec<usize>,
    },
}

impl fmt::Display for CapsNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapsNetError::Tensor(e) => write!(f, "tensor error: {e}"),
            CapsNetError::InvalidSpec(msg) => write!(f, "invalid network spec: {msg}"),
            CapsNetError::InputMismatch { expected, actual } => {
                write!(f, "input mismatch: expected {expected}, got {actual:?}")
            }
        }
    }
}

impl Error for CapsNetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CapsNetError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TensorError> for CapsNetError {
    fn from(e: TensorError) -> Self {
        CapsNetError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CapsNetError::from(TensorError::EmptyShape);
        assert!(e.to_string().contains("tensor error"));
        assert!(Error::source(&e).is_some());
        let s = CapsNetError::InvalidSpec("bad".into());
        assert!(s.to_string().contains("bad"));
        assert!(Error::source(&s).is_none());
    }
}
