//! Batch-parallel routing driver.
//!
//! With per-sample routing coefficients (`batch_shared = false`, the
//! original Sabour et al. formulation and the configuration the accuracy
//! harness uses) every sample routes independently, so a batch shards
//! perfectly across cores. The driver reuses the work-size heuristics of
//! `pim_tensor::par` (the same ones gating the threaded matmul) to decide
//! when spawning is worth it, hands each `std::thread::scope` worker its own
//! [`RoutingScratch`], and writes disjoint output chunks — results are
//! **bit-identical** to the serial path because per-sample routing never
//! mixes information across samples (the equivalence suite asserts this).

use pim_tensor::par::{map_sharded, plan_threads};
use pim_tensor::Tensor;

use crate::backend::MathBackend;
use crate::error::CapsNetError;
use crate::routing::dynamic::dynamic_routing_core;
use crate::routing::em::em_routing_core;
use crate::routing::{validate_u_hat, RoutingOutput, RoutingScratch};

/// Per-sample multiply-add-equivalents of one dynamic-routing invocation
/// (Eq 2 + Eq 4 dominate: two `L·H·C_H` passes per iteration).
fn dynamic_work_per_sample(nl: usize, nh: usize, ch: usize, iterations: usize) -> usize {
    iterations.saturating_mul(nl * nh * (2 * ch + 4))
}

/// Per-sample multiply-add-equivalents of one EM-routing invocation (the
/// M-step's mean+variance fits and the E-step's quadratic forms are each
/// `L·H·C_H` passes).
fn em_work_per_sample(nl: usize, nh: usize, ch: usize, iterations: usize) -> usize {
    (iterations + 1).saturating_mul(nl * nh * (4 * ch + 8))
}

/// Dynamic routing with **per-sample** coefficients, sharded across cores.
///
/// Equivalent to `dynamic_routing(u_hat, iterations, false, backend)` —
/// bit-identical outputs, including the `[B, L, H]` coefficient layout —
/// but independent samples run on separate threads when the batch is large
/// enough to amortize spawning (otherwise it falls through to the serial
/// core).
///
/// # Errors
///
/// Returns [`CapsNetError::InputMismatch`] if `u_hat` is not rank 4, or
/// [`CapsNetError::InvalidSpec`] for zero iterations.
pub fn dynamic_routing_parallel<B: MathBackend + Sync + ?Sized>(
    u_hat: &Tensor,
    iterations: usize,
    backend: &B,
) -> Result<RoutingOutput, CapsNetError> {
    let (nb, nl, nh, ch) = validate_u_hat(u_hat, iterations)?;
    let threads = plan_threads(nb, dynamic_work_per_sample(nl, nh, ch, iterations));
    let run = |uh: &[f32], samples: usize, scratch: &mut RoutingScratch| {
        dynamic_routing_core(
            uh,
            (samples, nl, nh, ch),
            iterations,
            false,
            backend,
            scratch,
        );
    };
    let (v, c) = shard_batch(u_hat.as_slice(), (nb, nl, nh, ch), threads, run);
    Ok(RoutingOutput {
        v: Tensor::from_vec(v, &[nb, nh, ch])?,
        coefficients: Tensor::from_vec(c, &[nb, nl, nh])?,
        iterations,
    })
}

/// EM routing sharded across cores.
///
/// Equivalent to `em_routing(u_hat, iterations, backend)` — bit-identical
/// outputs — but independent samples run on separate threads when the
/// batch is large enough to amortize spawning.
///
/// # Errors
///
/// Returns [`CapsNetError::InputMismatch`] if `u_hat` is not rank 4, or
/// [`CapsNetError::InvalidSpec`] for zero iterations.
pub fn em_routing_parallel<B: MathBackend + Sync + ?Sized>(
    u_hat: &Tensor,
    iterations: usize,
    backend: &B,
) -> Result<RoutingOutput, CapsNetError> {
    let (nb, nl, nh, ch) = validate_u_hat(u_hat, iterations)?;
    let threads = plan_threads(nb, em_work_per_sample(nl, nh, ch, iterations));
    let run = |uh: &[f32], samples: usize, scratch: &mut RoutingScratch| {
        em_routing_core(uh, (samples, nl, nh, ch), iterations, backend, scratch);
        // EM's coefficients live in `r`; surface them through `c` so the
        // shard assembler reads one place.
        scratch.c.clear();
        scratch.c.extend_from_slice(&scratch.r);
    };
    let (v, r) = shard_batch(u_hat.as_slice(), (nb, nl, nh, ch), threads, run);
    Ok(RoutingOutput {
        v: Tensor::from_vec(v, &[nb, nh, ch])?,
        coefficients: Tensor::from_vec(r, &[nb, nl, nh])?,
        iterations,
    })
}

/// Splits the batch into contiguous chunks, routes each on its own worker
/// with its own scratch, and assembles `(v, coefficients)`.
///
/// Per-sample routing treats every sample independently, so routing a chunk
/// as a mini-batch produces exactly the per-sample results of the full
/// batch — concatenation is the whole reduction.
fn shard_batch<F>(
    uh: &[f32],
    (nb, nl, nh, ch): (usize, usize, usize, usize),
    threads: usize,
    run: F,
) -> (Vec<f32>, Vec<f32>)
where
    F: Fn(&[f32], usize, &mut RoutingScratch) + Sync,
{
    let sample_u = nl * nh * ch;
    let sample_v = nh * ch;
    let sample_c = nl * nh;
    let parts = map_sharded(nb, threads, |range| {
        let mut scratch = RoutingScratch::new();
        run(
            &uh[range.start * sample_u..range.end * sample_u],
            range.len(),
            &mut scratch,
        );
        // Move the routed buffers out of the worker's scratch — the
        // concatenation below is the whole reduction.
        (
            std::mem::take(&mut scratch.v),
            std::mem::take(&mut scratch.c),
        )
    });
    let mut v = Vec::with_capacity(nb * sample_v);
    let mut c = Vec::with_capacity(nb * sample_c);
    for (part_v, part_c) in parts {
        v.extend_from_slice(&part_v);
        c.extend_from_slice(&part_c);
    }
    (v, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ApproxMath, ExactMath};
    use crate::routing::{dynamic_routing, em_routing};

    fn uhat(nb: usize, nl: usize, nh: usize, ch: usize, seed: u64) -> Tensor {
        Tensor::uniform(&[nb, nl, nh, ch], -0.5, 0.5, seed)
    }

    #[test]
    fn dynamic_parallel_matches_serial_bitwise() {
        // Large enough that plan_threads actually shards on multicore hosts
        // (total work exceeds PAR_MIN_WORK).
        let u = uhat(16, 128, 8, 12, 1);
        let serial = dynamic_routing(&u, 3, false, &ExactMath).unwrap();
        let parallel = dynamic_routing_parallel(&u, 3, &ExactMath).unwrap();
        assert_eq!(serial.v, parallel.v);
        assert_eq!(serial.coefficients, parallel.coefficients);
    }

    #[test]
    fn em_parallel_matches_serial_bitwise() {
        let u = uhat(16, 96, 6, 8, 2);
        let serial = em_routing(&u, 3, &ExactMath).unwrap();
        let parallel = em_routing_parallel(&u, 3, &ExactMath).unwrap();
        assert_eq!(serial.v, parallel.v);
        assert_eq!(serial.coefficients, parallel.coefficients);
    }

    #[test]
    fn small_batches_fall_through_to_serial() {
        let u = uhat(2, 4, 3, 4, 3);
        let serial = dynamic_routing(&u, 2, false, &ExactMath).unwrap();
        let parallel = dynamic_routing_parallel(&u, 2, &ExactMath).unwrap();
        assert_eq!(serial.v, parallel.v);
        assert_eq!(serial.coefficients, parallel.coefficients);
    }

    #[test]
    fn parallel_works_through_dyn_backend() {
        let u = uhat(8, 32, 5, 8, 4);
        let boxed: &dyn MathBackend = &ApproxMath::with_recovery();
        let via_dyn = dynamic_routing_parallel(&u, 3, boxed).unwrap();
        let via_mono = dynamic_routing_parallel(&u, 3, &ApproxMath::with_recovery()).unwrap();
        assert_eq!(via_dyn.v, via_mono.v);
    }

    #[test]
    fn zero_sized_dimensions_error_instead_of_panicking() {
        // L*H work is large enough to request threads, but C_H = 0 makes
        // the per-sample stride zero — every driver must reject it with a
        // typed error (the inner loops cannot traverse zero-sized chunks).
        let u = Tensor::zeros(&[16, 512, 128, 0]);
        assert!(dynamic_routing(&u, 3, false, &ExactMath).is_err());
        assert!(dynamic_routing_parallel(&u, 3, &ExactMath).is_err());
        assert!(em_routing_parallel(&u, 3, &ExactMath).is_err());
        // Empty batches are fine and produce empty outputs.
        let empty = Tensor::zeros(&[0, 4, 3, 2]);
        let out = dynamic_routing_parallel(&empty, 3, &ExactMath).unwrap();
        assert_eq!(out.v.shape().dims(), &[0, 3, 2]);
        assert_eq!(
            out.v,
            dynamic_routing(&empty, 3, false, &ExactMath).unwrap().v
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(dynamic_routing_parallel(&Tensor::zeros(&[2, 3, 4]), 3, &ExactMath).is_err());
        let u = uhat(1, 2, 2, 2, 5);
        assert!(em_routing_parallel(&u, 0, &ExactMath).is_err());
    }
}
