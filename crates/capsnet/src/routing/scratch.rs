//! Reusable scratch memory for the routing procedure.
//!
//! The RP is the hot loop of CapsNet inference (the entire premise of the
//! paper), and the seed implementation reallocated its `b`/`c`/`s`/`v`
//! intermediates on every call. [`RoutingScratch`] owns those buffers so a
//! warm engine performs **zero heap allocations** per routing invocation:
//! every buffer is `clear()`+`resize()`d in place, which only touches the
//! allocator when a larger problem than any seen before arrives.

/// Scratch buffers for [`dynamic_routing`](crate::routing::dynamic_routing)
/// and [`em_routing`](crate::routing::em_routing).
///
/// One scratch serves both algorithms (buffers are disjoint per algorithm
/// but reuse is harmless); keep one per thread — the buffers are the reason
/// the batch-parallel driver hands each worker its own.
#[derive(Debug, Clone, Default)]
pub struct RoutingScratch {
    // Dynamic routing (Algorithm 1).
    pub(crate) b_logits: Vec<f32>,
    pub(crate) c: Vec<f32>,
    pub(crate) s: Vec<f32>,
    pub(crate) v: Vec<f32>,
    // EM routing.
    pub(crate) r: Vec<f32>,
    pub(crate) mu: Vec<f32>,
    pub(crate) sigma_sq: Vec<f32>,
    pub(crate) act: Vec<f32>,
    pub(crate) log_p: Vec<f32>,
    pub(crate) r_sum: Vec<f32>,
}

impl RoutingScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The routed high-level capsules `v` (`[B, H, C_H]` row-major) from the
    /// most recent routing call.
    pub fn v(&self) -> &[f32] {
        &self.v
    }

    /// The final routing coefficients from the most recent *dynamic* routing
    /// call (`[L, H]` when batch-shared, `[B, L, H]` per-sample).
    pub fn coefficients(&self) -> &[f32] {
        &self.c
    }

    /// The final responsibilities from the most recent *EM* routing call
    /// (`[B, L, H]`).
    pub fn responsibilities(&self) -> &[f32] {
        &self.r
    }

    /// Resizes `buf` to `len` filled with `value`, reusing capacity.
    pub(crate) fn fill_buf(buf: &mut Vec<f32>, len: usize, value: f32) {
        buf.clear();
        buf.resize(len, value);
    }
}
