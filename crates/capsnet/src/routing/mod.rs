//! The routing procedure (RP) — §2.2 of the paper.
//!
//! Routing inherits features from `L` low-level capsules into `H` high-level
//! capsules without the information loss of pooling. Two algorithms are
//! provided behind one interface:
//!
//! * [`dynamic_routing`] — Algorithm 1 (Sabour et al. 2017) with the paper's
//!   batch-shared routing coefficients (`b_{ij}` accumulates agreement over
//!   the whole batch, Eq 4);
//! * [`em_routing`] — a simplified Expectation-Maximization routing
//!   (Hinton et al. 2018), demonstrating that the in-memory optimizations
//!   apply to "different RP algorithms with simple adjustment".

mod dynamic;
mod em;
mod parallel;
mod scratch;

pub(crate) use dynamic::dynamic_routing_core;
pub use dynamic::{dynamic_routing, dynamic_routing_with};
pub(crate) use em::em_routing_core;
pub use em::{em_routing, em_routing_with};
pub use parallel::{dynamic_routing_parallel, em_routing_parallel};
pub use scratch::RoutingScratch;

use pim_tensor::Tensor;

use crate::error::CapsNetError;

/// Validates a `[B, L, H, C_H]` prediction-vector tensor and a routing
/// iteration count, returning the unpacked dims.
///
/// Zero-sized `L`/`H`/`C_H` dimensions are rejected (the inner loops'
/// chunked traversals are ill-defined for them); an empty batch (`B = 0`)
/// is fine and routes to empty outputs.
pub(crate) fn validate_u_hat(
    u_hat: &Tensor,
    iterations: usize,
) -> Result<(usize, usize, usize, usize), CapsNetError> {
    let dims = u_hat.shape().dims();
    if dims.len() != 4 || dims[1..].contains(&0) {
        return Err(CapsNetError::InputMismatch {
            expected: "[B, L, H, C_H] with L, H, C_H > 0".into(),
            actual: dims.to_vec(),
        });
    }
    if iterations == 0 {
        return Err(CapsNetError::InvalidSpec(
            "routing needs at least one iteration".into(),
        ));
    }
    Ok((dims[0], dims[1], dims[2], dims[3]))
}

/// The result of a routing procedure.
#[derive(Debug, Clone)]
pub struct RoutingOutput {
    /// High-level capsules `v`, shape `[B, H, C_H]`.
    pub v: Tensor,
    /// Final routing coefficients.
    ///
    /// Dynamic routing with batch-shared coefficients returns shape
    /// `[L, H]`; per-sample variants return `[B, L, H]`.
    pub coefficients: Tensor,
    /// Number of routing iterations executed.
    pub iterations: usize,
}
