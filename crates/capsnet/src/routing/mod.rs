//! The routing procedure (RP) — §2.2 of the paper.
//!
//! Routing inherits features from `L` low-level capsules into `H` high-level
//! capsules without the information loss of pooling. Two algorithms are
//! provided behind one interface:
//!
//! * [`dynamic_routing`] — Algorithm 1 (Sabour et al. 2017) with the paper's
//!   batch-shared routing coefficients (`b_{ij}` accumulates agreement over
//!   the whole batch, Eq 4);
//! * [`em_routing`] — a simplified Expectation-Maximization routing
//!   (Hinton et al. 2018), demonstrating that the in-memory optimizations
//!   apply to "different RP algorithms with simple adjustment".

mod dynamic;
mod em;

pub use dynamic::dynamic_routing;
pub use em::em_routing;

use pim_tensor::Tensor;

/// The result of a routing procedure.
#[derive(Debug, Clone)]
pub struct RoutingOutput {
    /// High-level capsules `v`, shape `[B, H, C_H]`.
    pub v: Tensor,
    /// Final routing coefficients.
    ///
    /// Dynamic routing with batch-shared coefficients returns shape
    /// `[L, H]`; per-sample variants return `[B, L, H]`.
    pub coefficients: Tensor,
    /// Number of routing iterations executed.
    pub iterations: usize,
}
