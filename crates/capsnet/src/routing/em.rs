//! Simplified Expectation-Maximization routing (Hinton, Sabour & Frosst,
//! "Matrix capsules with EM routing", 2018), adapted to vector capsules.
//!
//! Each high-level capsule is a diagonal Gaussian over vote vectors; the
//! E-step redistributes assignment probabilities `R_ij` by posterior
//! responsibility, the M-step refits means/variances and an activation.
//! The output capsule is the fitted mean scaled by the activation so that
//! norm-based classification works identically to dynamic routing.
//!
//! The paper's point (§2.2 Summary) is that all RP algorithms share the
//! execution pattern — all-to-all compute, per-iteration aggregations over
//! L / H / batch, massive intermediates — so the PIM design applies across
//! them. This implementation exhibits exactly those patterns.

use pim_tensor::Tensor;

use crate::backend::MathBackend;
use crate::error::CapsNetError;
use crate::routing::{validate_u_hat, RoutingOutput, RoutingScratch};

/// Variance floor keeping the Gaussians well-conditioned.
const SIGMA_FLOOR: f32 = 1e-4;
/// Inverse temperature of the activation logistic.
const LAMBDA: f32 = 1.0;
/// Activation benefit constant (`β_a` stand-in).
const BETA_A: f32 = 2.0;

/// Runs EM routing over prediction vectors (votes) `û` of shape
/// `[B, L, H, C_H]`.
///
/// Returns high-level capsules `[B, H, C_H]` (mean scaled by activation) and
/// per-sample assignment coefficients `[B, L, H]`.
///
/// Generic over the backend: concrete backends monomorphize the E/M steps
/// with the special functions inlined; `&dyn MathBackend` still works and
/// produces bit-identical results.
///
/// Allocates its scratch internally; steady-state callers should hold a
/// [`RoutingScratch`] and use [`em_routing_with`].
///
/// # Errors
///
/// Returns [`CapsNetError::InputMismatch`] if `u_hat` is not rank 4, or
/// [`CapsNetError::InvalidSpec`] for zero iterations.
pub fn em_routing<B: MathBackend + ?Sized>(
    u_hat: &Tensor,
    iterations: usize,
    backend: &B,
) -> Result<RoutingOutput, CapsNetError> {
    let mut scratch = RoutingScratch::new();
    em_routing_with(u_hat, iterations, backend, &mut scratch)
}

/// [`em_routing`] with caller-owned scratch: a warm scratch makes the
/// routing itself allocation-free (only the returned output tensors are
/// materialized fresh).
///
/// # Errors
///
/// Same conditions as [`em_routing`].
pub fn em_routing_with<B: MathBackend + ?Sized>(
    u_hat: &Tensor,
    iterations: usize,
    backend: &B,
    scratch: &mut RoutingScratch,
) -> Result<RoutingOutput, CapsNetError> {
    let (nb, nl, nh, ch) = validate_u_hat(u_hat, iterations)?;
    em_routing_core(
        u_hat.as_slice(),
        (nb, nl, nh, ch),
        iterations,
        backend,
        scratch,
    );
    Ok(RoutingOutput {
        v: Tensor::from_vec(scratch.v.clone(), &[nb, nh, ch])?,
        coefficients: Tensor::from_vec(scratch.r.clone(), &[nb, nl, nh])?,
        iterations,
    })
}

/// The monomorphized EM inner loop: routes `uh` (`[B, L, H, C_H]`
/// row-major, pre-validated dims) leaving `v` (activation-scaled means) and
/// the responsibilities `r` in `scratch`.
pub(crate) fn em_routing_core<B: MathBackend + ?Sized>(
    uh: &[f32],
    (nb, nl, nh, ch): (usize, usize, usize, usize),
    iterations: usize,
    backend: &B,
    scratch: &mut RoutingScratch,
) {
    debug_assert_eq!(uh.len(), nb * nl * nh * ch);
    RoutingScratch::fill_buf(&mut scratch.r, nb * nl * nh, 1.0 / nh as f32);
    RoutingScratch::fill_buf(&mut scratch.mu, nb * nh * ch, 0.0);
    RoutingScratch::fill_buf(&mut scratch.sigma_sq, nb * nh * ch, 1.0);
    RoutingScratch::fill_buf(&mut scratch.act, nb * nh, 0.5);
    RoutingScratch::fill_buf(&mut scratch.log_p, nh, 0.0);
    RoutingScratch::fill_buf(&mut scratch.r_sum, nh, 0.0);
    RoutingScratch::fill_buf(&mut scratch.v, nb * nh * ch, 0.0);
    let (r, mu, sigma_sq, act, log_p, r_sum, v) = (
        &mut scratch.r,
        &mut scratch.mu,
        &mut scratch.sigma_sq,
        &mut scratch.act,
        &mut scratch.log_p,
        &mut scratch.r_sum,
        &mut scratch.v,
    );

    for _ in 0..iterations {
        m_step(uh, r, mu, sigma_sq, act, r_sum, nb, nl, nh, ch, backend);
        e_step(uh, r, mu, sigma_sq, act, log_p, nb, nl, nh, ch, backend);
    }
    // One final M-step so the output reflects the last responsibilities.
    m_step(uh, r, mu, sigma_sq, act, r_sum, nb, nl, nh, ch, backend);

    // v_j = a_j * mu_j — activation-scaled mean, one scale per capsule.
    for k in 0..nb {
        for j in 0..nh {
            let a = act[k * nh + j];
            let base = (k * nh + j) * ch;
            backend.scale_add(a, &mu[base..base + ch], 0.0, &mut v[base..base + ch]);
        }
    }
}

/// M-step: refit each H capsule's Gaussian from its weighted votes.
///
/// Restructured around the backend's block kernels: per `(k, i)` pair the
/// responsibility-weighted mean and variance accumulations each stream one
/// contiguous `[H, C_H]` block (`weighted_sum_block` / `sq_diff_axpy_block`
/// — the same Eq 2-shaped GEMM pattern as dynamic routing), then the
/// normalizations are row-wide `div_slice` calls. Per accumulated element
/// the operations run in the same ascending-`i` order as the original
/// scalar nest, so backends using the default (scalar) kernels produce
/// bit-identical results.
#[allow(clippy::too_many_arguments)]
fn m_step<B: MathBackend + ?Sized>(
    uh: &[f32],
    r: &[f32],
    mu: &mut [f32],
    sigma_sq: &mut [f32],
    act: &mut [f32],
    r_sum: &mut [f32],
    nb: usize,
    nl: usize,
    nh: usize,
    ch: usize,
    backend: &B,
) {
    let block = nh * ch;
    for k in 0..nb {
        let mu_block = &mut mu[k * block..(k + 1) * block];
        let sig_block = &mut sigma_sq[k * block..(k + 1) * block];
        let r_sum_row = &mut r_sum[..nh];

        // Σ_i r_ij per high-level capsule (one vector add per L row).
        r_sum_row.fill(0.0);
        for i in 0..nl {
            backend.axpy(1.0, &r[(k * nl + i) * nh..(k * nl + i + 1) * nh], r_sum_row);
        }

        // Mean: accumulate r-weighted votes, then normalize row-wise.
        mu_block.fill(0.0);
        for i in 0..nl {
            let r_row = &r[(k * nl + i) * nh..(k * nl + i + 1) * nh];
            let u_block = &uh[(k * nl + i) * block..(k * nl + i + 1) * block];
            backend.weighted_sum_block(r_row, u_block, mu_block, ch);
        }
        for j in 0..nh {
            let denom = r_sum_row[j].max(1e-12);
            backend.div_slice(&mut mu_block[j * ch..(j + 1) * ch], denom);
        }

        // Variance: accumulate r-weighted squared deviations from the mean,
        // normalize, floor — and fold the per-capsule cost on the way.
        sig_block.fill(0.0);
        for i in 0..nl {
            let r_row = &r[(k * nl + i) * nh..(k * nl + i + 1) * nh];
            let u_block = &uh[(k * nl + i) * block..(k * nl + i + 1) * block];
            backend.sq_diff_axpy_block(r_row, u_block, mu_block, sig_block, ch);
        }
        for j in 0..nh {
            let denom = r_sum_row[j].max(1e-12);
            let sig_row = &mut sig_block[j * ch..(j + 1) * ch];
            backend.div_slice(sig_row, denom);
            let mut cost = 0.0f32;
            for var in sig_row.iter_mut() {
                // cost_d ≈ (log σ_d) · r_sum; log via ln(x) = -ln(1/x) is
                // not available on the PE, so the model uses 0.5·(var-1) as
                // a smooth stand-in with the same minimum.
                *var = var.max(SIGMA_FLOOR);
                cost += 0.5 * (*var - 1.0);
            }
            // Activation: logistic of (benefit − cost), scaled by how much
            // mass routed here relative to uniform.
            let mass = backend.div(r_sum_row[j], nl as f32 / nh as f32);
            let logit = LAMBDA * (BETA_A - cost) * mass - BETA_A;
            act[k * nh + j] = logistic(logit, backend);
        }
    }
}

/// E-step: recompute responsibilities from Gaussian likelihoods.
///
/// `log_p` is caller-owned scratch of length `nh` (so the step allocates
/// nothing). Per `(k, i)` pair the quadratic forms stream one contiguous
/// `[H, C_H]` block through the backend's `mahalanobis_block` kernel, the
/// exponentials are one fused `exp_slice`, and the normalization one
/// `div_slice` — per element the same operation sequence as the original
/// scalar nest, so default-kernel backends are bit-identical.
#[allow(clippy::too_many_arguments)]
fn e_step<B: MathBackend + ?Sized>(
    uh: &[f32],
    r: &mut [f32],
    mu: &[f32],
    sigma_sq: &[f32],
    act: &[f32],
    log_p: &mut [f32],
    nb: usize,
    nl: usize,
    nh: usize,
    ch: usize,
    backend: &B,
) {
    let block = nh * ch;
    for k in 0..nb {
        let mu_block = &mu[k * block..(k + 1) * block];
        let sig_block = &sigma_sq[k * block..(k + 1) * block];
        let act_row = &act[k * nh..(k + 1) * nh];
        for i in 0..nl {
            // Unnormalized log posterior per j: one row-wise quadratic-form
            // block, then shift by the max and exponentiate in one pass.
            let u_block = &uh[(k * nl + i) * block..(k * nl + i + 1) * block];
            backend.mahalanobis_block(u_block, mu_block, sig_block, log_p, ch);
            // log(a_j) folded in multiplicatively after exp; keep the
            // quadratic in log space for stability.
            for lp in log_p.iter_mut() {
                *lp *= -0.5;
            }
            let mx = log_p.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            for lp in log_p.iter_mut() {
                *lp -= mx;
            }
            backend.exp_slice(log_p);
            let row = &mut r[(k * nl + i) * nh..(k * nl + i + 1) * nh];
            let mut denom = 0.0f32;
            for ((x, &a), &e) in row.iter_mut().zip(act_row).zip(log_p.iter()) {
                let p = a * e;
                *x = p;
                denom += p;
            }
            backend.div_slice(row, denom.max(1e-12));
        }
    }
}

#[inline]
fn logistic<B: MathBackend + ?Sized>(x: f32, backend: &B) -> f32 {
    backend.div(1.0, 1.0 + backend.exp(-x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ApproxMath, ExactMath};

    fn votes(nb: usize, nl: usize, nh: usize, ch: usize, seed: u64) -> Tensor {
        Tensor::uniform(&[nb, nl, nh, ch], -0.5, 0.5, seed)
    }

    #[test]
    fn shapes_and_finiteness() {
        let u = votes(2, 8, 3, 4, 1);
        let out = em_routing(&u, 3, &ExactMath).unwrap();
        assert_eq!(out.v.shape().dims(), &[2, 3, 4]);
        assert_eq!(out.coefficients.shape().dims(), &[2, 8, 3]);
        assert!(out.v.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn responsibilities_are_distributions() {
        let u = votes(1, 6, 4, 3, 2);
        let out = em_routing(&u, 3, &ExactMath).unwrap();
        for row in out.coefficients.as_slice().chunks(4) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
            assert!(row.iter().all(|&x| (0.0..=1.0 + 1e-5).contains(&x)));
        }
    }

    #[test]
    fn tight_cluster_wins_assignment() {
        // All L capsules vote identically for H capsule 0 and noisily for
        // H capsule 1 — responsibilities should favour capsule 0.
        let (nb, nl, nh, ch) = (1, 10, 2, 4);
        let mut data = Tensor::uniform(&[nb, nl, nh, ch], -1.0, 1.0, 3).into_vec();
        for i in 0..nl {
            for d in 0..ch {
                data[(i * nh) * ch + d] = 0.7;
            }
        }
        let u = Tensor::from_vec(data, &[nb, nl, nh, ch]).unwrap();
        let out = em_routing(&u, 3, &ExactMath).unwrap();
        let r = out.coefficients.as_slice();
        let mean_r0: f32 = (0..nl).map(|i| r[i * nh]).sum::<f32>() / nl as f32;
        assert!(mean_r0 > 0.5, "tight cluster got mean R {mean_r0}");
    }

    #[test]
    fn deterministic() {
        let u = votes(2, 5, 3, 4, 4);
        let a = em_routing(&u, 3, &ExactMath).unwrap();
        let b = em_routing(&u, 3, &ExactMath).unwrap();
        assert_eq!(a.v, b.v);
    }

    #[test]
    fn approx_backend_stays_close() {
        let u = votes(1, 12, 4, 6, 5);
        let exact = em_routing(&u, 3, &ExactMath).unwrap();
        let approx = em_routing(&u, 3, &ApproxMath::with_recovery()).unwrap();
        for (a, e) in approx.v.as_slice().iter().zip(exact.v.as_slice()) {
            assert!((a - e).abs() < 0.08, "approx {a} vs exact {e}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(em_routing(&Tensor::zeros(&[2, 3, 4]), 3, &ExactMath).is_err());
        let u = votes(1, 2, 2, 2, 6);
        assert!(em_routing(&u, 0, &ExactMath).is_err());
    }
}
