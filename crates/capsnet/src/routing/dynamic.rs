//! Dynamic routing — Algorithm 1 of the paper, faithfully:
//!
//! ```text
//! û_{j|i}^k = u_i^k · W_ij                         (Eq 1, done by CapsLayer)
//! b_ij ← 0
//! for each routing iteration:
//!     c_ij   = softmax_j(b_ij)                      (Eq 5)
//!     s_j^k  = Σ_i û_{j|i}^k · c_ij                 (Eq 2)
//!     v_j^k  = squash(s_j^k)                        (Eq 3)
//!     b_ij   = Σ_k v_j^k · û_{j|i}^k + b_ij         (Eq 4)
//! ```
//!
//! With `batch_shared = true` the coefficients couple the whole batch
//! (the paper cites [55]: batching avoids local optima of the routing
//! coefficients); with `false` each sample routes independently (the
//! original Sabour et al. formulation).

use pim_tensor::Tensor;

use crate::backend::MathBackend;
use crate::error::CapsNetError;
use crate::routing::{validate_u_hat, RoutingOutput, RoutingScratch};
use crate::squash::squash_into;

/// Runs dynamic routing over prediction vectors `û` of shape
/// `[B, L, H, C_H]`.
///
/// Returns the high-level capsules `[B, H, C_H]` and the final routing
/// coefficients (`[L, H]` if `batch_shared`, else `[B, L, H]`).
///
/// Generic over the backend: calling with a concrete type (`&ExactMath`,
/// `&ApproxMath`) monomorphizes the whole RP with the special functions
/// inlined; calling with `&dyn MathBackend` still works and produces
/// bit-identical results through virtual dispatch.
///
/// Allocates its scratch internally; steady-state callers should hold a
/// [`RoutingScratch`] and use [`dynamic_routing_with`].
///
/// # Errors
///
/// Returns [`CapsNetError::InputMismatch`] if `u_hat` is not rank 4, or
/// [`CapsNetError::InvalidSpec`] for zero iterations.
pub fn dynamic_routing<B: MathBackend + ?Sized>(
    u_hat: &Tensor,
    iterations: usize,
    batch_shared: bool,
    backend: &B,
) -> Result<RoutingOutput, CapsNetError> {
    let mut scratch = RoutingScratch::new();
    dynamic_routing_with(u_hat, iterations, batch_shared, backend, &mut scratch)
}

/// [`dynamic_routing`] with caller-owned scratch: a warm scratch makes the
/// routing itself allocation-free (only the returned output tensors are
/// materialized fresh).
///
/// # Errors
///
/// Same conditions as [`dynamic_routing`].
pub fn dynamic_routing_with<B: MathBackend + ?Sized>(
    u_hat: &Tensor,
    iterations: usize,
    batch_shared: bool,
    backend: &B,
    scratch: &mut RoutingScratch,
) -> Result<RoutingOutput, CapsNetError> {
    let (nb, nl, nh, ch) = validate_u_hat(u_hat, iterations)?;
    dynamic_routing_core(
        u_hat.as_slice(),
        (nb, nl, nh, ch),
        iterations,
        batch_shared,
        backend,
        scratch,
    );
    let coeff_dims: Vec<usize> = if batch_shared {
        vec![nl, nh]
    } else {
        vec![nb, nl, nh]
    };
    Ok(RoutingOutput {
        v: Tensor::from_vec(scratch.v.clone(), &[nb, nh, ch])?,
        coefficients: Tensor::from_vec(scratch.c.clone(), &coeff_dims)?,
        iterations,
    })
}

/// The monomorphized RP inner loop: routes `uh` (`[B, L, H, C_H]`
/// row-major, pre-validated dims) leaving `v` and the coefficients in
/// `scratch`.
///
/// This is the paper's Algorithm 1 exactly, written against the backend's
/// slice/block kernels: the softmax over coupling logits is one fused row
/// kernel per `i`, the Eq 2 weighted sum and Eq 4 agreement each stream one
/// contiguous `[H, C_H]` block per `(k, i)` pair. No virtual calls with a
/// concrete backend, no heap allocation once `scratch` is warm, and every
/// dot product / axpy runs over contiguous memory.
pub(crate) fn dynamic_routing_core<B: MathBackend + ?Sized>(
    uh: &[f32],
    (nb, nl, nh, ch): (usize, usize, usize, usize),
    iterations: usize,
    batch_shared: bool,
    backend: &B,
    scratch: &mut RoutingScratch,
) {
    debug_assert_eq!(uh.len(), nb * nl * nh * ch);
    let coeff_rows = if batch_shared { nl } else { nb * nl };
    RoutingScratch::fill_buf(&mut scratch.b_logits, coeff_rows * nh, 0.0);
    RoutingScratch::fill_buf(&mut scratch.c, coeff_rows * nh, 0.0);
    RoutingScratch::fill_buf(&mut scratch.s, nb * nh * ch, 0.0);
    RoutingScratch::fill_buf(&mut scratch.v, nb * nh * ch, 0.0);
    let (b_logits, c, s, v) = (
        &mut scratch.b_logits,
        &mut scratch.c,
        &mut scratch.s,
        &mut scratch.v,
    );
    let block = nh * ch;

    // Pass fusion: Algorithm 1 runs softmax → Eq 2 → squash → Eq 4 per
    // iteration, which streams û twice. But the Eq 4 update of coupling row
    // `i` only feeds that same row's softmax in the *next* iteration, and
    // the final iteration's Eq 4 output is discarded (v and c are already
    // final). So iteration t ≥ 2 performs {Eq 4 with v(t−1) → softmax →
    // Eq 2} per row while each û block is hot in cache — one û pass per
    // iteration instead of two, and the dead final Eq 4 pass vanishes.
    // Per-element accumulation order is unchanged (b row i still sums k
    // ascending, s still sums i ascending), so results are bit-identical
    // to the unfused loop for any backend.
    for iter in 0..iterations {
        s.fill(0.0);
        if batch_shared {
            let u_stride = nl * block;
            for i in 0..nl {
                // Eq 4 (previous iteration): b_ij += Σ_k <v_j^k, û_{j|i}^k>
                // — one strided sweep over the batch. (`min` keeps the
                // slice in-bounds for empty batches, where the sweeps are
                // no-ops but the softmax still emits uniform coefficients.)
                let u_i = &uh[(i * block).min(uh.len())..];
                if iter > 0 {
                    let b_row = &mut b_logits[i * nh..(i + 1) * nh];
                    backend.agreement_blocks_strided(u_i, u_stride, v, nb, b_row, ch);
                }
                // Eq 5: c_ij = softmax over the H dimension of b_ij.
                let b_row = &b_logits[i * nh..(i + 1) * nh];
                let c_row = &mut c[i * nh..(i + 1) * nh];
                backend.softmax_row(b_row, c_row);
                // Eq 2: s_j^k += û·c for this L capsule, every sample.
                backend.weighted_sum_blocks_strided(c_row, u_i, u_stride, s, nb, ch);
            }
        } else {
            // Per-sample coefficients: row (k, i) is self-contained, so the
            // whole Eq 4 → softmax → Eq 2 chain fuses per û block, streamed
            // in storage order.
            for k in 0..nb {
                for i in 0..nl {
                    let u_block = &uh[(k * nl + i) * block..(k * nl + i + 1) * block];
                    let row = (k * nl + i) * nh;
                    if iter > 0 {
                        let v_block = &v[k * block..(k + 1) * block];
                        backend.agreement_block(u_block, v_block, &mut b_logits[row..row + nh], ch);
                    }
                    let c_row = &mut c[row..row + nh];
                    backend.softmax_row(&b_logits[row..row + nh], c_row);
                    let s_block = &mut s[k * block..(k + 1) * block];
                    backend.weighted_sum_block(c_row, u_block, s_block, ch);
                }
            }
        }

        // Eq 3: v = squash(s), capsule by capsule (dot for the norm
        // square, one scale to write v — no intermediate copy).
        for (s_cap, v_cap) in s.chunks(ch).zip(v.chunks_mut(ch)) {
            squash_into(s_cap, v_cap, backend);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ApproxMath, ExactMath};

    fn uhat(nb: usize, nl: usize, nh: usize, ch: usize, seed: u64) -> Tensor {
        Tensor::uniform(&[nb, nl, nh, ch], -0.5, 0.5, seed)
    }

    #[test]
    fn output_shapes() {
        let u = uhat(2, 6, 3, 4, 1);
        let out = dynamic_routing(&u, 3, true, &ExactMath).unwrap();
        assert_eq!(out.v.shape().dims(), &[2, 3, 4]);
        assert_eq!(out.coefficients.shape().dims(), &[6, 3]);
        let per_sample = dynamic_routing(&u, 3, false, &ExactMath).unwrap();
        assert_eq!(per_sample.coefficients.shape().dims(), &[2, 6, 3]);
    }

    #[test]
    fn coefficients_are_distributions_over_h() {
        let u = uhat(2, 6, 3, 4, 2);
        let out = dynamic_routing(&u, 3, true, &ExactMath).unwrap();
        for row in out.coefficients.as_slice().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row sum {sum}");
            assert!(row.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn first_iteration_coefficients_are_uniform_before_update() {
        // With a single iteration, c comes from b=0, i.e. uniform 1/H.
        let u = uhat(1, 4, 5, 3, 3);
        let out = dynamic_routing(&u, 1, true, &ExactMath).unwrap();
        for &cv in out.coefficients.as_slice() {
            assert!((cv - 0.2).abs() < 1e-6);
        }
    }

    #[test]
    fn iterations_sharpen_agreeing_capsules() {
        // Construct û where every L capsule points the same way for H
        // capsule 0 and randomly for the others: routing should raise
        // c[:,0] above uniform.
        let nb = 1;
        let (nl, nh, ch) = (8, 4, 4);
        let mut data = Tensor::uniform(&[nb, nl, nh, ch], -0.5, 0.5, 4).into_vec();
        for i in 0..nl {
            for d in 0..ch {
                data[(i * nh) * ch + d] = 1.0; // j = 0 agreement
            }
        }
        let u = Tensor::from_vec(data, &[nb, nl, nh, ch]).unwrap();
        let out = dynamic_routing(&u, 3, true, &ExactMath).unwrap();
        let c = out.coefficients.as_slice();
        for i in 0..nl {
            assert!(
                c[i * nh] > 1.0 / nh as f32 + 0.05,
                "capsule {i} coefficient {} did not sharpen",
                c[i * nh]
            );
        }
    }

    #[test]
    fn v_norms_below_one() {
        let u = uhat(3, 10, 4, 8, 5);
        let out = dynamic_routing(&u, 3, true, &ExactMath).unwrap();
        for cap in out.v.as_slice().chunks(8) {
            let n: f32 = cap.iter().map(|&x| x * x).sum::<f32>().sqrt();
            assert!(n < 1.0);
        }
    }

    #[test]
    fn deterministic() {
        let u = uhat(2, 6, 3, 4, 6);
        let a = dynamic_routing(&u, 3, true, &ExactMath).unwrap();
        let b = dynamic_routing(&u, 3, true, &ExactMath).unwrap();
        assert_eq!(a.v, b.v);
        assert_eq!(a.coefficients, b.coefficients);
    }

    #[test]
    fn approx_backend_close_to_exact() {
        let u = uhat(2, 12, 5, 8, 7);
        let exact = dynamic_routing(&u, 3, true, &ExactMath).unwrap();
        let approx = dynamic_routing(&u, 3, true, &ApproxMath::with_recovery()).unwrap();
        let mut max_diff = 0.0f32;
        for (a, e) in approx.v.as_slice().iter().zip(exact.v.as_slice()) {
            max_diff = max_diff.max((a - e).abs());
        }
        assert!(
            max_diff < 0.05,
            "approx routing diverged from exact: {max_diff}"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let u3 = Tensor::zeros(&[2, 3, 4]);
        assert!(dynamic_routing(&u3, 3, true, &ExactMath).is_err());
        let u = uhat(1, 2, 2, 2, 8);
        assert!(dynamic_routing(&u, 0, true, &ExactMath).is_err());
    }

    #[test]
    fn batch_shared_differs_from_per_sample() {
        // With >1 samples the two coefficient schemes route differently.
        let u = uhat(4, 6, 3, 4, 9);
        let shared = dynamic_routing(&u, 3, true, &ExactMath).unwrap();
        let per = dynamic_routing(&u, 3, false, &ExactMath).unwrap();
        let diff: f32 = shared
            .v
            .as_slice()
            .iter()
            .zip(per.v.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "expected differing outputs, diff {diff}");
    }
}
