//! Quantized artifact roundtrips: quantize → save → (owned | mmap) load →
//! forward, in both layouts and both quantized dtypes. Also pins the
//! version-emission contract (unquantized artifacts stay byte-identical
//! v1) and the refuse-to-requantize writer guard.

use capsnet::{CapsNet, CapsNetSpec, ExactMath};
use pim_store::format::{Header, FORMAT_VERSION, FORMAT_VERSION_F32};
use pim_store::{Layout, MappedModel, ModelWriter, QuantSpec, StoreError, StoredModel};
use pim_tensor::{QuantDType, Tensor};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pim_store_q_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_net(seed: u64) -> CapsNet {
    CapsNet::seeded(&CapsNetSpec::tiny_for_tests(), seed).unwrap()
}

fn images(n: usize, seed: u64) -> Tensor {
    Tensor::uniform(&[n, 1, 12, 12], 0.0, 1.0, seed)
}

/// Max |a - b| over the class norms of a forward pass on shared images.
fn norm_divergence(a: &CapsNet, b: &CapsNet) -> f32 {
    let imgs = images(4, 99);
    let oa = a.forward(&imgs, &ExactMath).unwrap();
    let ob = b.forward(&imgs, &ExactMath).unwrap();
    oa.class_norms_sq
        .as_slice()
        .iter()
        .zip(ob.class_norms_sq.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

fn assert_forward_bitwise(a: &CapsNet, b: &CapsNet) {
    let imgs = images(3, 17);
    let oa = a.forward(&imgs, &ExactMath).unwrap();
    let ob = b.forward(&imgs, &ExactMath).unwrap();
    for (x, y) in oa
        .class_capsules
        .as_slice()
        .iter()
        .zip(ob.class_capsules.as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn unquantized_artifacts_stay_v1_and_byte_identical() {
    let dir = tmp_dir("v1");
    let net = tiny_net(3);
    let plain = dir.join("plain.pimcaps");
    let empty_spec = dir.join("empty_spec.pimcaps");
    ModelWriter::new().save(&net, &plain).unwrap();
    ModelWriter::new()
        .with_quant(QuantSpec::new())
        .save(&net, &empty_spec)
        .unwrap();

    let a = std::fs::read(&plain).unwrap();
    let b = std::fs::read(&empty_spec).unwrap();
    assert_eq!(a, b, "an empty QuantSpec must not perturb the artifact");
    assert_eq!(Header::decode(&a).unwrap().version, FORMAT_VERSION_F32);
    std::fs::remove_dir_all(&dir).unwrap();
}

fn packed_roundtrip(dtype: QuantDType, tag: &str, max_div: f32) {
    let dir = tmp_dir(tag);
    let path = dir.join("quant.pimcaps");
    let net = tiny_net(7);
    let report = ModelWriter::new()
        .with_quant(QuantSpec::new().with_weight("caps.weight", dtype))
        .save(&net, &path)
        .unwrap();
    assert_eq!(report.bytes, std::fs::metadata(&path).unwrap().len());

    // Quantized artifacts are format v2.
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(Header::decode(&bytes).unwrap().version, FORMAT_VERSION);

    // The mapped reader hands out the quantized section zero-copy.
    let mapped = MappedModel::open(&path).unwrap();
    let view = mapped.weight_view("caps.weight").unwrap();
    let q = view.as_quant().expect("caps.weight must stay quantized");
    assert_eq!(q.dtype(), dtype);
    assert!(
        q.is_shared(),
        "packed quantized section must be a zero-copy view"
    );
    // ... and it matches an in-memory quantization of the same weights.
    let original = net
        .named_weights()
        .into_iter()
        .find(|(n, _)| n == "caps.weight")
        .unwrap()
        .1
        .expect_f32()
        .clone();
    let dims = original.shape().dims().to_vec();
    let reference =
        pim_tensor::QuantTensor::quantize(dtype, original.as_slice(), &dims, &[dims[0]]).unwrap();
    assert_eq!(q.bytes(), reference.bytes());
    for (x, y) in q
        .dequantize()
        .as_slice()
        .iter()
        .zip(reference.dequantize().as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }

    // Both readers rebuild the same network (bit-identical forward), and
    // the quantized model stays close to the f32 source.
    let from_map = mapped.capsnet().unwrap();
    let from_owned = StoredModel::open(&path).unwrap().into_capsnet().unwrap();
    assert_forward_bitwise(&from_map, &from_owned);
    let div = norm_divergence(&net, &from_map);
    assert!(
        div <= max_div,
        "{tag}: quantized divergence {div} exceeds {max_div}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn packed_int8_roundtrip_both_readers() {
    packed_roundtrip(QuantDType::I8, "packed_i8", 0.05);
}

#[test]
fn packed_f16_roundtrip_both_readers() {
    packed_roundtrip(QuantDType::F16, "packed_f16", 1e-2);
}

#[test]
fn vault_aligned_quantized_roundtrip_and_partitions() {
    let dir = tmp_dir("vault_q");
    let path = dir.join("vault_q.pimcaps");
    let net = tiny_net(11);
    ModelWriter::vault_aligned()
        .with_quant(QuantSpec::weights(QuantDType::I8))
        .save(&net, &path)
        .unwrap();

    let mapped = MappedModel::open(&path).unwrap();
    assert!(matches!(mapped.layout(), Layout::VaultAligned { .. }));

    // caps.weight is sharded: each vault share dequantizes with its own
    // affine params, and the shares tile the full-tensor read exactly.
    let full = mapped.tensor("caps.weight").unwrap();
    let parts = mapped.vault_partitions("caps.weight").unwrap();
    let mut reassembled: Vec<f32> = Vec::new();
    for p in &parts {
        assert_eq!(p.tensor.shape().dims()[0], p.rows);
        reassembled.extend_from_slice(p.tensor.as_slice());
    }
    assert_eq!(reassembled.len(), full.len());
    for (x, y) in reassembled.iter().zip(full.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }

    // The rebuilt network forwards, with bounded divergence from f32.
    let loaded = mapped.capsnet().unwrap();
    let div = norm_divergence(&net, &loaded);
    assert!(div <= 0.05, "vault-aligned int8 divergence {div}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resaving_a_quantized_network_is_a_typed_error() {
    let dir = tmp_dir("resave");
    let path = dir.join("quant.pimcaps");
    let net = tiny_net(13);
    ModelWriter::new()
        .with_quant(QuantSpec::new().with_weight("caps.weight", QuantDType::I8))
        .save(&net, &path)
        .unwrap();
    let loaded = MappedModel::open(&path).unwrap().capsnet().unwrap();
    let err = ModelWriter::new()
        .save(&loaded, &dir.join("resave.pimcaps"))
        .unwrap_err();
    match err {
        StoreError::Corrupt(msg) => {
            assert!(msg.contains("re-quantize"), "unexpected message: {msg}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
