//! Forged-section-table regression tests: `decode_table` must reject a
//! table whose dims or partition element counts are crafted near
//! `u64::MAX` with a typed `StoreError`, never an arithmetic-overflow
//! abort (debug builds panic on overflow, so the dims product and
//! partition sum are reduced with checked arithmetic).

use pim_store::format::{
    decode_table, encode_table, Partition, SectionDtype, TensorRecord, FORMAT_VERSION,
};

#[test]
fn forged_overflow_dims_no_panic() {
    let records = vec![TensorRecord {
        name: "w".into(),
        dims: vec![usize::MAX, 4],
        dtype: SectionDtype::F32,
        partitions: vec![Partition {
            offset: 64,
            elems: 1,
        }],
        quant: vec![],
        checksum: 0,
    }];
    let bytes = encode_table(&records);
    let r = decode_table(&bytes, 1, FORMAT_VERSION);
    assert!(r.is_err());
}

#[test]
fn forged_rank0_vault_partitions_no_panic() {
    // covered via reader API in main test
}
