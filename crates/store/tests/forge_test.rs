// drop into crates/store/tests/ temporarily
use pim_store::format::{encode_table, decode_table, TensorRecord, Partition};

#[test]
fn forged_overflow_dims_no_panic() {
    let records = vec![TensorRecord {
        name: "w".into(),
        dims: vec![usize::MAX, 4],
        partitions: vec![Partition { offset: 64, elems: 1 }],
        checksum: 0,
    }];
    let bytes = encode_table(&records);
    let r = decode_table(&bytes, 1);
    assert!(r.is_err());
}

#[test]
fn forged_rank0_vault_partitions_no_panic() {
    // covered via reader API in main test
}
