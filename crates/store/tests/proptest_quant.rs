//! Property tests for the quantized artifact path: quantize → save →
//! mmap → forward on randomized weights — including NaN, ±∞, negative
//! zero and subnormals. Quantization is deliberately lossy, so the
//! invariants are determinism ones: the stored payload matches an
//! in-memory quantization of the same weights bit-for-bit, the scalar
//! and SIMD dequantizing kernels agree bitwise, both readers rebuild
//! bit-identical networks, and for ordinary finite weights the
//! end-to-end divergence from f32 stays inside the declared bound.

use std::collections::BTreeMap;

use capsnet::{CapsNet, CapsNetSpec, ExactMath};
use pim_store::{MappedModel, ModelWriter, QuantSpec, StoredModel};
use pim_tensor::{simd, QuantDType, Tensor};
use proptest::prelude::*;

/// Declared end-to-end bound: max |Δ| on squared class norms (which live
/// in [0, 1]) for a fully-quantized tiny net vs its f32 source.
const I8_NORM_DIVERGENCE: f32 = 0.25;
const F16_NORM_DIVERGENCE: f32 = 0.02;

fn special_f32() -> impl Strategy<Value = f32> {
    (0usize..7, -10.0f32..10.0f32).prop_map(|(kind, x)| match kind {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => -0.0f32,
        4 => f32::MIN_POSITIVE / 2.0, // subnormal
        5 => f32::MAX,
        _ => x,
    })
}

fn poked_net(seed: u64, pokes: &[(usize, f32)]) -> CapsNet {
    let base = CapsNet::seeded(&CapsNetSpec::tiny_for_tests(), seed).unwrap();
    let mut weights: Vec<(String, Tensor)> = base
        .named_weights()
        .into_iter()
        .map(|(n, t)| (n, t.expect_f32().clone()))
        .collect();
    let total: usize = weights.iter().map(|(_, t)| t.len()).sum();
    for &(pos, value) in pokes {
        let mut idx = pos % total;
        for (_, t) in &mut weights {
            if idx < t.len() {
                t.as_mut_slice()[idx] = value;
                break;
            }
            idx -= t.len();
        }
    }
    let mut source: BTreeMap<String, Tensor> = weights.into_iter().collect();
    CapsNet::from_views(base.spec(), &mut source).unwrap()
}

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pim_store_qprop_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dtype_of(pick: usize) -> QuantDType {
    if pick == 0 {
        QuantDType::I8
    } else {
        QuantDType::F16
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Special values may not survive quantization (NaN has no int8
    /// encoding; ±∞ saturates) — but the lossy mapping must be
    /// deterministic and identical on disk and in memory, the kernels
    /// must agree bitwise, and nothing may panic.
    #[test]
    fn quantize_save_mmap_forward_is_deterministic(
        seed in 0u64..1000,
        pokes in proptest::collection::vec((0usize..100_000, special_f32()), 0..12),
        dtype_pick in 0usize..2,
        vault_aligned in (0usize..2).prop_map(|b| b == 1),
    ) {
        let dtype = dtype_of(dtype_pick);
        let net = poked_net(seed, &pokes);
        let dir = tmp_dir();
        let path = dir.join(format!("qprop_{seed}_{dtype_pick}_{}.pimcaps", pokes.len()));
        let writer = if vault_aligned {
            ModelWriter::vault_aligned()
        } else {
            ModelWriter::new()
        };
        writer
            .with_quant(QuantSpec::weights(dtype))
            .save(&net, &path)
            .unwrap();

        let mapped = MappedModel::open(&path).unwrap();

        // The stored quantized section equals an in-memory quantization
        // of the same weights, byte for byte — per partition, with each
        // partition's own affine params.
        let view = mapped.weight_view("caps.weight").unwrap();
        let q = view.as_quant().expect("caps.weight must be quantized");
        let original = net
            .named_weights()
            .into_iter()
            .find(|(n, _)| n == "caps.weight")
            .unwrap()
            .1
            .expect_f32()
            .clone();
        let dims = original.shape().dims().to_vec();
        let rows: Vec<usize> = {
            let row_stride: usize = dims[1..].iter().product();
            q.blocks().iter().map(|b| b.elems / row_stride).collect()
        };
        let reference =
            pim_tensor::QuantTensor::quantize(dtype, original.as_slice(), &dims, &rows).unwrap();
        prop_assert_eq!(q.bytes(), reference.bytes());
        for (a, b) in q.blocks().iter().zip(reference.blocks()) {
            prop_assert_eq!(a.scale.to_bits(), b.scale.to_bits());
            prop_assert_eq!(a.zero_point, b.zero_point);
        }

        // Scalar and dispatched SIMD dequantizing kernels agree bitwise
        // on the real payload bytes (NaN encodings included for f16).
        let n = 64.min(q.len());
        let alpha = 1.25f32;
        let y0: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let mut y_simd = y0.clone();
        let mut y_scalar = y0;
        let block = q.block_at(0);
        match dtype {
            QuantDType::I8 => {
                simd::axpy_i8(alpha, &q.bytes()[..n], block.scale, block.zero_point, &mut y_simd);
                simd::scalar::axpy_i8(
                    alpha,
                    &q.bytes()[..n],
                    block.scale,
                    block.zero_point,
                    &mut y_scalar,
                );
            }
            QuantDType::F16 => {
                simd::axpy_f16(alpha, &q.bytes()[..n * 2], &mut y_simd);
                simd::scalar::axpy_f16(alpha, &q.bytes()[..n * 2], &mut y_scalar);
            }
        }
        for (a, b) in y_simd.iter().zip(&y_scalar) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "SIMD and scalar dequant disagree");
        }

        // Both readers rebuild the same network: forward is bit-identical
        // between them (even if outputs are NaN/∞), and never panics.
        let from_map = mapped.capsnet().unwrap();
        let from_owned = StoredModel::open(&path).unwrap().into_capsnet().unwrap();
        let images = Tensor::uniform(&[2, 1, 12, 12], 0.0, 1.0, seed ^ 0xF00D);
        let a = from_map.forward(&images, &ExactMath).unwrap();
        let b = from_owned.forward(&images, &ExactMath).unwrap();
        for (x, y) in a
            .class_norms_sq
            .as_slice()
            .iter()
            .zip(b.class_norms_sq.as_slice())
        {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        let _ = std::fs::remove_file(&path);
    }

    /// For ordinary finite weights the quantized model must stay inside
    /// the declared divergence bound of its f32 source.
    #[test]
    fn finite_weights_stay_inside_declared_divergence(
        seed in 0u64..1000,
        dtype_pick in 0usize..2,
    ) {
        let dtype = dtype_of(dtype_pick);
        let bound = match dtype {
            QuantDType::I8 => I8_NORM_DIVERGENCE,
            QuantDType::F16 => F16_NORM_DIVERGENCE,
        };
        let net = CapsNet::seeded(&CapsNetSpec::tiny_for_tests(), seed).unwrap();
        let dir = tmp_dir();
        let path = dir.join(format!("qdiv_{seed}_{dtype_pick}.pimcaps"));
        ModelWriter::vault_aligned()
            .with_quant(QuantSpec::weights(dtype))
            .save(&net, &path)
            .unwrap();
        let loaded = MappedModel::open(&path).unwrap().capsnet().unwrap();

        let images = Tensor::uniform(&[3, 1, 12, 12], 0.0, 1.0, seed ^ 0xBEEF);
        let a = net.forward(&images, &ExactMath).unwrap();
        let b = loaded.forward(&images, &ExactMath).unwrap();
        let div = a
            .class_norms_sq
            .as_slice()
            .iter()
            .zip(b.class_norms_sq.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max);
        prop_assert!(
            div <= bound,
            "{:?} divergence {} exceeds declared bound {}",
            dtype, div, bound
        );

        let _ = std::fs::remove_file(&path);
    }
}
