//! Corruption resistance for quantized (format v2) artifacts: truncation
//! inside the per-partition affine-parameter block, flipped bytes in int8
//! and fp16 payloads, forged dtype tags with *valid* table checksums, and
//! a valid-checksum artifact declaring an unknown future dtype — all
//! typed [`StoreError`]s, never a panic.

use capsnet::{CapsNet, CapsNetSpec};
use pim_store::format::Header;
use pim_store::hash::hash64;
use pim_store::{MappedModel, ModelWriter, QuantSpec, StoreError, StoredModel};
use pim_tensor::QuantDType;

const DTYPE_F32: u8 = 1;
const DTYPE_I8: u8 = 2;
const DTYPE_F16: u8 = 3;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pim_store_qcorrupt_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quant_artifact_bytes(dir: &std::path::Path, dtype: QuantDType) -> (std::path::PathBuf, Vec<u8>) {
    let path = dir.join("model.pimcaps");
    let net = CapsNet::seeded(&CapsNetSpec::tiny_for_tests(), 5).unwrap();
    ModelWriter::vault_aligned()
        .with_quant(QuantSpec::new().with_weight("caps.weight", dtype))
        .save(&net, &path)
        .unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

fn assert_both_loaders_reject(path: &std::path::Path, what: &str) {
    match StoredModel::open(path) {
        Err(_) => {}
        Ok(_) => panic!("StoredModel accepted {what}"),
    }
    match MappedModel::open(path) {
        Err(_) => {}
        Ok(_) => panic!("MappedModel accepted {what}"),
    }
}

/// Byte extents of one record inside the raw table bytes, found by
/// walking the v2 record encoding.
struct RecordSpan {
    /// Offset of the record's dtype byte, relative to the table start.
    dtype_at: usize,
    /// Offset of the first partition's affine scale bytes (int8 records
    /// only), relative to the table start.
    first_params_at: Option<usize>,
}

fn find_record(table: &[u8], want: &str) -> RecordSpan {
    let mut pos = 0usize;
    loop {
        let name_len = u16::from_le_bytes(table[pos..pos + 2].try_into().unwrap()) as usize;
        let name = std::str::from_utf8(&table[pos + 2..pos + 2 + name_len]).unwrap();
        let dtype_at = pos + 2 + name_len;
        let dtype = table[dtype_at];
        let rank = table[dtype_at + 1] as usize;
        let parts_at = dtype_at + 2 + rank * 8;
        let parts = u32::from_le_bytes(table[parts_at..parts_at + 4].try_into().unwrap()) as usize;
        let part_len = 16 + if dtype == DTYPE_I8 { 8 } else { 0 };
        if name == want {
            let first_params_at = (dtype == DTYPE_I8).then_some(parts_at + 4 + 16);
            return RecordSpan {
                dtype_at,
                first_params_at,
            };
        }
        pos = parts_at + 4 + parts * part_len + 8;
        assert!(pos < table.len(), "record {want:?} not found in table");
    }
}

/// Rewrites `bytes` in place: applies `patch` to the table region, then
/// recomputes the trailing table checksum so the forgery is
/// checksum-valid (the hash is public — an attacker can always do this).
fn forge_table(bytes: &mut [u8], patch: impl FnOnce(&mut [u8], &RecordSpan), want: &str) {
    let header = Header::decode(bytes).unwrap();
    let start = header.table_off as usize;
    let end = start + header.table_len as usize;
    let span = find_record(&bytes[start..end - 8], want);
    patch(&mut bytes[start..end - 8], &span);
    let sum = hash64(&bytes[start..end - 8]);
    bytes[end - 8..end].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn truncation_inside_affine_params_is_rejected() {
    let dir = tmp_dir("trunc_params");
    let (path, bytes) = quant_artifact_bytes(&dir, QuantDType::I8);
    let header = Header::decode(&bytes).unwrap();
    let table_start = header.table_off as usize;
    let span = find_record(
        &bytes[table_start..table_start + header.table_len as usize - 8],
        "caps.weight",
    );
    let params = table_start + span.first_params_at.unwrap();
    // Cut mid-scale, mid-zero-point, and right before the params.
    for keep in [params - 1, params + 2, params + 4, params + 6] {
        std::fs::write(&path, &bytes[..keep]).unwrap();
        assert_both_loaders_reject(
            &path,
            &format!("a file cut at {keep}, inside affine params"),
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flipped_bytes_in_quant_payloads_are_rejected() {
    for (dtype, tag) in [(QuantDType::I8, "flip_i8"), (QuantDType::F16, "flip_f16")] {
        let dir = tmp_dir(tag);
        let (path, bytes) = quant_artifact_bytes(&dir, dtype);
        let len = bytes.len();
        // The quantized caps.weight payload dominates the tail of the
        // file; flip a spread of interior bytes and the final one.
        for pos in [len - 1, len - 7, len - 64, len / 2, len * 3 / 4] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            std::fs::write(&path, &corrupt).unwrap();
            assert_both_loaders_reject(&path, &format!("{tag}: a payload flip at {pos}"));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn forged_dtype_tags_with_valid_table_checksum_are_rejected() {
    // f32 → f16 forge: the record layout is identical (no affine params),
    // so the forged table parses — but the section's byte extent and its
    // data checksum no longer line up with the payload on disk.
    let dir = tmp_dir("forge_tag");
    let (path, bytes) = quant_artifact_bytes(&dir, QuantDType::F16);
    let mut forged = bytes.clone();
    forge_table(
        &mut forged,
        |table, span| {
            assert_eq!(table[span.dtype_at], DTYPE_F32);
            table[span.dtype_at] = DTYPE_F16;
        },
        "conv1.weight",
    );
    std::fs::write(&path, &forged).unwrap();
    assert_both_loaders_reject(&path, "an f32 section re-tagged as f16");

    // f16 → f32 forge on the genuinely-quantized section: claims twice
    // the payload bytes that exist at that offset.
    let mut forged = bytes.clone();
    forge_table(
        &mut forged,
        |table, span| {
            assert_eq!(table[span.dtype_at], DTYPE_F16);
            table[span.dtype_at] = DTYPE_F32;
        },
        "caps.weight",
    );
    std::fs::write(&path, &forged).unwrap();
    assert_both_loaders_reject(&path, "an f16 section re-tagged as f32");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_future_dtype_with_valid_checksums_is_typed() {
    // A checksum-valid artifact declaring a dtype this reader has never
    // heard of is a *future format*, not corruption: the loaders must say
    // so with `UnsupportedDtype`, naming the tensor and the code.
    let dir = tmp_dir("future_dtype");
    let (path, mut bytes) = quant_artifact_bytes(&dir, QuantDType::F16);
    forge_table(
        &mut bytes,
        |table, span| {
            table[span.dtype_at] = 77;
        },
        "caps.weight",
    );
    std::fs::write(&path, &bytes).unwrap();
    for result in [
        StoredModel::open(&path).map(|_| ()),
        MappedModel::open(&path).map(|_| ()),
    ] {
        match result {
            Err(StoreError::UnsupportedDtype { name, code }) => {
                assert_eq!(name, "caps.weight");
                assert_eq!(code, 77);
            }
            other => panic!("expected UnsupportedDtype, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
