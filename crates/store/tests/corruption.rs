//! Corruption resistance: truncated files, flipped bytes, bad magic and
//! wrong format versions must all be rejected with typed errors — never a
//! panic, never a silently-wrong model.

use capsnet::{CapsNet, CapsNetSpec};
use pim_store::format::{Header, FORMAT_VERSION, HEADER_LEN};
use pim_store::{MappedModel, ModelWriter, StoreError, StoredModel};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pim_store_corrupt_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn artifact_bytes(dir: &std::path::Path) -> (std::path::PathBuf, Vec<u8>) {
    let path = dir.join("model.pimcaps");
    let net = CapsNet::seeded(&CapsNetSpec::tiny_for_tests(), 5).unwrap();
    ModelWriter::vault_aligned().save(&net, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

/// Both loaders must reject the on-disk bytes at `path`.
fn assert_both_loaders_reject(path: &std::path::Path, what: &str) {
    match StoredModel::open(path) {
        Err(_) => {}
        Ok(_) => panic!("StoredModel accepted {what}"),
    }
    match MappedModel::open(path) {
        Err(_) => {}
        Ok(_) => panic!("MappedModel accepted {what}"),
    }
}

#[test]
fn truncation_at_every_region_is_rejected() {
    let dir = tmp_dir("trunc");
    let (path, bytes) = artifact_bytes(&dir);
    // Cut inside the header, the spec, the table, the data, and one byte
    // short of complete.
    for keep in [
        0,
        10,
        HEADER_LEN - 1,
        HEADER_LEN + 5,
        200,
        bytes.len() / 2,
        bytes.len() - 1,
    ] {
        std::fs::write(&path, &bytes[..keep]).unwrap();
        assert_both_loaders_reject(&path, &format!("a file truncated to {keep} bytes"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_flipped_byte_is_detected() {
    let dir = tmp_dir("flip");
    let (path, bytes) = artifact_bytes(&dir);
    // Flip one byte in each region: header fields, spec, table, and a
    // spread of data positions including the very last data byte. (The
    // alignment padding between sections is the one region checksums do
    // not cover — it carries no information.)
    let mut positions = vec![9, 13, 22, 30, 70, 90, 150, 200];
    let len = bytes.len();
    // Partition data is 64-aligned and dense from ~1 KiB on in this
    // artifact; probe several interior bytes and the final element.
    positions.extend([len / 2, len / 2 + 1, len - 4, len - 64]);
    for &pos in &positions {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x40;
        if corrupt[pos] == bytes[pos] {
            continue;
        }
        std::fs::write(&path, &corrupt).unwrap();
        assert_both_loaders_reject(&path, &format!("a byte flip at offset {pos}"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_magic_is_a_typed_error() {
    let dir = tmp_dir("magic");
    let (path, mut bytes) = artifact_bytes(&dir);
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        StoredModel::open(&path),
        Err(StoreError::BadMagic)
    ));
    assert!(matches!(
        MappedModel::open(&path),
        Err(StoreError::BadMagic)
    ));
    // Arbitrary non-artifact files too.
    std::fs::write(&path, b"not an artifact at all").unwrap();
    assert_both_loaders_reject(&path, "a random file");
    std::fs::write(&path, b"").unwrap();
    assert_both_loaders_reject(&path, "an empty file");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wrong_version_is_a_typed_error() {
    let dir = tmp_dir("version");
    let (path, mut bytes) = artifact_bytes(&dir);
    // Re-encode the header with a future version and a *valid* checksum:
    // the reader must refuse on the version, not on corruption.
    let mut header = Header::decode(&bytes).unwrap();
    header.version = FORMAT_VERSION + 1;
    bytes[..HEADER_LEN].copy_from_slice(&header.encode());
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        StoredModel::open(&path),
        Err(StoreError::UnsupportedVersion { found }) if found == header.version
    ));
    assert!(matches!(
        MappedModel::open(&path),
        Err(StoreError::UnsupportedVersion { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crafted_headers_with_huge_fields_are_typed_errors_not_panics() {
    // A forged header carries a *valid* checksum (the hash is public), so
    // the readers must survive adversarial field values: near-overflow
    // spec lengths and absurd tensor counts must produce typed errors,
    // never arithmetic panics or abort-on-alloc.
    let dir = tmp_dir("crafted");
    let (path, bytes) = artifact_bytes(&dir);
    let base = Header::decode(&bytes).unwrap();

    // spec_len chosen so HEADER_LEN + spec_len (+8) brushes u64::MAX.
    for spec_len in [u64::MAX - 64, u64::MAX - 72, u64::MAX / 2] {
        let mut header = base.clone();
        header.spec_len = spec_len;
        let mut crafted = bytes.clone();
        crafted[..HEADER_LEN].copy_from_slice(&header.encode());
        std::fs::write(&path, &crafted).unwrap();
        assert_both_loaders_reject(&path, &format!("a header with spec_len {spec_len}"));
    }

    // tensor_count = u32::MAX would be a ~380 GB Vec pre-allocation if
    // trusted before validation.
    let mut header = base.clone();
    header.tensor_count = u32::MAX;
    let mut crafted = bytes.clone();
    crafted[..HEADER_LEN].copy_from_slice(&header.encode());
    std::fs::write(&path, &crafted).unwrap();
    assert_both_loaders_reject(&path, "a header with tensor_count u32::MAX");

    // table_off/table_len near the end of the address space.
    let mut header = base;
    header.table_off = u64::MAX - 4;
    header.table_len = 16;
    let mut crafted = bytes.clone();
    crafted[..HEADER_LEN].copy_from_slice(&header.encode());
    std::fs::write(&path, &crafted).unwrap();
    assert_both_loaders_reject(&path, "a header with table_off near u64::MAX");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trailing_garbage_is_rejected() {
    let dir = tmp_dir("trailing");
    let (path, mut bytes) = artifact_bytes(&dir);
    bytes.extend_from_slice(&[0xAB; 64]);
    std::fs::write(&path, &bytes).unwrap();
    assert_both_loaders_reject(&path, "a file with trailing garbage");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_file_is_io() {
    let path = std::path::Path::new("/nonexistent/pim_store_missing.pimcaps");
    assert!(matches!(StoredModel::open(path), Err(StoreError::Io(_))));
    assert!(matches!(MappedModel::open(path), Err(StoreError::Io(_))));
}
