//! Property tests: `save → mmap → forward` is bit-identical to the
//! in-memory model for randomized weights — including NaN, ±∞, negative
//! zero and subnormals, which must survive the roundtrip bit-for-bit.

use std::collections::BTreeMap;

use capsnet::{CapsNet, CapsNetSpec, ExactMath};
use pim_store::{Layout, MappedModel, ModelWriter};
use pim_tensor::Tensor;
use proptest::prelude::*;

/// Special values a weight file must preserve exactly (the vendored
/// proptest has no `prop_oneof`, so pick by index).
fn special_f32() -> impl Strategy<Value = f32> {
    (0usize..7, -10.0f32..10.0f32).prop_map(|(kind, x)| match kind {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => -0.0f32,
        4 => f32::MIN_POSITIVE / 2.0, // subnormal
        5 => f32::MAX,
        _ => x,
    })
}

/// A seeded tiny net with `pokes` special values splattered into its
/// weights (rebuilt through `from_views`, so the pokes are real weights).
fn poked_net(seed: u64, pokes: &[(usize, f32)]) -> CapsNet {
    let base = CapsNet::seeded(&CapsNetSpec::tiny_for_tests(), seed).unwrap();
    let mut weights: Vec<(String, Tensor)> = base
        .named_weights()
        .into_iter()
        .map(|(n, t)| (n, t.expect_f32().clone()))
        .collect();
    let total: usize = weights.iter().map(|(_, t)| t.len()).sum();
    for &(pos, value) in pokes {
        let mut idx = pos % total;
        for (_, t) in &mut weights {
            if idx < t.len() {
                t.as_mut_slice()[idx] = value;
                break;
            }
            idx -= t.len();
        }
    }
    let mut source: BTreeMap<String, Tensor> = weights.into_iter().collect();
    CapsNet::from_views(base.spec(), &mut source).unwrap()
}

fn roundtrip_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pim_store_prop_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn save_mmap_forward_is_bit_identical(
        seed in 0u64..1000,
        pokes in proptest::collection::vec((0usize..100_000, special_f32()), 0..12),
        vault_aligned in (0usize..2).prop_map(|b| b == 1),
    ) {
        let net = poked_net(seed, &pokes);
        let dir = roundtrip_dir();
        let path = dir.join(format!("prop_{seed}_{}.pimcaps", pokes.len()));
        let writer = if vault_aligned {
            ModelWriter::vault_aligned()
        } else {
            ModelWriter::new()
        };
        writer.save(&net, &path).unwrap();

        let mapped = MappedModel::open(&path).unwrap();
        prop_assert_eq!(mapped.layout() != Layout::Packed, vault_aligned);

        // Every weight roundtrips bit-exactly (NaN payloads included).
        for (name, original) in net.named_weights() {
            let loaded = mapped.tensor(&name).unwrap();
            prop_assert_eq!(loaded.shape().dims(), original.dims());
            for (x, y) in loaded.as_slice().iter().zip(original.expect_f32().as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} differs", name);
            }
        }

        // Forward off the mapped weights is bit-identical — even when the
        // outputs are NaN/∞, the bits must match (same math, same data).
        let loaded_net = mapped.capsnet().unwrap();
        let images = Tensor::uniform(&[2, 1, 12, 12], 0.0, 1.0, seed ^ 0xF00D);
        let a = net.forward(&images, &ExactMath).unwrap();
        let b = loaded_net.forward(&images, &ExactMath).unwrap();
        for (x, y) in a
            .class_norms_sq
            .as_slice()
            .iter()
            .zip(b.class_norms_sq.as_slice())
        {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a
            .class_capsules
            .as_slice()
            .iter()
            .zip(b.class_capsules.as_slice())
        {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        let _ = std::fs::remove_file(&path);
    }
}
