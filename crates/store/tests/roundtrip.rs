//! End-to-end artifact roundtrips: save → (owned | mmap) load → forward,
//! bit-identical to the in-memory network, in both layouts.

use capsnet::{CapsNet, CapsNetSpec, ExactMath};
use pim_store::{Layout, MappedModel, ModelWriter, StoredModel};
use pim_tensor::Tensor;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pim_store_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_net(seed: u64) -> CapsNet {
    CapsNet::seeded(&CapsNetSpec::tiny_for_tests(), seed).unwrap()
}

fn images(n: usize, seed: u64) -> Tensor {
    Tensor::uniform(&[n, 1, 12, 12], 0.0, 1.0, seed)
}

/// Bitwise comparison of the full forward output (capsules + norms) and
/// the decoder reconstruction.
fn assert_forward_bitwise(a: &CapsNet, b: &CapsNet) {
    let imgs = images(3, 17);
    let oa = a.forward(&imgs, &ExactMath).unwrap();
    let ob = b.forward(&imgs, &ExactMath).unwrap();
    for (x, y) in oa
        .class_capsules
        .as_slice()
        .iter()
        .zip(ob.class_capsules.as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    for (x, y) in oa
        .class_norms_sq
        .as_slice()
        .iter()
        .zip(ob.class_norms_sq.as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    let ra = a.reconstruct(&oa, &[0, 1, 2]).unwrap();
    let rb = b.reconstruct(&ob, &[0, 1, 2]).unwrap();
    for (x, y) in ra.as_slice().iter().zip(rb.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn packed_roundtrip_owned_and_mapped() {
    let dir = tmp_dir("packed");
    let path = dir.join("tiny.pimcaps");
    let net = tiny_net(42);
    let report = ModelWriter::new().save(&net, &path).unwrap();
    assert_eq!(report.bytes, std::fs::metadata(&path).unwrap().len());
    assert_eq!(report.tensors, net.named_weights().len());
    assert_eq!(
        report.partitions, report.tensors,
        "packed: 1 partition each"
    );

    // Owned load.
    let stored = StoredModel::open(&path).unwrap();
    assert_eq!(stored.spec(), net.spec());
    assert_eq!(stored.layout(), Layout::Packed);
    assert_forward_bitwise(&net, &stored.into_capsnet().unwrap());

    // Zero-copy mapped load.
    let mapped = MappedModel::open(&path).unwrap();
    assert!(mapped.is_mapped(), "unix hosts must really mmap");
    assert_eq!(mapped.spec(), net.spec());
    let loaded = mapped.capsnet().unwrap();
    assert_forward_bitwise(&net, &loaded);

    // Every stored tensor is byte-exact, and packed tensors are shared
    // (zero-copy) views.
    for (name, original) in net.named_weights() {
        let t = mapped.tensor(&name).unwrap();
        assert!(t.is_shared(), "{name} should be zero-copy in packed layout");
        assert_eq!(t.shape().dims(), original.dims());
        for (x, y) in t.as_slice().iter().zip(original.expect_f32().as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{name}");
        }
    }

    // The loaded network must survive the MappedModel being dropped (it
    // holds the mapping via Arc).
    drop(mapped);
    assert_forward_bitwise(&net, &loaded);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn vault_aligned_roundtrip_and_partitions() {
    let dir = tmp_dir("vault");
    let path = dir.join("tiny_vault.pimcaps");
    let net = tiny_net(7);
    let vaults = 16;
    let report = ModelWriter::vault_aligned().save(&net, &path).unwrap();
    // tiny caps.weight is [16, 4, 18]: exactly 16 rows → 16 partitions.
    assert!(report.partitions > report.tensors);

    let mapped = MappedModel::open(&path).unwrap();
    assert_eq!(mapped.layout(), Layout::VaultAligned { vaults });

    // Full-tensor reads still reproduce the exact weights (owned gather
    // when padding broke contiguity), and forward is bit-identical.
    assert_forward_bitwise(&net, &mapped.capsnet().unwrap());

    // The per-vault shares tile the tensor exactly, in order, and each
    // share is a zero-copy view of the mapping.
    let caps_original = net
        .named_weights()
        .into_iter()
        .find(|(n, _)| n == "caps.weight")
        .unwrap()
        .1
        .expect_f32()
        .clone();
    let parts = mapped.vault_partitions("caps.weight").unwrap();
    assert_eq!(parts.len(), vaults);
    let mut reassembled: Vec<f32> = Vec::new();
    for (i, p) in parts.iter().enumerate() {
        assert_eq!(p.vault, i);
        assert!(p.tensor.is_shared(), "vault {i} share must be zero-copy");
        assert_eq!(p.tensor.shape().dims()[0], p.rows);
        assert_eq!(p.tensor.shape().dims()[1..], [4, 18]);
        reassembled.extend_from_slice(p.tensor.as_slice());
    }
    assert_eq!(reassembled.len(), caps_original.len());
    for (x, y) in reassembled.iter().zip(caps_original.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }

    // Shares follow the distributor's even-shares rule.
    let shares: Vec<usize> = parts.iter().map(|p| p.rows).collect();
    assert_eq!(shares, pim_capsnet::distribution::vault_shares(16, vaults));

    // Single-partition tensors (biases) report one share on vault 0.
    let bias_parts = mapped.vault_partitions("conv1.bias").unwrap();
    assert_eq!(bias_parts.len(), 1);
    assert_eq!(bias_parts[0].vault, 0);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn em_and_sharpness_specs_roundtrip() {
    let dir = tmp_dir("spec_variants");
    let path = dir.join("em.pimcaps");
    let mut spec = CapsNetSpec::tiny_for_tests();
    spec.routing = capsnet::RoutingAlgorithm::Em;
    spec.routing_sharpness = 1.75;
    spec.batch_shared_routing = false;
    let net = CapsNet::seeded(&spec, 3).unwrap();
    ModelWriter::new().save(&net, &path).unwrap();
    let mapped = MappedModel::open(&path).unwrap();
    assert_eq!(mapped.spec(), &spec);
    assert_forward_bitwise(&net, &mapped.capsnet().unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn save_replaces_atomically_and_readers_see_whole_artifacts() {
    let dir = tmp_dir("replace");
    let path = dir.join("model.pimcaps");
    let old = tiny_net(1);
    let new = tiny_net(2);
    ModelWriter::new().save(&old, &path).unwrap();
    let before = MappedModel::open(&path).unwrap().capsnet().unwrap();
    assert_forward_bitwise(&old, &before);

    // Overwrite in place (rename over the open mapping is fine on unix —
    // the old inode stays alive under the old mapping).
    ModelWriter::vault_aligned().save(&new, &path).unwrap();
    let after = MappedModel::open(&path).unwrap().capsnet().unwrap();
    assert_forward_bitwise(&new, &after);
    // The previously-loaded network is unaffected.
    assert_forward_bitwise(&old, &before);

    // No temp files left behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().file_name() != "model.pimcaps")
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn larger_model_with_uneven_vault_shares() {
    // 12×12 functional front-end with 20 primary channels: L = 80 caps,
    // 80 rows over 16 vaults = 5 each; conv1 weight rows (16) also split.
    let dir = tmp_dir("uneven");
    let path = dir.join("wide.pimcaps");
    let mut spec = CapsNetSpec::tiny_for_tests();
    spec.primary_channels = 20;
    spec.h_caps = 5;
    let net = CapsNet::seeded(&spec, 11).unwrap();
    ModelWriter::vault_aligned().save(&net, &path).unwrap();
    let mapped = MappedModel::open(&path).unwrap();
    let parts = mapped.vault_partitions("caps.weight").unwrap();
    let rows: Vec<usize> = parts.iter().map(|p| p.rows).collect();
    assert_eq!(rows.iter().sum::<usize>(), spec.l_caps().unwrap());
    assert_forward_bitwise(&net, &mapped.capsnet().unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shared_artifact_backs_many_networks_with_one_mapping() {
    let dir = tmp_dir("shared_artifact");
    let path = dir.join("shared.pimcaps");
    let net = tiny_net(31);
    ModelWriter::new().save(&net, &path).unwrap();

    let artifact = pim_store::SharedArtifact::open(&path).unwrap();
    assert_eq!(artifact.path(), path.as_path());
    assert!(artifact.image_len() > 0);
    #[cfg(unix)]
    assert!(artifact.is_mapped());

    // Clones share the one mapping (no re-open, no re-verify).
    let replica_handles: Vec<pim_store::SharedArtifact> =
        (0..3).map(|_| artifact.clone()).collect();
    assert_eq!(artifact.handles(), 1 + replica_handles.len());

    // Every network built from any handle reads the caps weight from the
    // same physical bytes: identical backing pointers, zero owned copies
    // of the packed-layout tensors.
    let nets: Vec<CapsNet> = replica_handles
        .iter()
        .map(|h| h.capsnet().unwrap())
        .collect();
    let base_ptr = nets[0]
        .named_weights()
        .iter()
        .find(|(n, _)| n == "caps.weight")
        .map(|(_, t)| t.expect_f32().as_slice().as_ptr())
        .unwrap();
    for net_i in &nets {
        for (name, t) in net_i.named_weights() {
            assert!(t.is_shared(), "{name} should borrow the shared mapping");
            if name == "caps.weight" {
                assert_eq!(
                    t.expect_f32().as_slice().as_ptr(),
                    base_ptr,
                    "replicas must share bytes"
                );
            }
        }
    }
    for n in &nets {
        assert_forward_bitwise(&net, n);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn in_place_truncation_is_a_typed_error_not_a_crash() {
    // The rollout contract says artifacts are only replaced via the atomic
    // temp+rename writer. If something violates that and truncates the
    // file in place, readers opening it afterwards must get a typed error
    // (the header commits to the full length), never a SIGBUS or panic.
    let dir = tmp_dir("truncate_in_place");
    let path = dir.join("t.pimcaps");
    ModelWriter::vault_aligned()
        .save(&tiny_net(5), &path)
        .unwrap();
    let full = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(full - 64).unwrap();
    drop(f);
    assert!(matches!(
        MappedModel::open(&path),
        Err(pim_store::StoreError::Truncated { .. })
    ));
    assert!(matches!(
        StoredModel::open(&path),
        Err(pim_store::StoreError::Truncated { .. })
    ));
    assert!(pim_store::SharedArtifact::open(&path).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}
