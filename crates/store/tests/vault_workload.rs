//! Driving an `hmc-sim` workload straight from a mapped artifact: the
//! vault-aligned layout's per-vault shares become per-vault traffic, so
//! the stored bytes stand in for the paper's per-vault weight
//! partitioning (§5.1) without any repartitioning step.

use capsnet::{CapsNet, CapsNetSpec};
use hmc_sim::{HmcConfig, PeOp, PeProgram, Phase, PhaseEngine, VaultWork};
use pim_store::{MappedModel, ModelWriter, DEFAULT_VAULT_WAYS};

#[test]
fn mapped_artifact_drives_per_vault_phase() {
    let dir = std::env::temp_dir().join(format!("pim_store_hmc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("drive.pimcaps");

    let net = CapsNet::seeded(&CapsNetSpec::tiny_for_tests(), 23).unwrap();
    ModelWriter::vault_aligned().save(&net, &path).unwrap();
    let mapped = MappedModel::open(&path).unwrap();

    // One VaultWork per stored vault share of the caps weight: each vault
    // streams its own partition (Eq 1's per-capsule GEMM reads every
    // stored byte once) and runs one MAC per element.
    let parts = mapped.vault_partitions("caps.weight").unwrap();
    assert_eq!(parts.len(), DEFAULT_VAULT_WAYS);
    let vaults: Vec<VaultWork> = parts
        .iter()
        .map(|p| {
            let bytes = p.tensor.size_bytes() as u64;
            let mut program = PeProgram::new();
            program.push(PeOp::DenseMac(p.tensor.len() as u64));
            program.read_bytes = bytes;
            VaultWork {
                program,
                bank_bytes: Vec::new(),
                row_hit_rate: 0.95,
            }
        })
        .collect();
    let total_bytes: u64 = vaults.iter().map(VaultWork::total_bytes).sum();
    assert_eq!(
        total_bytes,
        mapped.tensor("caps.weight").unwrap().size_bytes() as u64,
        "per-vault traffic must cover the whole weight exactly once"
    );

    let engine = PhaseEngine::new(HmcConfig::gen3());
    let result = engine.run_phase(&Phase::local("eq1.from_artifact", vaults));
    assert!(result.time_s > 0.0, "phase must take time: {result:?}");
    assert!(result.exec_s > 0.0);

    std::fs::remove_dir_all(&dir).unwrap();
}
