//! The artifact writer: plans the layout, streams the weights out with
//! checksums, and publishes the file atomically (write-temp-then-rename),
//! so a reader — or a serving process hot-reloading the path — never
//! observes a half-written artifact.

use std::borrow::Cow;
use std::io::Write;
use std::path::Path;

use capsnet::CapsNet;
use pim_capsnet::distribution::vault_shares;

use crate::error::StoreError;
use crate::format::{
    align_up, encode_spec, encode_table, Header, Layout, Partition, TensorRecord,
    DEFAULT_VAULT_WAYS, FORMAT_VERSION, HEADER_LEN,
};
use crate::hash::Hasher;

/// What one [`ModelWriter::save`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveReport {
    /// Total artifact size on disk, bytes (including alignment padding).
    pub bytes: u64,
    /// Tensors written.
    pub tensors: usize,
    /// Partitions written (> `tensors` in vault-aligned mode).
    pub partitions: usize,
}

/// Writes [`CapsNet`] weight artifacts.
///
/// # Examples
///
/// ```no_run
/// use capsnet::{CapsNet, CapsNetSpec};
/// use pim_store::ModelWriter;
///
/// let net = CapsNet::seeded(&CapsNetSpec::tiny_for_tests(), 1).unwrap();
/// ModelWriter::new().save(&net, "model.pimcaps".as_ref()).unwrap();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ModelWriter {
    layout: Layout,
}

impl Default for ModelWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelWriter {
    /// A writer using the packed layout (each tensor one contiguous
    /// section).
    pub fn new() -> Self {
        ModelWriter {
            layout: Layout::Packed,
        }
    }

    /// A writer using the vault-aligned layout with the default
    /// [`DEFAULT_VAULT_WAYS`]-way partitioning (the per-vault PE count of
    /// the paper's intra-vault design).
    pub fn vault_aligned() -> Self {
        Self::new().with_layout(Layout::VaultAligned {
            vaults: DEFAULT_VAULT_WAYS,
        })
    }

    /// Overrides the layout.
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// The layout this writer produces.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Serializes `net` (spec + every weight) to `path`, atomically: the
    /// bytes land in a sibling temp file first and are renamed over `path`
    /// only after a successful flush + fsync.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures; [`StoreError::Corrupt`]
    /// if the vault count is zero.
    pub fn save(&self, net: &CapsNet, path: &Path) -> Result<SaveReport, StoreError> {
        if let Layout::VaultAligned { vaults } = self.layout {
            if vaults == 0 {
                return Err(StoreError::Corrupt("vault count must be >= 1".into()));
            }
        }
        let weights = net.named_weights();
        let spec_bytes = encode_spec(net.spec());

        // Plan partition element counts (offsets come after we know the
        // table length, which is itself independent of the offset values —
        // offsets are fixed-width).
        let mut records: Vec<TensorRecord> = Vec::with_capacity(weights.len());
        for (name, tensor) in &weights {
            let dims = tensor.shape().dims().to_vec();
            let partitions = plan_partitions(&dims, self.layout);
            let mut hasher = Hasher::new();
            hasher.update(&f32_le_bytes(tensor.as_slice()));
            records.push(TensorRecord {
                name: name.to_string(),
                dims,
                partitions,
                checksum: hasher.finish(),
            });
        }

        // Assign aligned data offsets. The spec section carries an 8-byte
        // trailing checksum (header and table have their own).
        let table_off = HEADER_LEN + spec_bytes.len() + 8;
        let table_len = encode_table(&records).len();
        let mut offset = align_up(table_off + table_len);
        let mut partitions = 0usize;
        for r in &mut records {
            for p in &mut r.partitions {
                offset = align_up(offset);
                p.offset = offset as u64;
                offset += p.elems as usize * 4;
                partitions += 1;
            }
        }
        let file_len = align_up(offset);

        let header = Header {
            version: FORMAT_VERSION,
            layout: self.layout,
            tensor_count: records.len() as u32,
            spec_len: spec_bytes.len() as u64,
            table_off: table_off as u64,
            table_len: table_len as u64,
            file_len: file_len as u64,
        };

        // Stream everything into a temp file next to the destination.
        let tmp = temp_sibling(path);
        let result = (|| -> Result<(), StoreError> {
            let file = std::fs::File::create(&tmp)?;
            let mut w = std::io::BufWriter::with_capacity(1 << 20, file);
            w.write_all(&header.encode())?;
            w.write_all(&spec_bytes)?;
            w.write_all(&crate::hash::hash64(&spec_bytes).to_le_bytes())?;
            let table = encode_table(&records);
            debug_assert_eq!(table.len(), table_len);
            w.write_all(&table)?;
            let mut written = table_off + table_len;
            for (r, (_, tensor)) in records.iter().zip(&weights) {
                let data = tensor.as_slice();
                let mut consumed = 0usize;
                for p in &r.partitions {
                    let pad = p.offset as usize - written;
                    w.write_all(&vec![0u8; pad])?;
                    let part = &data[consumed..consumed + p.elems as usize];
                    w.write_all(&f32_le_bytes(part))?;
                    written = p.offset as usize + part.len() * 4;
                    consumed += part.len();
                }
            }
            w.write_all(&vec![0u8; file_len - written])?;
            let file = w.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
            file.sync_all()?;
            Ok(())
        })();
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, path)?;
        Ok(SaveReport {
            bytes: file_len as u64,
            tensors: records.len(),
            partitions,
        })
    }
}

/// Splits a tensor into stored partitions per the layout. Vault-aligned
/// partitioning applies to weight matrices/tensors (rank ≥ 2) whose
/// leading dimension can feed every vault; everything else stays whole.
fn plan_partitions(dims: &[usize], layout: Layout) -> Vec<Partition> {
    let volume: usize = dims.iter().product();
    match layout {
        Layout::VaultAligned { vaults } if dims.len() >= 2 && dims[0] >= vaults && volume > 0 => {
            let row_stride: usize = dims[1..].iter().product();
            vault_shares(dims[0], vaults)
                .into_iter()
                .map(|rows| Partition {
                    offset: 0,
                    elems: (rows * row_stride) as u64,
                })
                .collect()
        }
        _ => vec![Partition {
            offset: 0,
            elems: volume as u64,
        }],
    }
}

/// The little-endian byte image of an `f32` slice. Borrowed (zero-copy)
/// on little-endian hosts; converted on big-endian ones so artifacts are
/// portable.
pub(crate) fn f32_le_bytes(data: &[f32]) -> Cow<'_, [u8]> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: f32 and [u8; 4] have the same size; u8 has alignment 1,
        // so any f32 pointer is valid for the reinterpretation, and the
        // lifetime is tied to `data` by the signature.
        Cow::Borrowed(unsafe {
            std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), data.len() * 4)
        })
    }
    #[cfg(target_endian = "big")]
    {
        let mut out = Vec::with_capacity(data.len() * 4);
        for x in data {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Cow::Owned(out)
    }
}

/// A unique temp path next to `path` (same filesystem, so the final
/// rename is atomic).
fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".into());
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    path.with_file_name(format!(".{file_name}.tmp.{}.{nonce}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_planning() {
        // Packed: always one partition.
        assert_eq!(plan_partitions(&[100, 8], Layout::Packed).len(), 1);
        // Vault-aligned splits rank-2+ tensors with enough rows…
        let parts = plan_partitions(&[100, 8], Layout::VaultAligned { vaults: 16 });
        assert_eq!(parts.len(), 16);
        let total: u64 = parts.iter().map(|p| p.elems).sum();
        assert_eq!(total, 800);
        // ⌈100/16⌉ = 7 rows → 56 elems max share, matching vault_shares.
        assert_eq!(parts.iter().map(|p| p.elems).max(), Some(56));
        // …but biases and thin tensors stay whole.
        assert_eq!(
            plan_partitions(&[8], Layout::VaultAligned { vaults: 16 }).len(),
            1
        );
        assert_eq!(
            plan_partitions(&[10, 4], Layout::VaultAligned { vaults: 16 }).len(),
            1
        );
    }

    #[test]
    fn le_bytes_roundtrip() {
        let data = [1.5f32, -0.0, f32::NAN, f32::INFINITY];
        let bytes = f32_le_bytes(&data);
        assert_eq!(bytes.len(), 16);
        for (i, x) in data.iter().enumerate() {
            let bits = u32::from_le_bytes(bytes[i * 4..(i + 1) * 4].try_into().unwrap());
            assert_eq!(bits, x.to_bits());
        }
    }
}
