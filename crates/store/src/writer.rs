//! The artifact writer: plans the layout, streams the weights out with
//! checksums, and publishes the file atomically (write-temp-then-rename),
//! so a reader — or a serving process hot-reloading the path — never
//! observes a half-written artifact.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use capsnet::{CapsNet, WeightRef};
use pim_capsnet::distribution::vault_shares;
use pim_tensor::{encode_block_f16, quantize_block_i8, QuantDType};

use crate::error::StoreError;
use crate::format::{
    align_up, encode_spec, encode_table, Header, Layout, Partition, QuantParams, SectionDtype,
    TensorRecord, DEFAULT_VAULT_WAYS, FORMAT_VERSION, FORMAT_VERSION_F32, HEADER_LEN,
};
use crate::hash::Hasher;

/// Which weights to quantize at save time, and how.
///
/// Quantization happens **per stored vault partition**: each partition of
/// an int8 section gets its own affine `scale`/`zero_point` fitted over
/// just its rows (recorded inline in the section table), so every vault
/// shard dequantizes without touching any other shard's metadata.
///
/// # Examples
///
/// ```
/// use pim_store::QuantSpec;
/// use pim_tensor::QuantDType;
///
/// // Blanket: every rank ≥ 2 `*.weight` tensor becomes int8…
/// let all_i8 = QuantSpec::weights(QuantDType::I8);
/// // …or pick per name, e.g. only the streamed caps weight as fp16.
/// let caps_f16 = QuantSpec::new().with_weight("caps.weight", QuantDType::F16);
/// assert!(all_i8.resolve("decoder.0.weight", &[16, 144]).is_some());
/// assert!(caps_f16.resolve("decoder.0.weight", &[16, 144]).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct QuantSpec {
    per_name: BTreeMap<String, QuantDType>,
    blanket: Option<QuantDType>,
}

impl QuantSpec {
    /// An empty spec: nothing is quantized (pure-f32, v1 artifact).
    pub fn new() -> Self {
        QuantSpec::default()
    }

    /// A blanket spec: every `*.weight` tensor of rank ≥ 2 is stored as
    /// `dtype`. Biases and other vectors always stay f32 — they are tiny,
    /// and keeping them exact costs nothing.
    pub fn weights(dtype: QuantDType) -> Self {
        QuantSpec {
            per_name: BTreeMap::new(),
            blanket: Some(dtype),
        }
    }

    /// Adds (or overrides) the stored dtype for one named weight.
    pub fn with_weight(mut self, name: &str, dtype: QuantDType) -> Self {
        self.per_name.insert(name.to_string(), dtype);
        self
    }

    /// `true` when no weight would be quantized.
    pub fn is_empty(&self) -> bool {
        self.per_name.is_empty() && self.blanket.is_none()
    }

    /// The stored dtype for `name` with logical `dims`, if quantized.
    pub fn resolve(&self, name: &str, dims: &[usize]) -> Option<QuantDType> {
        if let Some(&d) = self.per_name.get(name) {
            return Some(d);
        }
        match self.blanket {
            Some(d) if name.ends_with(".weight") && dims.len() >= 2 => Some(d),
            _ => None,
        }
    }
}

/// What one [`ModelWriter::save`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveReport {
    /// Total artifact size on disk, bytes (including alignment padding).
    pub bytes: u64,
    /// Tensors written.
    pub tensors: usize,
    /// Partitions written (> `tensors` in vault-aligned mode).
    pub partitions: usize,
}

/// Writes [`CapsNet`] weight artifacts.
///
/// # Examples
///
/// ```no_run
/// use capsnet::{CapsNet, CapsNetSpec};
/// use pim_store::ModelWriter;
///
/// let net = CapsNet::seeded(&CapsNetSpec::tiny_for_tests(), 1).unwrap();
/// ModelWriter::new().save(&net, "model.pimcaps".as_ref()).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct ModelWriter {
    layout: Layout,
    quant: QuantSpec,
}

impl Default for ModelWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelWriter {
    /// A writer using the packed layout (each tensor one contiguous
    /// section).
    pub fn new() -> Self {
        ModelWriter {
            layout: Layout::Packed,
            quant: QuantSpec::new(),
        }
    }

    /// A writer using the vault-aligned layout with the default
    /// [`DEFAULT_VAULT_WAYS`]-way partitioning (the per-vault PE count of
    /// the paper's intra-vault design).
    pub fn vault_aligned() -> Self {
        Self::new().with_layout(Layout::VaultAligned {
            vaults: DEFAULT_VAULT_WAYS,
        })
    }

    /// Overrides the layout.
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Quantizes weights at save time per `spec`. With a non-empty spec
    /// the artifact is written as format v2; an empty spec keeps the
    /// byte-identical v1 output.
    pub fn with_quant(mut self, spec: QuantSpec) -> Self {
        self.quant = spec;
        self
    }

    /// The layout this writer produces.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The quantization spec applied at save time.
    pub fn quant(&self) -> &QuantSpec {
        &self.quant
    }

    /// Serializes `net` (spec + every weight) to `path`, atomically: the
    /// bytes land in a sibling temp file first and are renamed over `path`
    /// only after a successful flush + fsync.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures; [`StoreError::Corrupt`]
    /// if the vault count is zero, or when `net` holds weights that are
    /// *already* quantized (quantization is lossy — a faithful re-save
    /// needs the f32 source model).
    pub fn save(&self, net: &CapsNet, path: &Path) -> Result<SaveReport, StoreError> {
        if let Layout::VaultAligned { vaults } = self.layout {
            if vaults == 0 {
                return Err(StoreError::Corrupt("vault count must be >= 1".into()));
            }
        }
        let weights = net.named_weights();
        let spec_bytes = encode_spec(net.spec());

        // Plan partition element counts (offsets come after we know the
        // table length, which is itself independent of the offset values —
        // offsets are fixed-width). Quantized payloads are produced here
        // too: partition boundaries are also quantization-block
        // boundaries, so each vault shard is fitted (and later
        // dequantized) independently.
        let mut records: Vec<TensorRecord> = Vec::with_capacity(weights.len());
        let mut payloads: Vec<Option<Vec<Vec<u8>>>> = Vec::with_capacity(weights.len());
        for (name, weight) in &weights {
            let tensor = match weight {
                WeightRef::F32(t) => t,
                WeightRef::Quant(q) => {
                    return Err(StoreError::Corrupt(format!(
                        "weight {name:?} is held as {} quantized bytes; saving a                          quantized network would re-quantize lossy data — save from                          the f32 source model instead",
                        q.dtype().label()
                    )))
                }
            };
            let dims = tensor.shape().dims().to_vec();
            let partitions = plan_partitions(&dims, self.layout);
            match self.quant.resolve(name, &dims) {
                None => {
                    let mut hasher = Hasher::new();
                    hasher.update(&f32_le_bytes(tensor.as_slice()));
                    records.push(TensorRecord {
                        name: name.to_string(),
                        dtype: SectionDtype::F32,
                        dims,
                        partitions,
                        quant: vec![],
                        checksum: hasher.finish(),
                    });
                    payloads.push(None);
                }
                Some(dtype) => {
                    let data = tensor.as_slice();
                    let mut hasher = Hasher::new();
                    let mut parts = Vec::with_capacity(partitions.len());
                    let mut params = Vec::new();
                    let mut consumed = 0usize;
                    for p in &partitions {
                        let values = &data[consumed..consumed + p.elems as usize];
                        consumed += values.len();
                        let bytes = match dtype {
                            QuantDType::I8 => {
                                let (bytes, scale, zero_point) = quantize_block_i8(values);
                                params.push(QuantParams { scale, zero_point });
                                bytes
                            }
                            QuantDType::F16 => encode_block_f16(values),
                        };
                        hasher.update(&bytes);
                        parts.push(bytes);
                    }
                    records.push(TensorRecord {
                        name: name.to_string(),
                        dtype: dtype.into(),
                        dims,
                        partitions,
                        quant: params,
                        checksum: hasher.finish(),
                    });
                    payloads.push(Some(parts));
                }
            }
        }
        // Unquantized artifacts keep the v1 wire format bit-for-bit (f32
        // records encode identically in both versions); any quantized
        // section bumps the artifact to v2.
        let version = if records.iter().any(|r| r.dtype != SectionDtype::F32) {
            FORMAT_VERSION
        } else {
            FORMAT_VERSION_F32
        };

        // Assign aligned data offsets. The spec section carries an 8-byte
        // trailing checksum (header and table have their own).
        let table_off = HEADER_LEN + spec_bytes.len() + 8;
        let table_len = encode_table(&records).len();
        let mut offset = align_up(table_off + table_len);
        let mut partitions = 0usize;
        for r in &mut records {
            let elem_bytes = r.dtype.elem_bytes();
            for p in &mut r.partitions {
                offset = align_up(offset);
                p.offset = offset as u64;
                offset += p.elems as usize * elem_bytes;
                partitions += 1;
            }
        }
        let file_len = align_up(offset);

        let header = Header {
            version,
            layout: self.layout,
            tensor_count: records.len() as u32,
            spec_len: spec_bytes.len() as u64,
            table_off: table_off as u64,
            table_len: table_len as u64,
            file_len: file_len as u64,
        };

        // Stream everything into a temp file next to the destination.
        let tmp = temp_sibling(path);
        let result = (|| -> Result<(), StoreError> {
            let file = std::fs::File::create(&tmp)?;
            let mut w = std::io::BufWriter::with_capacity(1 << 20, file);
            w.write_all(&header.encode())?;
            w.write_all(&spec_bytes)?;
            w.write_all(&crate::hash::hash64(&spec_bytes).to_le_bytes())?;
            let table = encode_table(&records);
            debug_assert_eq!(table.len(), table_len);
            w.write_all(&table)?;
            let mut written = table_off + table_len;
            for ((r, (_, weight)), payload) in records.iter().zip(&weights).zip(&payloads) {
                match payload {
                    Some(parts) => {
                        for (p, bytes) in r.partitions.iter().zip(parts) {
                            let pad = p.offset as usize - written;
                            w.write_all(&vec![0u8; pad])?;
                            w.write_all(bytes)?;
                            written = p.offset as usize + bytes.len();
                        }
                    }
                    None => {
                        let data = weight.expect_f32().as_slice();
                        let mut consumed = 0usize;
                        for p in &r.partitions {
                            let pad = p.offset as usize - written;
                            w.write_all(&vec![0u8; pad])?;
                            let part = &data[consumed..consumed + p.elems as usize];
                            w.write_all(&f32_le_bytes(part))?;
                            written = p.offset as usize + part.len() * 4;
                            consumed += part.len();
                        }
                    }
                }
            }
            w.write_all(&vec![0u8; file_len - written])?;
            let file = w.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
            file.sync_all()?;
            Ok(())
        })();
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, path)?;
        Ok(SaveReport {
            bytes: file_len as u64,
            tensors: records.len(),
            partitions,
        })
    }
}

/// Splits a tensor into stored partitions per the layout. Vault-aligned
/// partitioning applies to weight matrices/tensors (rank ≥ 2) whose
/// leading dimension can feed every vault; everything else stays whole.
fn plan_partitions(dims: &[usize], layout: Layout) -> Vec<Partition> {
    let volume: usize = dims.iter().product();
    match layout {
        Layout::VaultAligned { vaults } if dims.len() >= 2 && dims[0] >= vaults && volume > 0 => {
            let row_stride: usize = dims[1..].iter().product();
            vault_shares(dims[0], vaults)
                .into_iter()
                .map(|rows| Partition {
                    offset: 0,
                    elems: (rows * row_stride) as u64,
                })
                .collect()
        }
        _ => vec![Partition {
            offset: 0,
            elems: volume as u64,
        }],
    }
}

/// The little-endian byte image of an `f32` slice. Borrowed (zero-copy)
/// on little-endian hosts; converted on big-endian ones so artifacts are
/// portable.
pub(crate) fn f32_le_bytes(data: &[f32]) -> Cow<'_, [u8]> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: f32 and [u8; 4] have the same size; u8 has alignment 1,
        // so any f32 pointer is valid for the reinterpretation, and the
        // lifetime is tied to `data` by the signature.
        Cow::Borrowed(unsafe {
            std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), data.len() * 4)
        })
    }
    #[cfg(target_endian = "big")]
    {
        let mut out = Vec::with_capacity(data.len() * 4);
        for x in data {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Cow::Owned(out)
    }
}

/// A unique temp path next to `path` (same filesystem, so the final
/// rename is atomic).
fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".into());
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    path.with_file_name(format!(".{file_name}.tmp.{}.{nonce}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_planning() {
        // Packed: always one partition.
        assert_eq!(plan_partitions(&[100, 8], Layout::Packed).len(), 1);
        // Vault-aligned splits rank-2+ tensors with enough rows…
        let parts = plan_partitions(&[100, 8], Layout::VaultAligned { vaults: 16 });
        assert_eq!(parts.len(), 16);
        let total: u64 = parts.iter().map(|p| p.elems).sum();
        assert_eq!(total, 800);
        // ⌈100/16⌉ = 7 rows → 56 elems max share, matching vault_shares.
        assert_eq!(parts.iter().map(|p| p.elems).max(), Some(56));
        // …but biases and thin tensors stay whole.
        assert_eq!(
            plan_partitions(&[8], Layout::VaultAligned { vaults: 16 }).len(),
            1
        );
        assert_eq!(
            plan_partitions(&[10, 4], Layout::VaultAligned { vaults: 16 }).len(),
            1
        );
    }

    #[test]
    fn le_bytes_roundtrip() {
        let data = [1.5f32, -0.0, f32::NAN, f32::INFINITY];
        let bytes = f32_le_bytes(&data);
        assert_eq!(bytes.len(), 16);
        for (i, x) in data.iter().enumerate() {
            let bits = u32::from_le_bytes(bytes[i * 4..(i + 1) * 4].try_into().unwrap());
            assert_eq!(bits, x.to_bits());
        }
    }
}
