//! Artifact readers: checksum-verified **owned** loading and **zero-copy
//! mmap** loading.
//!
//! [`StoredModel`] reads the whole file and materializes owned tensors —
//! the portable, always-works path. [`MappedModel`] maps the file and
//! hands out [`Tensor::from_shared`] views straight over the page cache;
//! tensors whose stored partitions are not contiguous (vault-aligned
//! padding) or whose data cannot be viewed as aligned `f32`s fall back to
//! owned copies per tensor, so the API never fails over alignment — it
//! only loses the zero-copy property where the bytes make it impossible.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use capsnet::{CapsNet, CapsNetError, CapsNetSpec, WeightSource};
use pim_tensor::{Tensor, TensorBuf};

use crate::error::StoreError;
use crate::format::{decode_spec, decode_table, Header, Layout, TensorRecord, HEADER_LEN};
use crate::hash::Hasher;
use crate::mmap::{map_file, Mmap};

/// Parsed-and-verified artifact metadata, shared by both readers.
#[derive(Debug)]
struct Metadata {
    header: Header,
    spec: CapsNetSpec,
    records: Vec<TensorRecord>,
    by_name: BTreeMap<String, usize>,
}

/// Parses header, spec and section table out of the full file image and
/// verifies **every** checksum (header, table, and each tensor's data).
fn parse_and_verify(bytes: &[u8]) -> Result<Metadata, StoreError> {
    let header = Header::decode(bytes)?;
    if (bytes.len() as u64) < header.file_len {
        return Err(StoreError::Truncated {
            expected: header.file_len,
            actual: bytes.len() as u64,
        });
    }
    if (bytes.len() as u64) > header.file_len {
        return Err(StoreError::Corrupt(format!(
            "file has {} trailing bytes beyond the committed length",
            bytes.len() as u64 - header.file_len
        )));
    }
    let spec_end = (HEADER_LEN as u64)
        .checked_add(header.spec_len)
        .and_then(|e| e.checked_add(8).map(|with_sum| (e, with_sum)))
        .filter(|&(_, with_sum)| with_sum <= header.file_len)
        .map(|(e, _)| e)
        .ok_or_else(|| StoreError::Corrupt("spec extends past end of file".into()))?;
    if header.table_off < spec_end + 8 {
        return Err(StoreError::Corrupt(
            "section table overlaps the spec".into(),
        ));
    }
    let spec_payload = &bytes[HEADER_LEN..spec_end as usize];
    let stored_spec_sum = u64::from_le_bytes(
        bytes[spec_end as usize..spec_end as usize + 8]
            .try_into()
            .expect("8 bytes"),
    );
    if crate::hash::hash64(spec_payload) != stored_spec_sum {
        return Err(StoreError::Corrupt("spec checksum mismatch".into()));
    }
    let table_end = header
        .table_off
        .checked_add(header.table_len)
        .filter(|&e| e <= header.file_len)
        .ok_or_else(|| StoreError::Corrupt("section table extends past end of file".into()))?;
    let spec = decode_spec(spec_payload)?;
    spec.validate()?;
    let records = decode_table(
        &bytes[header.table_off as usize..table_end as usize],
        header.tensor_count,
    )?;

    let mut by_name = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        if by_name.insert(r.name.clone(), i).is_some() {
            return Err(StoreError::Corrupt(format!(
                "duplicate tensor name {:?}",
                r.name
            )));
        }
        let mut hasher = Hasher::new();
        for p in &r.partitions {
            if p.offset < table_end || p.offset % 4 != 0 {
                return Err(StoreError::Corrupt(format!(
                    "tensor {:?}: partition offset {} invalid (data area starts at {table_end})",
                    r.name, p.offset
                )));
            }
            let end = p
                .offset
                .checked_add(p.elems.checked_mul(4).ok_or_else(|| {
                    StoreError::Corrupt(format!("tensor {:?}: element count overflow", r.name))
                })?)
                .filter(|&e| e <= header.file_len)
                .ok_or(StoreError::Truncated {
                    expected: p.offset.saturating_add(p.elems.saturating_mul(4)),
                    actual: header.file_len,
                })?;
            hasher.update(&bytes[p.offset as usize..end as usize]);
        }
        if hasher.finish() != r.checksum {
            return Err(StoreError::Corrupt(format!(
                "tensor {:?}: data checksum mismatch",
                r.name
            )));
        }
    }
    Ok(Metadata {
        header,
        spec,
        records,
        by_name,
    })
}

/// Decodes a partition's bytes into `out` (fast memcpy path on aligned
/// little-endian input, per-element decode otherwise).
fn extend_f32_from_bytes(out: &mut Vec<f32>, bytes: &[u8]) {
    debug_assert_eq!(bytes.len() % 4, 0);
    let n = bytes.len() / 4;
    #[cfg(target_endian = "little")]
    if bytes.as_ptr().align_offset(std::mem::align_of::<f32>()) == 0 {
        // SAFETY: pointer is 4-aligned (checked above), length n * 4 bytes
        // is in bounds, and f32 has no invalid bit patterns.
        let words = unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), n) };
        out.extend_from_slice(words);
        return;
    }
    out.extend(
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes")))),
    );
}

/// Materializes one record's tensor as owned storage from the file image.
fn gather_owned(bytes: &[u8], record: &TensorRecord) -> Result<Tensor, StoreError> {
    let mut data = Vec::with_capacity(record.elems() as usize);
    for p in &record.partitions {
        let start = p.offset as usize;
        extend_f32_from_bytes(&mut data, &bytes[start..start + p.elems as usize * 4]);
    }
    Ok(Tensor::from_vec(data, &record.dims)?)
}

// ── owned loading ───────────────────────────────────────────────────────

/// A fully-materialized (owned) model artifact.
#[derive(Debug)]
pub struct StoredModel {
    spec: CapsNetSpec,
    layout: Layout,
    tensors: BTreeMap<String, Tensor>,
}

impl StoredModel {
    /// Reads and verifies `path`, materializing every tensor into owned
    /// memory.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]: i/o, magic/version mismatch, truncation, or
    /// checksum failure.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path)?;
        let meta = parse_and_verify(&bytes)?;
        let mut tensors = BTreeMap::new();
        for r in &meta.records {
            tensors.insert(r.name.clone(), gather_owned(&bytes, r)?);
        }
        Ok(StoredModel {
            spec: meta.spec,
            layout: meta.header.layout,
            tensors,
        })
    }

    /// The stored network specification.
    pub fn spec(&self) -> &CapsNetSpec {
        &self.spec
    }

    /// The artifact's data layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// A stored tensor by name.
    pub fn tensor(&self, name: &str) -> Option<&Tensor> {
        self.tensors.get(name)
    }

    /// Rebuilds the network from the stored spec and weights, moving each
    /// tensor out (no second copy of multi-hundred-MB weights — the
    /// `BTreeMap` `WeightSource` impl would clone).
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches as [`StoreError::CapsNet`].
    pub fn into_capsnet(self) -> Result<CapsNet, StoreError> {
        struct TakeSource(BTreeMap<String, Tensor>);
        impl WeightSource for TakeSource {
            fn contains(&self, name: &str) -> bool {
                self.0.contains_key(name)
            }
            fn tensor(&mut self, name: &str, dims: &[usize]) -> Result<Tensor, CapsNetError> {
                let t = self
                    .0
                    .remove(name)
                    .ok_or_else(|| CapsNetError::InvalidSpec(format!("missing weight {name:?}")))?;
                if t.shape().dims() != dims {
                    return Err(CapsNetError::InvalidSpec(format!(
                        "stored tensor {name:?} has shape {:?}, model needs {dims:?}",
                        t.shape().dims()
                    )));
                }
                Ok(t)
            }
        }
        Ok(CapsNet::from_views(
            &self.spec,
            &mut TakeSource(self.tensors),
        )?)
    }
}

// ── zero-copy mapped loading ────────────────────────────────────────────

/// The backing storage of a [`MappedModel`]: the live mapping, or (on
/// platforms/files where an aligned `f32` view is impossible) the file
/// image copied into owned words.
enum ArtifactBuf {
    Mapped(Mmap),
    OwnedWords(Vec<f32>),
}

impl TensorBuf for ArtifactBuf {
    fn as_f32(&self) -> &[f32] {
        match self {
            ArtifactBuf::Mapped(m) => {
                let bytes = m.as_bytes();
                // Invariants established at open: 4-aligned base pointer,
                // length a multiple of 4.
                debug_assert_eq!(bytes.as_ptr().align_offset(4), 0);
                debug_assert_eq!(bytes.len() % 4, 0);
                // SAFETY: alignment and length verified at construction
                // (misaligned mappings are converted to OwnedWords); f32
                // has no invalid bit patterns; the mapping is immutable
                // and lives as long as self.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), bytes.len() / 4) }
            }
            ArtifactBuf::OwnedWords(v) => v,
        }
    }
}

/// One vault's stored share of a vault-aligned weight tensor.
#[derive(Debug, Clone)]
pub struct VaultPartition {
    /// Vault index (0-based).
    pub vault: usize,
    /// Rows of the tensor's leading dimension stored in this vault.
    pub rows: usize,
    /// The partition's data, shaped `[rows, trailing dims…]`. A shared
    /// zero-copy view whenever the backing store allows it.
    pub tensor: Tensor,
}

/// A model artifact opened for **zero-copy** access.
///
/// Weight tensors are handed out as [`Tensor::from_shared`] windows over
/// the mapping — no per-tensor allocation, no copy, and repeated opens of
/// the same artifact share the OS page cache. Every checksum (header,
/// table, all tensor data) is verified at open.
pub struct MappedModel {
    buf: Arc<ArtifactBuf>,
    spec: CapsNetSpec,
    layout: Layout,
    records: Vec<TensorRecord>,
    by_name: BTreeMap<String, usize>,
    mapped: bool,
}

impl std::fmt::Debug for MappedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedModel")
            .field("spec", &self.spec.name)
            .field("layout", &self.layout)
            .field("tensors", &self.records.len())
            .field("mapped", &self.mapped)
            .finish()
    }
}

impl MappedModel {
    /// Maps and verifies the artifact at `path`.
    ///
    /// Falls back to an owned in-memory copy when the platform has no
    /// mmap or the mapping cannot be viewed as aligned `f32`s — the
    /// result is then identical in behavior, just not zero-copy (see
    /// [`MappedModel::is_mapped`]).
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]: i/o, magic/version mismatch, truncation, or
    /// checksum failure.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        match map_file(path) {
            Ok(mapping) => {
                let meta = parse_and_verify(mapping.as_bytes())?;
                let bytes = mapping.as_bytes();
                let aligned = bytes.as_ptr().align_offset(std::mem::align_of::<f32>()) == 0
                    && bytes.len() % 4 == 0;
                let (buf, mapped) = if aligned {
                    (ArtifactBuf::Mapped(mapping), true)
                } else {
                    // Misalignment fallback: copy the image into owned
                    // words once; all tensor views then borrow that copy.
                    let mut words = Vec::with_capacity(bytes.len() / 4);
                    extend_f32_from_bytes(&mut words, &bytes[..bytes.len() - bytes.len() % 4]);
                    (ArtifactBuf::OwnedWords(words), false)
                };
                Ok(MappedModel {
                    buf: Arc::new(buf),
                    spec: meta.spec,
                    layout: meta.header.layout,
                    records: meta.records,
                    by_name: meta.by_name,
                    mapped,
                })
            }
            Err(StoreError::MmapUnsupported) => {
                let bytes = std::fs::read(path)?;
                let meta = parse_and_verify(&bytes)?;
                let mut words = Vec::with_capacity(bytes.len() / 4);
                extend_f32_from_bytes(&mut words, &bytes);
                Ok(MappedModel {
                    buf: Arc::new(ArtifactBuf::OwnedWords(words)),
                    spec: meta.spec,
                    layout: meta.header.layout,
                    records: meta.records,
                    by_name: meta.by_name,
                    mapped: false,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// The stored network specification.
    pub fn spec(&self) -> &CapsNetSpec {
        &self.spec
    }

    /// The artifact's data layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// `true` when the artifact is served by a live memory mapping
    /// (`false` after the owned fallback).
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// Length of the backing file image in bytes (the mapped extent, or
    /// the owned copy's size after a fallback).
    pub fn image_len(&self) -> usize {
        match &*self.buf {
            ArtifactBuf::Mapped(m) => m.len(),
            ArtifactBuf::OwnedWords(v) => v.len() * 4,
        }
    }

    /// Stored tensor names, in table order.
    pub fn tensor_names(&self) -> impl Iterator<Item = &str> {
        self.records.iter().map(|r| r.name.as_str())
    }

    fn record(&self, name: &str) -> Result<&TensorRecord, StoreError> {
        self.by_name
            .get(name)
            .map(|&i| &self.records[i])
            .ok_or_else(|| StoreError::MissingTensor(name.to_string()))
    }

    /// The tensor stored under `name`. Zero-copy (shared storage) when the
    /// stored partitions are contiguous; an owned gather otherwise (the
    /// vault-aligned padding case).
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingTensor`] for unknown names.
    pub fn tensor(&self, name: &str) -> Result<Tensor, StoreError> {
        let record = self.record(name)?;
        if record.is_contiguous() {
            let offset_elems = record.partitions[0].offset as usize / 4;
            let buf: Arc<dyn TensorBuf> = Arc::clone(&self.buf) as Arc<dyn TensorBuf>;
            return Ok(Tensor::from_shared(buf, offset_elems, &record.dims)?);
        }
        // Non-contiguous (padded between vault partitions): gather owned.
        let words = self.buf.as_f32();
        let mut data = Vec::with_capacity(record.elems() as usize);
        for p in &record.partitions {
            let start = p.offset as usize / 4;
            data.extend_from_slice(&words[start..start + p.elems as usize]);
        }
        Ok(Tensor::from_vec(data, &record.dims)?)
    }

    /// The per-vault shares of a stored tensor: one zero-copy view per
    /// stored partition, shaped `[rows, trailing dims…]`. Tensors stored
    /// whole return a single share on vault 0. This is the handle a
    /// `hmc-sim` workload uses to drive per-vault traffic straight off
    /// the artifact.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingTensor`] for unknown names.
    pub fn vault_partitions(&self, name: &str) -> Result<Vec<VaultPartition>, StoreError> {
        let record = self.record(name)?;
        let row_stride: usize = record.dims[1..].iter().product::<usize>().max(1);
        let mut out = Vec::with_capacity(record.partitions.len());
        for (vault, p) in record.partitions.iter().enumerate() {
            let rows = p.elems as usize / row_stride;
            let mut dims = record.dims.clone();
            dims[0] = rows;
            let buf: Arc<dyn TensorBuf> = Arc::clone(&self.buf) as Arc<dyn TensorBuf>;
            out.push(VaultPartition {
                vault,
                rows,
                tensor: Tensor::from_shared(buf, p.offset as usize / 4, &dims)?,
            });
        }
        Ok(out)
    }

    /// Rebuilds a runnable [`CapsNet`] whose weights **borrow** this
    /// mapping (zero-copy where the layout allows). The network holds an
    /// `Arc` to the mapping, so it stays valid after the `MappedModel` is
    /// dropped.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingTensor`] / [`StoreError::CapsNet`] when the
    /// artifact does not contain what the spec requires.
    pub fn capsnet(&self) -> Result<CapsNet, StoreError> {
        struct Source<'a>(&'a MappedModel);
        impl WeightSource for Source<'_> {
            fn contains(&self, name: &str) -> bool {
                self.0.by_name.contains_key(name)
            }
            fn tensor(&mut self, name: &str, dims: &[usize]) -> Result<Tensor, CapsNetError> {
                let t = self
                    .0
                    .tensor(name)
                    .map_err(|e| CapsNetError::InvalidSpec(e.to_string()))?;
                if t.shape().dims() != dims {
                    return Err(CapsNetError::InvalidSpec(format!(
                        "stored tensor {name:?} has shape {:?}, model needs {dims:?}",
                        t.shape().dims()
                    )));
                }
                Ok(t)
            }
        }
        let spec = self.spec.clone();
        Ok(CapsNet::from_views(&spec, &mut Source(self))?)
    }
}

// ── shared artifact handle ──────────────────────────────────────────────

/// A cheaply cloneable handle letting **many consumers wrap one mapping**.
///
/// `MappedModel::open` creates one `mmap` per call; N serve replicas each
/// opening the same path would hold N mappings (the page cache still
/// dedups the physical pages, but each handle re-verifies every checksum
/// and owns its own VMA). A `SharedArtifact` opens and verifies the
/// artifact **once** and shares the single [`MappedModel`] behind an
/// `Arc`: every [`SharedArtifact::capsnet`] call hands out networks whose
/// weight tensors are windows into the *same* buffer, so a whole replica
/// pool serves one physical copy of the weights.
///
/// The handle records the path it was opened from so supervisors can
/// re-open (or roll back to) the same artifact later.
#[derive(Debug, Clone)]
pub struct SharedArtifact {
    model: Arc<MappedModel>,
    path: std::path::PathBuf,
}

impl SharedArtifact {
    /// Opens and fully verifies the artifact at `path` once; clones of the
    /// returned handle share the mapping.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from [`MappedModel::open`].
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Ok(SharedArtifact {
            model: Arc::new(MappedModel::open(path)?),
            path: path.to_path_buf(),
        })
    }

    /// The shared mapped model.
    pub fn model(&self) -> &MappedModel {
        &self.model
    }

    /// The path the artifact was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The stored network specification.
    pub fn spec(&self) -> &CapsNetSpec {
        self.model.spec()
    }

    /// `true` when the shared image is a live memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.model.is_mapped()
    }

    /// Bytes of the single shared file image (counted **once**, however
    /// many handles or networks wrap it).
    pub fn image_len(&self) -> usize {
        self.model.image_len()
    }

    /// How many `SharedArtifact` handles currently share this mapping.
    /// Networks built by [`SharedArtifact::capsnet`] keep the underlying
    /// buffer alive independently of this count.
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.model)
    }

    /// Builds a runnable network off the shared mapping — same semantics
    /// as [`MappedModel::capsnet`], but every network from every clone of
    /// this handle shares one backing buffer.
    ///
    /// # Errors
    ///
    /// See [`MappedModel::capsnet`].
    pub fn capsnet(&self) -> Result<CapsNet, StoreError> {
        self.model.capsnet()
    }
}
