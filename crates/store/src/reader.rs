//! Artifact readers: checksum-verified **owned** loading and **zero-copy
//! mmap** loading.
//!
//! [`StoredModel`] reads the whole file and materializes owned tensors —
//! the portable, always-works path. [`MappedModel`] maps the file and
//! hands out [`Tensor::from_shared`] views straight over the page cache;
//! tensors whose stored partitions are not contiguous (vault-aligned
//! padding) or whose data cannot be viewed as aligned `f32`s fall back to
//! owned copies per tensor, so the API never fails over alignment — it
//! only loses the zero-copy property where the bytes make it impossible.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use capsnet::{CapsNet, CapsNetError, CapsNetSpec, WeightSource, WeightView};
use pim_tensor::{ByteBuf, QuantBlock, QuantTensor, Tensor, TensorBuf};

use crate::error::StoreError;
use crate::format::{
    decode_spec, decode_table, Header, Layout, SectionDtype, TensorRecord, HEADER_LEN,
};
use crate::hash::Hasher;
use crate::mmap::{map_file, Mmap};

/// Parsed-and-verified artifact metadata, shared by both readers.
#[derive(Debug)]
struct Metadata {
    header: Header,
    spec: CapsNetSpec,
    records: Vec<TensorRecord>,
    by_name: BTreeMap<String, usize>,
}

/// Parses header, spec and section table out of the full file image and
/// verifies **every** checksum (header, table, and each tensor's data).
fn parse_and_verify(bytes: &[u8]) -> Result<Metadata, StoreError> {
    let header = Header::decode(bytes)?;
    if (bytes.len() as u64) < header.file_len {
        return Err(StoreError::Truncated {
            expected: header.file_len,
            actual: bytes.len() as u64,
        });
    }
    if (bytes.len() as u64) > header.file_len {
        return Err(StoreError::Corrupt(format!(
            "file has {} trailing bytes beyond the committed length",
            bytes.len() as u64 - header.file_len
        )));
    }
    let spec_end = (HEADER_LEN as u64)
        .checked_add(header.spec_len)
        .and_then(|e| e.checked_add(8).map(|with_sum| (e, with_sum)))
        .filter(|&(_, with_sum)| with_sum <= header.file_len)
        .map(|(e, _)| e)
        .ok_or_else(|| StoreError::Corrupt("spec extends past end of file".into()))?;
    if header.table_off < spec_end + 8 {
        return Err(StoreError::Corrupt(
            "section table overlaps the spec".into(),
        ));
    }
    let spec_payload = &bytes[HEADER_LEN..spec_end as usize];
    let stored_spec_sum = u64::from_le_bytes(
        bytes[spec_end as usize..spec_end as usize + 8]
            .try_into()
            // LINT-ALLOW(R2): the 8-byte digest tail was length-checked two lines above
            .expect("8 bytes"),
    );
    if crate::hash::hash64(spec_payload) != stored_spec_sum {
        return Err(StoreError::Corrupt("spec checksum mismatch".into()));
    }
    let table_end = header
        .table_off
        .checked_add(header.table_len)
        .filter(|&e| e <= header.file_len)
        .ok_or_else(|| StoreError::Corrupt("section table extends past end of file".into()))?;
    let spec = decode_spec(spec_payload)?;
    spec.validate()?;
    let records = decode_table(
        &bytes[header.table_off as usize..table_end as usize],
        header.tensor_count,
        header.version,
    )?;

    let mut by_name = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        if by_name.insert(r.name.clone(), i).is_some() {
            return Err(StoreError::Corrupt(format!(
                "duplicate tensor name {:?}",
                r.name
            )));
        }
        let mut hasher = Hasher::new();
        let elem_bytes = r.elem_bytes();
        for p in &r.partitions {
            if p.offset < table_end || p.offset % 4 != 0 {
                return Err(StoreError::Corrupt(format!(
                    "tensor {:?}: partition offset {} invalid (data area starts at {table_end})",
                    r.name, p.offset
                )));
            }
            let end = p
                .offset
                .checked_add(p.elems.checked_mul(elem_bytes).ok_or_else(|| {
                    StoreError::Corrupt(format!("tensor {:?}: element count overflow", r.name))
                })?)
                .filter(|&e| e <= header.file_len)
                .ok_or(StoreError::Truncated {
                    expected: p.offset.saturating_add(p.elems.saturating_mul(elem_bytes)),
                    actual: header.file_len,
                })?;
            hasher.update(&bytes[p.offset as usize..end as usize]);
        }
        if hasher.finish() != r.checksum {
            return Err(StoreError::Corrupt(format!(
                "tensor {:?}: data checksum mismatch",
                r.name
            )));
        }
    }
    Ok(Metadata {
        header,
        spec,
        records,
        by_name,
    })
}

/// Decodes a partition's bytes into `out` (fast memcpy path on aligned
/// little-endian input, per-element decode otherwise).
fn extend_f32_from_bytes(out: &mut Vec<f32>, bytes: &[u8]) {
    debug_assert_eq!(bytes.len() % 4, 0);
    let n = bytes.len() / 4;
    #[cfg(target_endian = "little")]
    if bytes.as_ptr().align_offset(std::mem::align_of::<f32>()) == 0 {
        // SAFETY: pointer is 4-aligned (checked above), length n * 4 bytes
        // is in bounds, and f32 has no invalid bit patterns.
        let words = unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), n) };
        out.extend_from_slice(words);
        return;
    }
    out.extend(
        bytes
            .chunks_exact(4)
            // LINT-ALLOW(R2): chunks_exact(4) yields exactly 4-byte slices by contract
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes")))),
    );
}

/// Materializes one f32 record's tensor as owned storage from the file
/// image.
fn gather_owned(bytes: &[u8], record: &TensorRecord) -> Result<Tensor, StoreError> {
    let mut data = Vec::with_capacity(record.elems() as usize);
    for p in &record.partitions {
        let start = p.offset as usize;
        extend_f32_from_bytes(&mut data, &bytes[start..start + p.elems as usize * 4]);
    }
    Ok(Tensor::from_vec(data, &record.dims)?)
}

/// The quantization blocks of a quantized record: one per stored
/// partition, carrying that partition's inline affine parameters (int8) or
/// the neutral pair (f16).
fn record_blocks(record: &TensorRecord) -> Vec<QuantBlock> {
    let mut start = 0usize;
    record
        .partitions
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (scale, zero_point) = match record.dtype {
                SectionDtype::I8 => (record.quant[i].scale, record.quant[i].zero_point),
                _ => (1.0, 0),
            };
            let block = QuantBlock {
                start,
                elems: p.elems as usize,
                scale,
                zero_point,
            };
            start += p.elems as usize;
            block
        })
        .collect()
}

/// Materializes one record as an owned [`WeightView`] from the file image
/// — f32 records become dense tensors, quantized records keep their byte
/// payloads (and per-partition affine parameters).
fn gather_owned_weight(bytes: &[u8], record: &TensorRecord) -> Result<WeightView, StoreError> {
    let Some(dtype) = record.dtype.quant() else {
        return Ok(WeightView::F32(gather_owned(bytes, record)?));
    };
    let eb = dtype.elem_bytes();
    let mut data = Vec::with_capacity(record.elems() as usize * eb);
    for p in &record.partitions {
        let start = p.offset as usize;
        data.extend_from_slice(&bytes[start..start + p.elems as usize * eb]);
    }
    Ok(WeightView::Quant(QuantTensor::from_bytes(
        dtype,
        data,
        &record.dims,
        record_blocks(record),
    )?))
}

/// Shape-checks a loaded view against what the model spec requires.
fn check_dims(name: &str, view: &WeightView, dims: &[usize]) -> Result<(), CapsNetError> {
    if view.dims() != dims {
        return Err(CapsNetError::InvalidSpec(format!(
            "stored tensor {name:?} has shape {:?}, model needs {dims:?}",
            view.dims()
        )));
    }
    Ok(())
}

// ── owned loading ───────────────────────────────────────────────────────

/// A fully-materialized (owned) model artifact. Quantized sections stay
/// in their stored byte form (a [`WeightView::Quant`]); use
/// [`StoredModel::tensor`] only for `f32` sections and
/// [`StoredModel::weight`] for the typed view.
#[derive(Debug)]
pub struct StoredModel {
    spec: CapsNetSpec,
    layout: Layout,
    tensors: BTreeMap<String, WeightView>,
}

impl StoredModel {
    /// Reads and verifies `path`, materializing every tensor into owned
    /// memory.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]: i/o, magic/version mismatch, truncation, or
    /// checksum failure.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path)?;
        let meta = parse_and_verify(&bytes)?;
        let mut tensors = BTreeMap::new();
        for r in &meta.records {
            tensors.insert(r.name.clone(), gather_owned_weight(&bytes, r)?);
        }
        Ok(StoredModel {
            spec: meta.spec,
            layout: meta.header.layout,
            tensors,
        })
    }

    /// The stored network specification.
    pub fn spec(&self) -> &CapsNetSpec {
        &self.spec
    }

    /// The artifact's data layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// A stored `f32` tensor by name (`None` for unknown names **and** for
    /// quantized sections — those have no dense tensor to borrow; see
    /// [`StoredModel::weight`]).
    pub fn tensor(&self, name: &str) -> Option<&Tensor> {
        self.tensors.get(name).and_then(WeightView::as_f32)
    }

    /// A stored weight's typed view by name.
    pub fn weight(&self, name: &str) -> Option<&WeightView> {
        self.tensors.get(name)
    }

    /// Rebuilds the network from the stored spec and weights, moving each
    /// tensor out (no second copy of multi-hundred-MB weights — the
    /// `BTreeMap` `WeightSource` impl would clone). Quantized weights move
    /// straight into the network's fused dequant-on-the-fly path for the
    /// layers that stream them; small quantized tensors requested as dense
    /// `f32` (conv kernels, biases) are dequantized here.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches as [`StoreError::CapsNet`].
    pub fn into_capsnet(self) -> Result<CapsNet, StoreError> {
        struct TakeSource(BTreeMap<String, WeightView>);
        impl TakeSource {
            fn take(&mut self, name: &str) -> Result<WeightView, CapsNetError> {
                self.0
                    .remove(name)
                    .ok_or_else(|| CapsNetError::InvalidSpec(format!("missing weight {name:?}")))
            }
        }
        impl WeightSource for TakeSource {
            fn contains(&self, name: &str) -> bool {
                self.0.contains_key(name)
            }
            fn tensor(&mut self, name: &str, dims: &[usize]) -> Result<Tensor, CapsNetError> {
                let view = self.take(name)?;
                check_dims(name, &view, dims)?;
                Ok(match view {
                    WeightView::F32(t) => t,
                    WeightView::Quant(q) => q.dequantize(),
                })
            }
            fn weight(&mut self, name: &str, dims: &[usize]) -> Result<WeightView, CapsNetError> {
                let view = self.take(name)?;
                check_dims(name, &view, dims)?;
                Ok(view)
            }
        }
        Ok(CapsNet::from_views(
            &self.spec,
            &mut TakeSource(self.tensors),
        )?)
    }
}

// ── zero-copy mapped loading ────────────────────────────────────────────

/// The backing storage of a [`MappedModel`]: the live mapping, or (on
/// platforms/files where an aligned `f32` view is impossible) the file
/// image copied into owned words.
enum ArtifactBuf {
    Mapped(Mmap),
    OwnedWords(Vec<f32>),
}

impl ByteBuf for ArtifactBuf {
    fn as_bytes(&self) -> &[u8] {
        match self {
            ArtifactBuf::Mapped(m) => m.as_bytes(),
            // SAFETY: any &[f32] is a valid &[u8] view of the same memory
            // (alignment 1 ≤ 4, length v.len() * 4 in bounds, u8 has no
            // invalid bit patterns); the artifact image is byte-exact in
            // the owned words because the file length is 64-byte aligned.
            ArtifactBuf::OwnedWords(v) => unsafe {
                std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), v.len() * 4)
            },
        }
    }
}

impl TensorBuf for ArtifactBuf {
    fn as_f32(&self) -> &[f32] {
        match self {
            ArtifactBuf::Mapped(m) => {
                let bytes = m.as_bytes();
                // Invariants established at open: 4-aligned base pointer,
                // length a multiple of 4.
                debug_assert_eq!(bytes.as_ptr().align_offset(4), 0);
                debug_assert_eq!(bytes.len() % 4, 0);
                // SAFETY: alignment and length verified at construction
                // (misaligned mappings are converted to OwnedWords); f32
                // has no invalid bit patterns; the mapping is immutable
                // and lives as long as self.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), bytes.len() / 4) }
            }
            ArtifactBuf::OwnedWords(v) => v,
        }
    }
}

/// One vault's stored share of a vault-aligned weight tensor.
#[derive(Debug, Clone)]
pub struct VaultPartition {
    /// Vault index (0-based).
    pub vault: usize,
    /// Rows of the tensor's leading dimension stored in this vault.
    pub rows: usize,
    /// The partition's data, shaped `[rows, trailing dims…]`. A shared
    /// zero-copy view whenever the backing store allows it.
    pub tensor: Tensor,
}

/// A model artifact opened for **zero-copy** access.
///
/// Weight tensors are handed out as [`Tensor::from_shared`] windows over
/// the mapping — no per-tensor allocation, no copy, and repeated opens of
/// the same artifact share the OS page cache. Every checksum (header,
/// table, all tensor data) is verified at open.
pub struct MappedModel {
    buf: Arc<ArtifactBuf>,
    spec: CapsNetSpec,
    layout: Layout,
    records: Vec<TensorRecord>,
    by_name: BTreeMap<String, usize>,
    mapped: bool,
}

impl std::fmt::Debug for MappedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedModel")
            .field("spec", &self.spec.name)
            .field("layout", &self.layout)
            .field("tensors", &self.records.len())
            .field("mapped", &self.mapped)
            .finish()
    }
}

impl MappedModel {
    /// Maps and verifies the artifact at `path`.
    ///
    /// Falls back to an owned in-memory copy when the platform has no
    /// mmap or the mapping cannot be viewed as aligned `f32`s — the
    /// result is then identical in behavior, just not zero-copy (see
    /// [`MappedModel::is_mapped`]).
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]: i/o, magic/version mismatch, truncation, or
    /// checksum failure.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        match map_file(path) {
            Ok(mapping) => {
                let meta = parse_and_verify(mapping.as_bytes())?;
                let bytes = mapping.as_bytes();
                let aligned = bytes.as_ptr().align_offset(std::mem::align_of::<f32>()) == 0
                    && bytes.len() % 4 == 0;
                let (buf, mapped) = if aligned {
                    (ArtifactBuf::Mapped(mapping), true)
                } else {
                    // Misalignment fallback: copy the image into owned
                    // words once; all tensor views then borrow that copy.
                    let mut words = Vec::with_capacity(bytes.len() / 4);
                    extend_f32_from_bytes(&mut words, &bytes[..bytes.len() - bytes.len() % 4]);
                    (ArtifactBuf::OwnedWords(words), false)
                };
                Ok(MappedModel {
                    buf: Arc::new(buf),
                    spec: meta.spec,
                    layout: meta.header.layout,
                    records: meta.records,
                    by_name: meta.by_name,
                    mapped,
                })
            }
            Err(StoreError::MmapUnsupported) => {
                let bytes = std::fs::read(path)?;
                let meta = parse_and_verify(&bytes)?;
                let mut words = Vec::with_capacity(bytes.len() / 4);
                extend_f32_from_bytes(&mut words, &bytes);
                Ok(MappedModel {
                    buf: Arc::new(ArtifactBuf::OwnedWords(words)),
                    spec: meta.spec,
                    layout: meta.header.layout,
                    records: meta.records,
                    by_name: meta.by_name,
                    mapped: false,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// The stored network specification.
    pub fn spec(&self) -> &CapsNetSpec {
        &self.spec
    }

    /// The artifact's data layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// `true` when the artifact is served by a live memory mapping
    /// (`false` after the owned fallback).
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// Length of the backing file image in bytes (the mapped extent, or
    /// the owned copy's size after a fallback).
    pub fn image_len(&self) -> usize {
        match &*self.buf {
            ArtifactBuf::Mapped(m) => m.len(),
            ArtifactBuf::OwnedWords(v) => v.len() * 4,
        }
    }

    /// Stored tensor names, in table order.
    pub fn tensor_names(&self) -> impl Iterator<Item = &str> {
        self.records.iter().map(|r| r.name.as_str())
    }

    fn record(&self, name: &str) -> Result<&TensorRecord, StoreError> {
        self.by_name
            .get(name)
            .map(|&i| &self.records[i])
            .ok_or_else(|| StoreError::MissingTensor(name.to_string()))
    }

    /// The tensor stored under `name` as dense `f32`. Zero-copy (shared
    /// storage) when the section is `f32` with contiguous partitions; an
    /// owned gather otherwise. **Quantized sections are dequantized into an
    /// owned copy** — use [`MappedModel::weight_view`] to keep them in
    /// byte form (and zero-copy).
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingTensor`] for unknown names.
    pub fn tensor(&self, name: &str) -> Result<Tensor, StoreError> {
        match self.weight_view(name)? {
            WeightView::F32(t) => Ok(t),
            WeightView::Quant(q) => Ok(q.dequantize()),
        }
    }

    /// The typed weight view stored under `name`: dense `f32`, or the
    /// quantized bytes with their per-partition affine parameters. Both
    /// kinds are zero-copy windows over the mapping when the stored
    /// partitions are contiguous; the vault-aligned padding case gathers
    /// owned (still without dequantizing).
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingTensor`] for unknown names.
    pub fn weight_view(&self, name: &str) -> Result<WeightView, StoreError> {
        let record = self.record(name)?;
        match record.dtype.quant() {
            None => {
                if record.is_contiguous() {
                    let offset_elems = record.partitions[0].offset as usize / 4;
                    let buf: Arc<dyn TensorBuf> = Arc::clone(&self.buf) as Arc<dyn TensorBuf>;
                    return Ok(WeightView::F32(Tensor::from_shared(
                        buf,
                        offset_elems,
                        &record.dims,
                    )?));
                }
                // Non-contiguous (padded between vault partitions): gather
                // owned.
                let words = self.buf.as_f32();
                let mut data = Vec::with_capacity(record.elems() as usize);
                for p in &record.partitions {
                    let start = p.offset as usize / 4;
                    data.extend_from_slice(&words[start..start + p.elems as usize]);
                }
                Ok(WeightView::F32(Tensor::from_vec(data, &record.dims)?))
            }
            Some(dtype) => {
                if record.is_contiguous() {
                    let offset = record.partitions[0].offset as usize;
                    let buf: Arc<dyn ByteBuf> = Arc::clone(&self.buf) as Arc<dyn ByteBuf>;
                    return Ok(WeightView::Quant(QuantTensor::from_shared(
                        dtype,
                        buf,
                        offset,
                        &record.dims,
                        record_blocks(record),
                    )?));
                }
                Ok(gather_owned_weight(self.buf.as_bytes(), record)?)
            }
        }
    }

    /// The per-vault shares of a stored tensor: one zero-copy view per
    /// stored partition, shaped `[rows, trailing dims…]`. Tensors stored
    /// whole return a single share on vault 0. This is the handle a
    /// `hmc-sim` workload uses to drive per-vault traffic straight off
    /// the artifact.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingTensor`] for unknown names.
    pub fn vault_partitions(&self, name: &str) -> Result<Vec<VaultPartition>, StoreError> {
        let record = self.record(name)?;
        let row_stride: usize = record.dims[1..].iter().product::<usize>().max(1);
        let blocks = record_blocks(record);
        let mut out = Vec::with_capacity(record.partitions.len());
        for (vault, p) in record.partitions.iter().enumerate() {
            let rows = p.elems as usize / row_stride;
            let mut dims = record.dims.clone();
            dims[0] = rows;
            let tensor = match record.dtype.quant() {
                None => {
                    let buf: Arc<dyn TensorBuf> = Arc::clone(&self.buf) as Arc<dyn TensorBuf>;
                    Tensor::from_shared(buf, p.offset as usize / 4, &dims)?
                }
                Some(dtype) => {
                    // One self-contained shard: its own bytes, its own
                    // affine parameters. Dequantized per partition (the
                    // per-vault consumers want dense rows).
                    let buf: Arc<dyn ByteBuf> = Arc::clone(&self.buf) as Arc<dyn ByteBuf>;
                    let block = QuantBlock {
                        start: 0,
                        ..blocks[vault]
                    };
                    QuantTensor::from_shared(dtype, buf, p.offset as usize, &dims, vec![block])?
                        .dequantize()
                }
            };
            out.push(VaultPartition {
                vault,
                rows,
                tensor,
            });
        }
        Ok(out)
    }

    /// Rebuilds a runnable [`CapsNet`] whose weights **borrow** this
    /// mapping (zero-copy where the layout allows). Quantized sections are
    /// handed to the network in byte form — the capsule and decoder layers
    /// dequantize them on the fly inside the fused kernels, so no f32 copy
    /// of a quantized weight is ever materialized. The network holds an
    /// `Arc` to the mapping, so it stays valid after the `MappedModel` is
    /// dropped.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingTensor`] / [`StoreError::CapsNet`] when the
    /// artifact does not contain what the spec requires.
    pub fn capsnet(&self) -> Result<CapsNet, StoreError> {
        struct Source<'a>(&'a MappedModel);
        impl WeightSource for Source<'_> {
            fn contains(&self, name: &str) -> bool {
                self.0.by_name.contains_key(name)
            }
            fn tensor(&mut self, name: &str, dims: &[usize]) -> Result<Tensor, CapsNetError> {
                let t = self
                    .0
                    .tensor(name)
                    .map_err(|e| CapsNetError::InvalidSpec(e.to_string()))?;
                if t.shape().dims() != dims {
                    return Err(CapsNetError::InvalidSpec(format!(
                        "stored tensor {name:?} has shape {:?}, model needs {dims:?}",
                        t.shape().dims()
                    )));
                }
                Ok(t)
            }
            fn weight(&mut self, name: &str, dims: &[usize]) -> Result<WeightView, CapsNetError> {
                let view = self
                    .0
                    .weight_view(name)
                    .map_err(|e| CapsNetError::InvalidSpec(e.to_string()))?;
                check_dims(name, &view, dims)?;
                Ok(view)
            }
        }
        let spec = self.spec.clone();
        Ok(CapsNet::from_views(&spec, &mut Source(self))?)
    }
}

// ── shared artifact handle ──────────────────────────────────────────────

/// A cheaply cloneable handle letting **many consumers wrap one mapping**.
///
/// `MappedModel::open` creates one `mmap` per call; N serve replicas each
/// opening the same path would hold N mappings (the page cache still
/// dedups the physical pages, but each handle re-verifies every checksum
/// and owns its own VMA). A `SharedArtifact` opens and verifies the
/// artifact **once** and shares the single [`MappedModel`] behind an
/// `Arc`: every [`SharedArtifact::capsnet`] call hands out networks whose
/// weight tensors are windows into the *same* buffer, so a whole replica
/// pool serves one physical copy of the weights.
///
/// The handle records the path it was opened from so supervisors can
/// re-open (or roll back to) the same artifact later.
#[derive(Debug, Clone)]
pub struct SharedArtifact {
    model: Arc<MappedModel>,
    path: std::path::PathBuf,
}

impl SharedArtifact {
    /// Opens and fully verifies the artifact at `path` once; clones of the
    /// returned handle share the mapping.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from [`MappedModel::open`].
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Ok(SharedArtifact {
            model: Arc::new(MappedModel::open(path)?),
            path: path.to_path_buf(),
        })
    }

    /// The shared mapped model.
    pub fn model(&self) -> &MappedModel {
        &self.model
    }

    /// The path the artifact was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The stored network specification.
    pub fn spec(&self) -> &CapsNetSpec {
        self.model.spec()
    }

    /// `true` when the shared image is a live memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.model.is_mapped()
    }

    /// Bytes of the single shared file image (counted **once**, however
    /// many handles or networks wrap it).
    pub fn image_len(&self) -> usize {
        self.model.image_len()
    }

    /// How many `SharedArtifact` handles currently share this mapping.
    /// Networks built by [`SharedArtifact::capsnet`] keep the underlying
    /// buffer alive independently of this count.
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.model)
    }

    /// Builds a runnable network off the shared mapping — same semantics
    /// as [`MappedModel::capsnet`], but every network from every clone of
    /// this handle shares one backing buffer.
    ///
    /// # Errors
    ///
    /// See [`MappedModel::capsnet`].
    pub fn capsnet(&self) -> Result<CapsNet, StoreError> {
        self.model.capsnet()
    }
}
