//! Read-only file memory mapping via direct `libc` FFI.
//!
//! The workspace has no registry access, so instead of the `memmap2` crate
//! this module declares the two syscall wrappers it needs (`mmap`,
//! `munmap`) against the C library the Rust standard library already
//! links. Unix-only; on other platforms [`map_file`] reports
//! [`StoreError::MmapUnsupported`] and callers fall back to owned reads.

use crate::error::StoreError;

/// A read-only, private memory mapping of an entire file. Unmapped on
/// drop. The mapping is immutable for its lifetime, so sharing the bytes
/// across threads is sound (`Send + Sync` below).
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut core::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is PROT_READ and never handed out mutably; the
// pointer is owned by this struct alone and freed exactly once in Drop.
unsafe impl Send for Mmap {}
// SAFETY: same argument as Send — the bytes are immutable for the
// mapping's whole lifetime, so shared references are sound across threads.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
    }

    /// Mapped length in bytes.
    #[allow(dead_code)] // exercised by tests; kept for API symmetry
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for an empty mapping.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(unix)]
mod sys {
    use super::{Mmap, StoreError};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 0x1;
    const MAP_PRIVATE: i32 = 0x2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    pub(super) fn map(file: &std::fs::File, len: usize) -> Result<Mmap, StoreError> {
        if len == 0 {
            // mmap(len = 0) is EINVAL; model artifacts are never empty, but
            // return the canonical empty mapping rather than an OS error.
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: plain PROT_READ/MAP_PRIVATE mapping of an open fd; the
        // kernel validates every argument and we check the sentinel below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(StoreError::Io(std::io::Error::last_os_error()));
        }
        Ok(Mmap { ptr, len })
    }

    pub(super) fn unmap(ptr: *mut core::ffi::c_void, len: usize) {
        if len > 0 {
            // SAFETY: ptr/len came from a successful mmap owned by the
            // dropping Mmap; munmap failure on a valid mapping is
            // unreachable, and there is nothing useful to do with it in
            // Drop anyway.
            unsafe {
                let _ = munmap(ptr, len);
            }
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        sys::unmap(self.ptr, self.len);
    }
}

/// Rejects a mapping whose file changed size between the pre-map stat and
/// the post-map re-stat.
///
/// A mapping is sized from `metadata().len()`, but nothing stops another
/// process from truncating or rewriting the file between that stat and the
/// `mmap` call. A mapping that extends past the file's real end SIGBUSes
/// the first reader that touches the missing pages — with a multi-replica
/// supervisor mapping one artifact N times, that is every replica at once.
/// Re-statting the *open descriptor* after the map closes that window: the
/// mapping's extent is fixed at map time, so a post-map length equal to the
/// pre-map length proves the bytes behind the mapping all exist.
///
/// Mutations *after* this check are excluded by the writer contract
/// instead: artifacts are only ever replaced via `ModelWriter`'s atomic
/// temp-file + `rename` (see `crates/store/src/writer.rs`), which swaps the
/// directory entry and never touches the mapped inode — a reader's mapping
/// keeps the old file alive until unmapped. Rollout code must never rewrite
/// an artifact in place.
///
/// # Errors
///
/// [`StoreError::Corrupt`] when the lengths disagree.
pub(crate) fn ensure_len_stable(mapped_len: usize, len_after_map: u64) -> Result<(), StoreError> {
    if mapped_len as u64 != len_after_map {
        return Err(StoreError::Corrupt(format!(
            "file resized during mapping: mapped {mapped_len} bytes, file now {len_after_map} \
             (artifact replaced non-atomically? writers must use atomic temp+rename)"
        )));
    }
    Ok(())
}

/// Maps `path` read-only in its entirety.
///
/// The mapped length is validated against a re-stat of the open descriptor
/// **after** the map (see [`ensure_len_stable`]), so a concurrently
/// truncated or non-atomically overwritten artifact surfaces as a typed
/// [`StoreError::Corrupt`] instead of a SIGBUS in whoever reads the
/// mapping first.
///
/// # Errors
///
/// [`StoreError::Io`] when the file cannot be opened, statted, or mapped;
/// [`StoreError::Corrupt`] when the file's length changed while mapping;
/// [`StoreError::MmapUnsupported`] on non-Unix targets (callers fall back
/// to owned reads).
pub fn map_file(path: &std::path::Path) -> Result<Mmap, StoreError> {
    #[cfg(unix)]
    {
        let file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| StoreError::Corrupt("file larger than address space".into()))?;
        let mapping = sys::map(&file, len)?;
        ensure_len_stable(mapping.len(), file.metadata()?.len())?;
        Ok(mapping)
    }
    #[cfg(not(unix))]
    {
        let _ = path;
        Err(StoreError::MmapUnsupported)
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents_read_only() {
        let path = std::env::temp_dir().join(format!("pim_store_mmap_test_{}", std::process::id()));
        std::fs::write(&path, b"hello mapping").unwrap();
        let m = map_file(&path).unwrap();
        assert_eq!(m.as_bytes(), b"hello mapping");
        assert_eq!(m.len(), 13);
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = map_file(std::path::Path::new("/nonexistent/pim_store_nope")).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }

    #[test]
    fn length_instability_is_corrupt_not_a_crash() {
        // The race itself (truncation between stat and map) cannot be
        // provoked deterministically from a test, so the check is factored
        // out and pinned here: any disagreement between the mapped length
        // and the post-map file length must surface as a typed Corrupt.
        ensure_len_stable(4096, 4096).unwrap();
        ensure_len_stable(0, 0).unwrap();
        let err = ensure_len_stable(4096, 1024).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
        assert!(err.to_string().contains("resized during mapping"));
        // Growth is just as fatal: the header's committed file_len no
        // longer describes the inode either way.
        assert!(ensure_len_stable(1024, 4096).is_err());
    }
}
