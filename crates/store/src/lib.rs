//! **pim-store** — zero-copy model persistence for the PIM-CapsNet
//! reproduction.
//!
//! The paper's central observation is that CapsNet weights and routing
//! intermediates dwarf on-chip storage, so *where data lives* is the
//! architecture: PIM-CapsNet distributes the routing procedure's operands
//! across HMC vaults (§5.1) and lays vault data out bank-by-bank (§5.3.1).
//! This crate is the serving-tier analogue of that discipline. Instead of
//! rebuilding multi-hundred-MB weight tensors from an RNG on every process
//! start, models are persisted once as a **versioned, checksummed binary
//! artifact** and loaded back either
//!
//! * **owned** ([`StoredModel`]): read + verify + materialize, or
//! * **zero-copy** ([`MappedModel`]): `mmap` the artifact and run the
//!   network off [`pim_tensor::Tensor::from_shared`] views borrowing the
//!   page cache — cold loads are bounded by checksum bandwidth rather than
//!   RNG throughput, warm loads by page-table work, and N processes
//!   serving the same model share one physical copy of the weights, or
//! * **shared** ([`SharedArtifact`]): a cheaply cloneable handle over one
//!   [`MappedModel`], so N in-process serve replicas wrap a *single*
//!   mapping (verified once) instead of N mappings of the same file.
//!
//! The optional **vault-aligned layout** ([`Layout::VaultAligned`]) stores
//! eligible weight tensors pre-partitioned along their leading dimension
//! into [`DEFAULT_VAULT_WAYS`] aligned sections, using the same even-shares
//! rule as `pim_capsnet::distribution::vault_shares` — the stored bytes
//! mirror the paper's per-vault weight partitioning, and
//! [`MappedModel::vault_partitions`] carves the per-vault shares out of
//! the mapping with zero copies (e.g. to drive an `hmc-sim` workload
//! straight from an artifact).
//!
//! Format details live in [`format`]; every artifact carries a magic,
//! a format version, and hand-rolled XXH64-style checksums ([`hash`])
//! over the header, the section table, and each tensor's data, all
//! verified on open. Writes are atomic (temp file + rename), so a serving
//! process hot-reloading a path can never observe a torn artifact.
//!
//! # Example
//!
//! ```
//! use capsnet::{CapsNet, CapsNetSpec, ExactMath};
//! use pim_store::{MappedModel, ModelWriter};
//!
//! let dir = std::env::temp_dir().join(format!("pim_store_doc_{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("tiny.pimcaps");
//!
//! let net = CapsNet::seeded(&CapsNetSpec::tiny_for_tests(), 7).unwrap();
//! ModelWriter::vault_aligned().save(&net, &path).unwrap();
//!
//! let mapped = MappedModel::open(&path).unwrap();
//! let loaded = mapped.capsnet().unwrap();
//! let images = pim_tensor::Tensor::uniform(&[2, 1, 12, 12], 0.0, 1.0, 9);
//! let a = net.forward(&images, &ExactMath).unwrap();
//! let b = loaded.forward(&images, &ExactMath).unwrap();
//! assert_eq!(a.class_norms_sq, b.class_norms_sq); // bit-identical
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

mod error;
pub mod format;
pub mod hash;
mod mmap;
mod reader;
mod writer;

pub use error::StoreError;
pub use format::{
    Layout, Partition, QuantParams, SectionDtype, TensorRecord, DATA_ALIGN, DEFAULT_VAULT_WAYS,
    FORMAT_VERSION, FORMAT_VERSION_F32,
};
pub use reader::{MappedModel, SharedArtifact, StoredModel, VaultPartition};
pub use writer::{ModelWriter, QuantSpec, SaveReport};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, StoreError>;
