//! Typed errors for artifact writing, reading and mapping.

use capsnet::CapsNetError;
use pim_tensor::TensorError;

/// Everything that can go wrong persisting or loading a model artifact.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem / syscall failure.
    Io(std::io::Error),
    /// The file does not start with the artifact magic.
    BadMagic,
    /// The artifact's format version is not one this reader understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file is shorter than its metadata commits to.
    Truncated {
        /// Bytes the metadata requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// Structural or checksum corruption (detail in the message).
    Corrupt(String),
    /// A (format-valid) tensor section declares an element type this
    /// reader does not implement — a future format's artifact, not
    /// corruption.
    UnsupportedDtype {
        /// Tensor whose section carries the unknown dtype.
        name: String,
        /// The dtype code found.
        code: u8,
    },
    /// A tensor the model needs is not in the artifact.
    MissingTensor(String),
    /// Memory mapping is not available on this platform.
    MmapUnsupported,
    /// Rebuilding the network from loaded weights failed.
    CapsNet(CapsNetError),
    /// Tensor construction failed.
    Tensor(TensorError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a PIM-CapsNet model artifact (bad magic)"),
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported artifact format version {found}")
            }
            StoreError::Truncated { expected, actual } => {
                write!(
                    f,
                    "artifact truncated: need {expected} bytes, have {actual}"
                )
            }
            StoreError::Corrupt(msg) => write!(f, "artifact corrupt: {msg}"),
            StoreError::UnsupportedDtype { name, code } => {
                write!(f, "tensor {name:?} uses unsupported dtype code {code}")
            }
            StoreError::MissingTensor(name) => write!(f, "artifact is missing tensor {name:?}"),
            StoreError::MmapUnsupported => {
                write!(f, "memory mapping unsupported on this platform")
            }
            StoreError::CapsNet(e) => write!(f, "model rebuild failed: {e}"),
            StoreError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::CapsNet(e) => Some(e),
            StoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CapsNetError> for StoreError {
    fn from(e: CapsNetError) -> Self {
        StoreError::CapsNet(e)
    }
}

impl From<TensorError> for StoreError {
    fn from(e: TensorError) -> Self {
        StoreError::Tensor(e)
    }
}
