//! Hand-rolled 64-bit content checksum in the XXH64 mold.
//!
//! The build environment has no registry access, so instead of a `xxhash`
//! dependency this module implements the same construction: four parallel
//! 64-bit accumulation lanes over 32-byte stripes, multiply-rotate mixing
//! with the XXH64 prime constants, a tail loop, and a final avalanche.
//! It is **not** byte-for-byte XXH64 (no seed plumbing, simplified lane
//! merge) — artifacts carry the format version, so the only requirements
//! are speed, determinism, and strong bit-flip sensitivity, all of which
//! the tests below pin down.

/// The five XXH64 prime multipliers.
const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

/// Streaming checksum state. Feed bytes with [`Hasher::update`], read the
/// digest with [`Hasher::finish`]; one-shot callers use [`hash64`].
#[derive(Debug, Clone)]
pub struct Hasher {
    lanes: [u64; 4],
    /// Buffered tail (fewer than 32 bytes).
    buf: [u8; 32],
    buf_len: usize,
    total: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        Hasher {
            lanes: [P1.wrapping_add(P2), P2, 0, 0u64.wrapping_sub(P1)],
            buf: [0; 32],
            buf_len: 0,
            total: 0,
        }
    }

    fn round(lane: u64, input: u64) -> u64 {
        lane.wrapping_add(input.wrapping_mul(P2))
            .rotate_left(31)
            .wrapping_mul(P1)
    }

    fn consume_stripe(&mut self, stripe: &[u8]) {
        debug_assert_eq!(stripe.len(), 32);
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            // LINT-ALLOW(R2): stripe is chunked to exactly 32 bytes; i*8..(i+1)*8 is always 8 in-bounds bytes
            let word = u64::from_le_bytes(stripe[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            *lane = Self::round(*lane, word);
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 32 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 32 {
                return;
            }
            let stripe = self.buf;
            self.consume_stripe(&stripe);
            self.buf_len = 0;
        }
        let mut chunks = rest.chunks_exact(32);
        for stripe in &mut chunks {
            self.consume_stripe(stripe);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// The digest over everything absorbed so far (the hasher stays
    /// usable; this is a pure read).
    pub fn finish(&self) -> u64 {
        let mut acc = if self.total >= 32 {
            let [l1, l2, l3, l4] = self.lanes;
            let mut a = l1
                .rotate_left(1)
                .wrapping_add(l2.rotate_left(7))
                .wrapping_add(l3.rotate_left(12))
                .wrapping_add(l4.rotate_left(18));
            for lane in [l1, l2, l3, l4] {
                a = (a ^ Self::round(0, lane)).wrapping_mul(P1).wrapping_add(P4);
            }
            a
        } else {
            P5
        };
        acc = acc.wrapping_add(self.total);
        // Tail bytes, 8 / 4 / 1 at a time.
        let tail = &self.buf[..self.buf_len];
        let mut i = 0;
        while i + 8 <= tail.len() {
            // LINT-ALLOW(R2): the loop condition i + 8 <= tail.len() proves the slice is 8 bytes
            let word = u64::from_le_bytes(tail[i..i + 8].try_into().expect("8 bytes"));
            acc = (acc ^ Self::round(0, word))
                .rotate_left(27)
                .wrapping_mul(P1)
                .wrapping_add(P4);
            i += 8;
        }
        if i + 4 <= tail.len() {
            let word = u64::from(u32::from_le_bytes(
                // LINT-ALLOW(R2): the surrounding branch proves at least 4 bytes remain
                tail[i..i + 4].try_into().expect("4 bytes"),
            ));
            acc = (acc ^ word.wrapping_mul(P1))
                .rotate_left(23)
                .wrapping_mul(P2)
                .wrapping_add(P3);
            i += 4;
        }
        for &b in &tail[i..] {
            acc = (acc ^ u64::from(b).wrapping_mul(P5))
                .rotate_left(11)
                .wrapping_mul(P1);
        }
        // Final avalanche.
        acc ^= acc >> 33;
        acc = acc.wrapping_mul(P2);
        acc ^= acc >> 29;
        acc = acc.wrapping_mul(P3);
        acc ^= acc >> 32;
        acc
    }
}

/// One-shot checksum of `data`.
pub fn hash64(data: &[u8]) -> u64 {
    let mut h = Hasher::new();
    h.update(data);
    h.finish()
}

/// One-shot checksum of an `f32` slice's raw memory, **zero-copy**: the
/// slice is reinterpreted in place, never materialized as a byte vector.
/// This is the digest the serving tier's content-addressed response cache
/// keys on (hashing a request tensor's ~kB–MB of samples per lookup), so
/// avoiding the copy matters.
///
/// Equals [`hash64`] over the slice's native-endian byte view; every
/// artifact this workspace writes is little-endian native, so the store
/// and the cache agree on one digest per content.
pub fn hash_f32(data: &[f32]) -> u64 {
    // SAFETY: `u8` has alignment 1, every initialized `f32` is four valid
    // bytes, and the view covers exactly the slice's memory.
    let bytes = unsafe {
        std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data))
    };
    hash64(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_output_vectors() {
        // Exact digests, pinned so the construction can never drift: the
        // response cache's keys and every artifact checksum depend on
        // these staying bit-stable across refactors. (The short-input
        // vectors coincide with reference XXH64 at seed 0; inputs ≥ 32
        // bytes diverge by design — the lane merge is simplified.)
        assert_eq!(hash64(b""), 0xef46_db37_51d8_e999);
        assert_eq!(hash64(b"abc"), 0x44bc_2cf5_ad77_0999);
        assert_eq!(hash64(&[0u8; 32]), 0xf6e9_be5d_7063_2cf5);
        let seq: Vec<u8> = (0..=255u8).collect();
        assert_eq!(hash64(&seq), 0x1fac_be84_06cd_904b);
        assert_eq!(hash_f32(&[0.0f32, 1.0, -1.0, 0.5]), 0xed35_f53c_7b41_8ac1);
    }

    #[test]
    fn hash_f32_is_the_zero_copy_byte_view() {
        let data = [0.25f32, -7.5, 3.25e-3, f32::MIN_POSITIVE, 1234.5];
        let copied: Vec<u8> = data.iter().flat_map(|f| f.to_ne_bytes()).collect();
        assert_eq!(hash_f32(&data), hash64(&copied));
        assert_eq!(hash_f32(&[]), hash64(b""));
        // -0.0 and 0.0 differ bitwise, so they must digest differently
        // (the cache keys on content bits, not float equality).
        assert_ne!(hash_f32(&[0.0f32]), hash_f32(&[-0.0f32]));
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(hash64(b"abc"), hash64(b"abc"));
        assert_ne!(hash64(b"abc"), hash64(b"abd"));
        assert_ne!(hash64(b"abc"), hash64(b"ab"));
        assert_ne!(hash64(b""), hash64(b"\0"));
        // Length extension with zeros must change the digest.
        assert_ne!(hash64(&[0u8; 31]), hash64(&[0u8; 32]));
        assert_ne!(hash64(&[0u8; 32]), hash64(&[0u8; 33]));
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..203u32)
            .map(|i| (i.wrapping_mul(37) % 251) as u8)
            .collect();
        let whole = hash64(&data);
        for split in [0, 1, 7, 31, 32, 33, 64, 100, 202, 203] {
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
        // Byte-at-a-time too.
        let mut h = Hasher::new();
        for &b in &data {
            h.update(&[b]);
        }
        assert_eq!(h.finish(), whole);
    }

    #[test]
    fn single_bit_flips_avalanche() {
        // Every single-bit corruption of a 96-byte message must flip a
        // substantial number of digest bits (checksum quality the
        // corruption tests rely on).
        let base: Vec<u8> = (0..96u8).collect();
        let h0 = hash64(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupt = base.clone();
                corrupt[byte] ^= 1 << bit;
                let h1 = hash64(&corrupt);
                let flipped = (h0 ^ h1).count_ones();
                assert!(
                    flipped >= 8,
                    "byte {byte} bit {bit}: only {flipped} digest bits changed"
                );
            }
        }
    }
}
