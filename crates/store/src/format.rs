//! The on-disk artifact format: header, spec codec, tensor section table.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header (64 B): magic "PIMCAPS\0" · version · layout · vaults │
//! │                tensor count · spec/table offsets · file len  │
//! │                header checksum                               │
//! ├──────────────────────────────────────────────────────────────┤
//! │ spec: the CapsNetSpec, hand-rolled little-endian binary,    │
//! │       followed by an 8-byte spec checksum                    │
//! ├──────────────────────────────────────────────────────────────┤
//! │ section table: per tensor — name · dtype · dims ·            │
//! │                partitions (offset, elems[, scale, zp])… ·    │
//! │                data checksum … then a table checksum         │
//! ├──────────────────────────────────────────────────────────────┤
//! │ data sections: little-endian payloads (f32 words, int8       │
//! │                bytes, or binary16 pairs), every partition    │
//! │                64-byte aligned (zero padding between)        │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian. Data offsets are absolute file offsets
//! and multiples of [`DATA_ALIGN`], so an mmapped file can hand out `&[f32]`
//! views directly (the mapping base is page-aligned). Checksums are the
//! [`crate::hash`] 64-bit digest.
//!
//! # Versions
//!
//! * **v1** — every section is `f32`. Still written whenever no tensor is
//!   quantized, so unquantized artifacts stay byte-identical to what v1
//!   writers produced, and still read by this crate.
//! * **v2** — adds quantized section dtypes: `int8` (affine, with a
//!   per-partition `scale`/`zero_point` pair inline in the table record,
//!   so every vault shard stays self-contained) and `fp16` (IEEE binary16,
//!   no parameters). `f32` records encode identically in both versions.

use capsnet::{CapsNetSpec, RoutingAlgorithm};
use pim_tensor::QuantDType;

use crate::error::StoreError;

/// Artifact magic bytes.
pub const MAGIC: [u8; 8] = *b"PIMCAPS\0";
/// Current format version (v2: quantized section dtypes).
pub const FORMAT_VERSION: u32 = 2;
/// The original all-`f32` format version, still emitted for unquantized
/// artifacts (byte-identical output keeps old readers working).
pub const FORMAT_VERSION_F32: u32 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 64;
/// Alignment of every tensor-partition data offset (and of the total file
/// length). 64 bytes covers a cache line and any SIMD load the kernels
/// use, and divides the 4 KiB pages mmap hands back.
pub const DATA_ALIGN: usize = 64;
/// The number of weight partitions the vault-aligned layout produces per
/// eligible tensor: one per vault, matching the 16 PEs/banks per vault of
/// the paper's intra-vault design (`hmc-sim` geometry, §5.2.1).
pub const DEFAULT_VAULT_WAYS: usize = 16;

/// How tensor data is laid out in the data area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Every tensor is one contiguous section.
    Packed,
    /// Tensors whose leading dimension holds at least `vaults` rows are
    /// split into `vaults` partitions along that dimension using the same
    /// even-shares rule as `pim_capsnet::distribution::vault_shares`, each
    /// partition [`DATA_ALIGN`]-aligned — the stored image of the paper's
    /// per-vault weight partitioning, so per-vault slices can be carved
    /// out of the mapped file with zero copies.
    VaultAligned {
        /// Number of partitions (vault ways).
        vaults: usize,
    },
}

impl Layout {
    /// Wire encoding of the layout discriminant.
    pub(crate) fn code(&self) -> u32 {
        match self {
            Layout::Packed => 0,
            Layout::VaultAligned { .. } => 1,
        }
    }
}

/// Rounds `offset` up to the next [`DATA_ALIGN`] boundary.
pub fn align_up(offset: usize) -> usize {
    offset.div_ceil(DATA_ALIGN) * DATA_ALIGN
}

/// One stored partition of a tensor's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Absolute file offset of the partition's first byte (multiple of
    /// [`DATA_ALIGN`]).
    pub offset: u64,
    /// Elements in the partition (element size per [`SectionDtype`]).
    pub elems: u64,
}

/// Element type of a stored tensor section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionDtype {
    /// IEEE-754 single precision — the only v1 dtype.
    F32,
    /// Affine int8 with per-partition scale/zero-point (v2+).
    I8,
    /// IEEE-754 binary16 (v2+).
    F16,
}

impl SectionDtype {
    /// Wire code of the dtype.
    pub fn code(self) -> u8 {
        match self {
            SectionDtype::F32 => DTYPE_F32,
            SectionDtype::I8 => DTYPE_I8,
            SectionDtype::F16 => DTYPE_F16,
        }
    }

    /// Stored bytes per element.
    pub fn elem_bytes(self) -> usize {
        match self {
            SectionDtype::F32 => 4,
            SectionDtype::I8 => 1,
            SectionDtype::F16 => 2,
        }
    }

    /// The quantized element type, when this section is quantized.
    pub fn quant(self) -> Option<QuantDType> {
        match self {
            SectionDtype::F32 => None,
            SectionDtype::I8 => Some(QuantDType::I8),
            SectionDtype::F16 => Some(QuantDType::F16),
        }
    }
}

impl From<QuantDType> for SectionDtype {
    fn from(d: QuantDType) -> Self {
        match d {
            QuantDType::I8 => SectionDtype::I8,
            QuantDType::F16 => SectionDtype::F16,
        }
    }
}

/// The affine dequantization parameters of one stored int8 partition
/// (inline in its table record, so a vault shard is self-contained).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Affine scale.
    pub scale: f32,
    /// Affine zero point.
    pub zero_point: i32,
}

/// One tensor's section-table record.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorRecord {
    /// Canonical weight name (see `CapsNet::named_weights`).
    pub name: String,
    /// Stored element type.
    pub dtype: SectionDtype,
    /// Logical tensor dims (padding lives between partitions, never inside
    /// the recorded element counts).
    pub dims: Vec<usize>,
    /// The stored partitions, in logical element order.
    pub partitions: Vec<Partition>,
    /// Per-partition affine parameters — parallel to `partitions` for
    /// [`SectionDtype::I8`], empty otherwise.
    pub quant: Vec<QuantParams>,
    /// Checksum over the tensor's logical data bytes (partitions
    /// concatenated, padding excluded).
    pub checksum: u64,
}

impl TensorRecord {
    /// Total logical elements.
    pub fn elems(&self) -> u64 {
        self.partitions.iter().map(|p| p.elems).sum()
    }

    /// Stored bytes per element.
    pub fn elem_bytes(&self) -> u64 {
        self.dtype.elem_bytes() as u64
    }

    /// `true` when the partitions tile one contiguous byte range (so the
    /// whole tensor can be viewed zero-copy, not just its partitions).
    pub fn is_contiguous(&self) -> bool {
        self.partitions
            .windows(2)
            .all(|w| w[0].offset + w[0].elems * self.elem_bytes() == w[1].offset)
    }
}

/// The parsed artifact header.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Format version.
    pub version: u32,
    /// Data layout.
    pub layout: Layout,
    /// Tensor count.
    pub tensor_count: u32,
    /// Spec byte length (the spec always starts at [`HEADER_LEN`]).
    pub spec_len: u64,
    /// Section-table offset.
    pub table_off: u64,
    /// Section-table byte length (records plus trailing checksum).
    pub table_len: u64,
    /// Total file length the header commits to.
    pub file_len: u64,
}

impl Header {
    /// Serializes the header (exactly [`HEADER_LEN`] bytes, checksum last).
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&self.version.to_le_bytes());
        out[12..16].copy_from_slice(&self.layout.code().to_le_bytes());
        let vaults = match self.layout {
            Layout::Packed => 0u32,
            Layout::VaultAligned { vaults } => vaults as u32,
        };
        out[16..20].copy_from_slice(&vaults.to_le_bytes());
        out[20..24].copy_from_slice(&self.tensor_count.to_le_bytes());
        out[24..32].copy_from_slice(&self.spec_len.to_le_bytes());
        out[32..40].copy_from_slice(&self.table_off.to_le_bytes());
        out[40..48].copy_from_slice(&self.table_len.to_le_bytes());
        out[48..56].copy_from_slice(&self.file_len.to_le_bytes());
        let checksum = crate::hash::hash64(&out[..56]);
        out[56..64].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses and validates a header from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when `bytes` is shorter than the header,
    /// [`StoreError::BadMagic`] / [`StoreError::UnsupportedVersion`] /
    /// [`StoreError::Corrupt`] for the respective violations.
    pub fn decode(bytes: &[u8]) -> Result<Header, StoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                expected: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[0..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        // LINT-ALLOW(R2): fixed-width header slice: the length check at fn entry proves 64 bytes
        let stored = u64::from_le_bytes(bytes[56..64].try_into().expect("8 bytes"));
        let computed = crate::hash::hash64(&bytes[..56]);
        if stored != computed {
            return Err(StoreError::Corrupt("header checksum mismatch".into()));
        }
        // LINT-ALLOW(R2): fixed-width header slice: the length check at fn entry proves 64 bytes
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version == 0 || version > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        // LINT-ALLOW(R2): fixed-width header slice: the length check at fn entry proves 64 bytes
        let layout_code = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        // LINT-ALLOW(R2): fixed-width header slice: the length check at fn entry proves 64 bytes
        let vaults = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
        let layout = match layout_code {
            0 => Layout::Packed,
            1 if vaults >= 1 => Layout::VaultAligned {
                vaults: vaults as usize,
            },
            other => {
                return Err(StoreError::Corrupt(format!(
                    "unknown layout code {other} (vaults {vaults})"
                )))
            }
        };
        Ok(Header {
            version,
            layout,
            // LINT-ALLOW(R2): fixed-width header slices: the length check at fn entry proves 64 bytes
            tensor_count: u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes")),
            // LINT-ALLOW(R2): fixed-width header slice, same 64-byte bound
            spec_len: u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")),
            // LINT-ALLOW(R2): fixed-width header slice, same 64-byte bound
            table_off: u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes")),
            // LINT-ALLOW(R2): fixed-width header slice, same 64-byte bound
            table_len: u64::from_le_bytes(bytes[40..48].try_into().expect("8 bytes")),
            // LINT-ALLOW(R2): fixed-width header slice, same 64-byte bound
            file_len: u64::from_le_bytes(bytes[48..56].try_into().expect("8 bytes")),
        })
    }
}

// ── little-endian cursor helpers ────────────────────────────────────────

/// Bounded little-endian reader over a byte slice.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(StoreError::Truncated {
                expected: (self.pos as u64).saturating_add(n as u64),
                actual: self.bytes.len() as u64,
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, StoreError> {
        // LINT-ALLOW(R2): take(2) just bounds-checked the slice to exactly 2 bytes
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StoreError> {
        // LINT-ALLOW(R2): take(4) just bounds-checked the slice to exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        // LINT-ALLOW(R2): take(8) just bounds-checked the slice to exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn f32(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub(crate) fn str(&mut self, len: usize) -> Result<String, StoreError> {
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("non-UTF-8 string in artifact".into()))
    }

    pub(crate) fn position(&self) -> usize {
        self.pos
    }
}

// ── spec codec ──────────────────────────────────────────────────────────

fn push_u32(out: &mut Vec<u8>, v: usize) {
    // LINT-ALLOW(R2): callers pass lengths of in-memory spec fields, all far below u32::MAX
    out.extend_from_slice(&u32::try_from(v).expect("spec field fits u32").to_le_bytes());
}

/// Serializes a [`CapsNetSpec`] into the artifact's binary spec section.
pub fn encode_spec(spec: &CapsNetSpec) -> Vec<u8> {
    let mut out = Vec::new();
    push_u32(&mut out, spec.name.len());
    out.extend_from_slice(spec.name.as_bytes());
    for field in [
        spec.input_channels,
        spec.input_hw.0,
        spec.input_hw.1,
        spec.conv1_channels,
        spec.conv1_kernel,
        spec.conv1_stride,
        spec.primary_channels,
        spec.cl_dim,
        spec.primary_kernel,
        spec.primary_stride,
        spec.h_caps,
        spec.ch_dim,
        spec.routing_iterations,
    ] {
        push_u32(&mut out, field);
    }
    out.push(match spec.routing {
        RoutingAlgorithm::Dynamic => 0,
        RoutingAlgorithm::Em => 1,
    });
    out.push(u8::from(spec.batch_shared_routing));
    out.extend_from_slice(&spec.routing_sharpness.to_bits().to_le_bytes());
    push_u32(&mut out, spec.decoder_dims.len());
    for &d in &spec.decoder_dims {
        push_u32(&mut out, d);
    }
    out
}

/// Parses the binary spec section back into a [`CapsNetSpec`].
///
/// # Errors
///
/// [`StoreError::Truncated`] / [`StoreError::Corrupt`] on malformed input.
pub fn decode_spec(bytes: &[u8]) -> Result<CapsNetSpec, StoreError> {
    let mut c = Cursor::new(bytes);
    let name_len = c.u32()? as usize;
    let name = c.str(name_len)?;
    let mut fields = [0usize; 13];
    for f in &mut fields {
        *f = c.u32()? as usize;
    }
    let routing = match c.u8()? {
        0 => RoutingAlgorithm::Dynamic,
        1 => RoutingAlgorithm::Em,
        other => {
            return Err(StoreError::Corrupt(format!(
                "unknown routing algorithm code {other}"
            )))
        }
    };
    let batch_shared_routing = c.u8()? != 0;
    let routing_sharpness = c.f32()?;
    let decoder_count = c.u32()? as usize;
    if decoder_count > 1024 {
        return Err(StoreError::Corrupt(format!(
            "implausible decoder layer count {decoder_count}"
        )));
    }
    let mut decoder_dims = Vec::with_capacity(decoder_count);
    for _ in 0..decoder_count {
        decoder_dims.push(c.u32()? as usize);
    }
    if c.position() != bytes.len() {
        return Err(StoreError::Corrupt("trailing bytes after spec".into()));
    }
    Ok(CapsNetSpec {
        name,
        input_channels: fields[0],
        input_hw: (fields[1], fields[2]),
        conv1_channels: fields[3],
        conv1_kernel: fields[4],
        conv1_stride: fields[5],
        primary_channels: fields[6],
        cl_dim: fields[7],
        primary_kernel: fields[8],
        primary_stride: fields[9],
        h_caps: fields[10],
        ch_dim: fields[11],
        routing_iterations: fields[12],
        routing,
        decoder_dims,
        routing_sharpness,
        batch_shared_routing,
    })
}

// ── section-table codec ─────────────────────────────────────────────────

/// dtype code for `f32` (the only supported element type in v1).
const DTYPE_F32: u8 = 1;
/// dtype code for affine int8 sections (v2+).
const DTYPE_I8: u8 = 2;
/// dtype code for binary16 sections (v2+).
const DTYPE_F16: u8 = 3;

/// Serializes the section table (records then table checksum). `f32`
/// records encode byte-identically in every version; int8 records carry a
/// `(scale, zero_point)` pair after each partition's `(offset, elems)`.
pub fn encode_table(records: &[TensorRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        out.extend_from_slice(
            &u16::try_from(r.name.len())
                // LINT-ALLOW(R2): name length is capped by the writer's validation before encoding
                .expect("weight names are short")
                .to_le_bytes(),
        );
        out.extend_from_slice(r.name.as_bytes());
        out.push(r.dtype.code());
        // LINT-ALLOW(R2): rank is capped at MAX_RANK (well under 255) by spec validation
        out.push(u8::try_from(r.dims.len()).expect("rank fits u8"));
        for &d in &r.dims {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        out.extend_from_slice(
            &u32::try_from(r.partitions.len())
                // LINT-ALLOW(R2): partition count is bounded by the vault count, a u32 by construction
                .expect("partition count fits u32")
                .to_le_bytes(),
        );
        if r.dtype == SectionDtype::I8 {
            assert_eq!(
                r.quant.len(),
                r.partitions.len(),
                "int8 record needs one affine parameter pair per partition"
            );
        }
        for (i, p) in r.partitions.iter().enumerate() {
            out.extend_from_slice(&p.offset.to_le_bytes());
            out.extend_from_slice(&p.elems.to_le_bytes());
            if r.dtype == SectionDtype::I8 {
                out.extend_from_slice(&r.quant[i].scale.to_bits().to_le_bytes());
                out.extend_from_slice(&r.quant[i].zero_point.to_le_bytes());
            }
        }
        out.extend_from_slice(&r.checksum.to_le_bytes());
    }
    let table_checksum = crate::hash::hash64(&out);
    out.extend_from_slice(&table_checksum.to_le_bytes());
    out
}

/// Parses and validates the section table. `version` gates which dtype
/// codes are admissible: v1 tables may only hold `f32` sections (anything
/// else is corruption, exactly as the v1 reader judged it), while v2
/// tables admit the quantized dtypes and report genuinely unknown codes as
/// the typed [`StoreError::UnsupportedDtype`] — a checksum-valid artifact
/// from a future format version is not "corrupt".
///
/// # Errors
///
/// [`StoreError::Truncated`] / [`StoreError::Corrupt`] /
/// [`StoreError::UnsupportedDtype`] on malformed input.
pub fn decode_table(
    bytes: &[u8],
    tensor_count: u32,
    version: u32,
) -> Result<Vec<TensorRecord>, StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::Truncated {
            expected: 8,
            actual: bytes.len() as u64,
        });
    }
    let (body, stored_tail) = bytes.split_at(bytes.len() - 8);
    // LINT-ALLOW(R2): fixed-width trailer slice: the record length check above proves 8 bytes
    let stored = u64::from_le_bytes(stored_tail.try_into().expect("8 bytes"));
    if crate::hash::hash64(body) != stored {
        return Err(StoreError::Corrupt(
            "section-table checksum mismatch".into(),
        ));
    }
    // Bound the count against the smallest possible record before trusting
    // it with an allocation (every other count field is similarly bounded).
    let min_record_bytes = 2 + 1 + 1 + 4 + 16 + 8;
    if tensor_count as usize > body.len() / min_record_bytes {
        return Err(StoreError::Corrupt(format!(
            "tensor count {tensor_count} impossible for a {}-byte table",
            body.len()
        )));
    }
    let mut c = Cursor::new(body);
    let mut records = Vec::with_capacity(tensor_count as usize);
    for _ in 0..tensor_count {
        let name_len = c.u16()? as usize;
        let name = c.str(name_len)?;
        let code = c.u8()?;
        let dtype = match code {
            DTYPE_F32 => SectionDtype::F32,
            DTYPE_I8 | DTYPE_F16 if version >= 2 => {
                if code == DTYPE_I8 {
                    SectionDtype::I8
                } else {
                    SectionDtype::F16
                }
            }
            _ if version == 1 => {
                // v1 committed to f32-only; any other code means the table
                // bytes are lying about their version.
                return Err(StoreError::Corrupt(format!(
                    "tensor {name:?}: unsupported dtype code {code}"
                )));
            }
            _ => return Err(StoreError::UnsupportedDtype { name, code }),
        };
        let rank = c.u8()? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(c.u64()? as usize);
        }
        let parts = c.u32()? as usize;
        if parts == 0 || parts > 65_536 {
            return Err(StoreError::Corrupt(format!(
                "tensor {name:?}: implausible partition count {parts}"
            )));
        }
        let mut partitions = Vec::with_capacity(parts);
        let mut quant = Vec::new();
        for _ in 0..parts {
            partitions.push(Partition {
                offset: c.u64()?,
                elems: c.u64()?,
            });
            if dtype == SectionDtype::I8 {
                let scale = c.f32()?;
                if !(scale.is_finite() && scale > 0.0) {
                    return Err(StoreError::Corrupt(format!(
                        "tensor {name:?}: non-positive int8 scale {scale}"
                    )));
                }
                let zero_point = c.u32()? as i32;
                if !(-128..=127).contains(&zero_point) {
                    return Err(StoreError::Corrupt(format!(
                        "tensor {name:?}: int8 zero point {zero_point} out of range"
                    )));
                }
                quant.push(QuantParams { scale, zero_point });
            }
        }
        let checksum = c.u64()?;
        let record = TensorRecord {
            name,
            dtype,
            dims,
            partitions,
            quant,
            checksum,
        };
        // Both reductions are over forgeable values: a crafted table can
        // carry dims or partition element counts near u64::MAX, so plain
        // product/sum would abort debug builds on overflow instead of
        // returning the typed error.
        let volume = record
            .dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64));
        let elems = record
            .partitions
            .iter()
            .try_fold(0u64, |acc, p| acc.checked_add(p.elems));
        match (volume, elems) {
            (Some(v), Some(e)) if v == e => {}
            _ => {
                return Err(StoreError::Corrupt(format!(
                    "tensor {:?}: dims {:?} disagree with stored partitions (or overflow)",
                    record.name, record.dims,
                )));
            }
        }
        records.push(record);
    }
    if c.position() != body.len() {
        return Err(StoreError::Corrupt(
            "trailing bytes after section table".into(),
        ));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Header {
        Header {
            version: FORMAT_VERSION,
            layout: Layout::VaultAligned { vaults: 16 },
            tensor_count: 9,
            spec_len: 90,
            table_off: 154,
            table_len: 400,
            file_len: 4096,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = header();
        let bytes = h.encode();
        assert_eq!(Header::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn header_rejects_corruption() {
        let h = header();
        let good = h.encode();
        assert!(matches!(
            Header::decode(&good[..HEADER_LEN - 1]),
            Err(StoreError::Truncated { .. })
        ));
        let mut bad_magic = good;
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            Header::decode(&bad_magic),
            Err(StoreError::BadMagic)
        ));
        // A flipped payload byte fails the header checksum…
        let mut flipped = h.encode();
        flipped[21] ^= 0x01;
        assert!(matches!(
            Header::decode(&flipped),
            Err(StoreError::Corrupt(_))
        ));
        // …and a wrong version (with a recomputed checksum) is refused.
        let mut future = h;
        future.version = FORMAT_VERSION + 7;
        assert!(matches!(
            Header::decode(&future.encode()),
            Err(StoreError::UnsupportedVersion { found }) if found == FORMAT_VERSION + 7
        ));
    }

    #[test]
    fn spec_roundtrip() {
        let mut spec = capsnet::CapsNetSpec::tiny_for_tests();
        spec.routing_sharpness = 2.75;
        spec.batch_shared_routing = false;
        let decoded = decode_spec(&encode_spec(&spec)).unwrap();
        assert_eq!(decoded, spec);
        let mut em = capsnet::CapsNetSpec::mnist();
        em.routing = RoutingAlgorithm::Em;
        assert_eq!(decode_spec(&encode_spec(&em)).unwrap(), em);
    }

    #[test]
    fn spec_rejects_truncation_and_garbage() {
        let spec = capsnet::CapsNetSpec::tiny_for_tests();
        let bytes = encode_spec(&spec);
        assert!(decode_spec(&bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_spec(&trailing).is_err());
    }

    #[test]
    fn table_roundtrip_and_checksum() {
        let records = vec![
            TensorRecord {
                name: "caps.weight".into(),
                dtype: SectionDtype::F32,
                dims: vec![16, 4, 18],
                partitions: vec![
                    Partition {
                        offset: 512,
                        elems: 576,
                    },
                    Partition {
                        offset: 512 + 576 * 4,
                        elems: 576,
                    },
                ],
                quant: vec![],
                checksum: 0xDEAD_BEEF,
            },
            TensorRecord {
                name: "conv1.bias".into(),
                dtype: SectionDtype::F32,
                dims: vec![8],
                partitions: vec![Partition {
                    offset: 5120,
                    elems: 8,
                }],
                quant: vec![],
                checksum: 7,
            },
        ];
        let bytes = encode_table(&records);
        // f32-only tables decode identically under both format versions.
        assert_eq!(decode_table(&bytes, 2, 1).unwrap(), records);
        assert_eq!(decode_table(&bytes, 2, 2).unwrap(), records);
        assert!(records[0].is_contiguous());
        // Flip one byte anywhere: the table checksum must catch it.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                decode_table(&bad, 2, 2).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn quantized_table_roundtrip() {
        let records = vec![
            TensorRecord {
                name: "caps.weight".into(),
                dtype: SectionDtype::I8,
                dims: vec![16, 4, 18],
                partitions: vec![
                    Partition {
                        offset: 512,
                        elems: 576,
                    },
                    Partition {
                        offset: 512 + 576,
                        elems: 576,
                    },
                ],
                quant: vec![
                    QuantParams {
                        scale: 0.01,
                        zero_point: -3,
                    },
                    QuantParams {
                        scale: 0.02,
                        zero_point: 17,
                    },
                ],
                checksum: 0xFEED,
            },
            TensorRecord {
                name: "decoder.0.weight".into(),
                dtype: SectionDtype::F16,
                dims: vec![8, 4],
                partitions: vec![Partition {
                    offset: 2048,
                    elems: 32,
                }],
                quant: vec![],
                checksum: 9,
            },
        ];
        let bytes = encode_table(&records);
        let decoded = decode_table(&bytes, 2, 2).unwrap();
        assert_eq!(decoded, records);
        // int8 partitions tile contiguously at 1 byte/elem.
        assert!(decoded[0].is_contiguous());
        assert_eq!(decoded[0].elem_bytes(), 1);
        assert_eq!(decoded[1].elem_bytes(), 2);
        // A v1 reader judges quantized dtypes as corruption (v1 committed
        // to f32-only)…
        assert!(matches!(
            decode_table(&bytes, 2, 1),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_future_dtype_is_typed_not_corrupt() {
        // A checksum-valid v2 table declaring a dtype this reader has
        // never heard of: typed UnsupportedDtype, not Corrupt.
        let records = vec![TensorRecord {
            name: "w".into(),
            dtype: SectionDtype::F32,
            dims: vec![4],
            partitions: vec![Partition {
                offset: 64,
                elems: 4,
            }],
            quant: vec![],
            checksum: 0,
        }];
        let mut bytes = encode_table(&records);
        // name_len(2) + "w"(1) → dtype at offset 3; re-seal the checksum.
        bytes[3] = 9;
        let body_len = bytes.len() - 8;
        let sum = crate::hash::hash64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        match decode_table(&bytes, 1, 2) {
            Err(StoreError::UnsupportedDtype { name, code }) => {
                assert_eq!(name, "w");
                assert_eq!(code, 9);
            }
            other => panic!("expected UnsupportedDtype, got {other:?}"),
        }
    }

    #[test]
    fn int8_table_rejects_garbage_affine_params() {
        let mk = |scale: f32, zp: i32| {
            let records = vec![TensorRecord {
                name: "w".into(),
                dtype: SectionDtype::I8,
                dims: vec![4],
                partitions: vec![Partition {
                    offset: 64,
                    elems: 4,
                }],
                quant: vec![QuantParams {
                    scale,
                    zero_point: zp,
                }],
                checksum: 0,
            }];
            decode_table(&encode_table(&records), 1, 2)
        };
        assert!(mk(0.5, 0).is_ok());
        for (scale, zp) in [
            (0.0, 0),
            (-1.0, 0),
            (f32::NAN, 0),
            (f32::INFINITY, 0),
            (0.5, 128),
            (0.5, -129),
        ] {
            assert!(
                matches!(mk(scale, zp), Err(StoreError::Corrupt(_))),
                "scale {scale} zp {zp} accepted"
            );
        }
    }

    #[test]
    fn table_rejects_dim_partition_disagreement() {
        let records = vec![TensorRecord {
            name: "w".into(),
            dtype: SectionDtype::F32,
            dims: vec![4, 4],
            partitions: vec![Partition {
                offset: 64,
                elems: 15,
            }],
            quant: vec![],
            checksum: 0,
        }];
        let bytes = encode_table(&records);
        assert!(matches!(
            decode_table(&bytes, 1, 2),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn alignment_helper() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 64);
        assert_eq!(align_up(64), 64);
        assert_eq!(align_up(65), 128);
    }
}
