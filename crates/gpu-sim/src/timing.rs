//! The GPU timing model: prices lowered kernels under a cache/bandwidth/
//! synchronization model and attributes stall cycles (Fig 4, 5, 6b, 7).

use capsnet::census::{NetworkCensus, RpCensus};
use serde::{Deserialize, Serialize};

use crate::kernels::{lower_layer, lower_rp, KernelClass, KernelProfile};
use crate::specs::{GpuModelParams, GpuSpec};

/// Per-layer wall-clock times for one inference batch (seconds) — the Fig 4
/// split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkTimes {
    /// Conv layer(s).
    pub conv: f64,
    /// L Caps (PrimaryCaps) layer.
    pub l_caps: f64,
    /// H Caps layer = the routing procedure (incl. Eq 1).
    pub rp: f64,
    /// FC decoder layers.
    pub fc: f64,
}

impl NetworkTimes {
    /// Total inference time.
    pub fn total(&self) -> f64 {
        self.conv + self.l_caps + self.rp + self.fc
    }

    /// RP share of the total (the paper's headline 74.6% average).
    pub fn rp_fraction(&self) -> f64 {
        self.rp / self.total()
    }
}

/// Pipeline-stall attribution for the RP (Fig 5), as fractions summing to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Off-chip memory access stalls.
    pub memory: f64,
    /// Barrier-synchronization stalls.
    pub sync: f64,
    /// Lack-of-resource (occupancy) stalls.
    pub resource: f64,
    /// Instruction-fetch stalls.
    pub inst_fetch: f64,
    /// Everything else.
    pub other: f64,
}

/// Full result of pricing the RP on a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RpGpuResult {
    /// Wall-clock seconds.
    pub time_s: f64,
    /// Stall attribution.
    pub stalls: StallBreakdown,
    /// Effective DRAM traffic in bytes (after cache).
    pub dram_traffic_bytes: f64,
    /// Total FLOPs executed.
    pub flops: u64,
    /// Energy in joules.
    pub energy_j: f64,
}

/// Internal per-kernel pricing.
#[derive(Debug, Clone, Copy, Default)]
struct KernelTime {
    compute: f64,
    mem: f64,
    sync: f64,
    launch: f64,
    traffic: f64,
    onchip_bytes: f64,
}

impl KernelTime {
    fn wall(&self) -> f64 {
        self.compute.max(self.mem) + self.sync + self.launch
    }
}

/// The analytic GPU timing model.
///
/// Construct with [`GpuTimingModel::new`] (default calibrated parameters) or
/// [`GpuTimingModel::with_params`]. The `ideal_cache` flag models the
/// paper's **GPU-ICP** comparison point (ideal cache replacement policy):
/// every operand that could ever be resident is, but capacity limits still
/// apply — which is why it barely helps (§6.2.1).
#[derive(Debug, Clone)]
pub struct GpuTimingModel {
    spec: GpuSpec,
    params: GpuModelParams,
    ideal_cache: bool,
}

impl GpuTimingModel {
    /// Model with default calibrated parameters.
    pub fn new(spec: GpuSpec) -> Self {
        GpuTimingModel {
            spec,
            params: GpuModelParams::default(),
            ideal_cache: false,
        }
    }

    /// Model with explicit parameters.
    pub fn with_params(spec: GpuSpec, params: GpuModelParams) -> Self {
        GpuTimingModel {
            spec,
            params,
            ideal_cache: false,
        }
    }

    /// Enables the ideal-cache-replacement (GPU-ICP) variant.
    pub fn ideal_cache(mut self, enabled: bool) -> Self {
        self.ideal_cache = enabled;
        self
    }

    /// The GPU being modeled.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Miss fraction for an operand of `bytes`, given on-chip capacity.
    ///
    /// Graded curve: operands far smaller than the cache mostly hit;
    /// operands far larger always miss; in between, interpolate. ICP lowers
    /// the resident miss floor (perfect replacement) but cannot create
    /// capacity.
    fn miss_fraction(&self, bytes: u64) -> f64 {
        let cache = self.spec.onchip_bytes as f64;
        let b = bytes as f64;
        let lo = 0.6 * cache;
        let hi = 4.0 * cache;
        let floor = if self.ideal_cache {
            1.0 - self.params.resident_hit.max(0.97)
        } else {
            1.0 - self.params.resident_hit
        };
        if b <= lo {
            floor
        } else if b >= hi {
            1.0
        } else {
            floor + (1.0 - floor) * (b - lo) / (hi - lo)
        }
    }

    /// Prices one kernel.
    fn price_kernel(&self, k: &KernelProfile) -> KernelTime {
        let p = &self.params;
        let eff = match k.class {
            KernelClass::Gemm => p.gemm_efficiency,
            KernelClass::Elementwise => p.elementwise_efficiency,
            KernelClass::Reduction { .. } => p.reduction_efficiency,
        };
        let compute = k.flops as f64 / (self.spec.peak_flops() * eff);

        // Effective DRAM traffic after the cache model.
        let mut traffic = 0.0f64;
        let mut onchip = 0.0f64;
        for op in &k.operands {
            let raw = op.bytes as f64 * op.passes;
            let miss = self.miss_fraction(op.bytes);
            let bytes = if op.is_write {
                // Writes always drain to DRAM eventually (write-back).
                raw
            } else if op.passes > 1.0 {
                // Multi-pass operand (GEMM weight tiles): first pass is
                // compulsory, re-passes hit according to capacity.
                op.bytes as f64 + (raw - op.bytes as f64) * miss
            } else if op.fresh {
                // Freshly written by the previous kernel: the resident
                // fraction of the LLC it fits in is still warm.
                let resident = (self.spec.onchip_bytes as f64 / op.bytes as f64).min(1.0) * 0.9;
                raw * miss * (1.0 - resident.min(0.95))
            } else {
                // Aged tensor (written kernels/iterations ago): survives
                // only if it fits (b, c, s, v do; û never does).
                raw * miss
            };
            traffic += bytes;
            onchip += raw;
        }
        // Strided access penalty for reductions over large tensors.
        if let KernelClass::Reduction { width } = k.class {
            if k.raw_traffic() > self.spec.onchip_bytes && width > 32 {
                traffic *= p.strided_penalty;
            }
        }

        let mem = traffic / (self.spec.memory.bandwidth_gbps * 1e9 * p.mem_efficiency);
        // Synchronization stalls: reductions barrier-wait on straggler
        // warps. The wait is bounded by latency chains through the reduced
        // data, modeled as draining the kernel's raw bytes at a fixed
        // device-class rate — crucially *independent* of DRAM bandwidth
        // (this is the component more bandwidth cannot buy back, Fig 7).
        let sync = if k.is_reduction() {
            // Larger on-chip storage lets reduction trees hold more partials
            // per phase, shortening straggler chains a little.
            let relief = 1.0 + 0.45 * (self.spec.onchip_bytes as f64 / 32.0e6).min(1.0);
            k.raw_traffic() as f64 / (p.sync_drain_gbps * 1e9 * relief)
        } else {
            0.0
        };
        KernelTime {
            compute,
            mem,
            sync,
            launch: k.launches as f64 * (p.kernel_launch_s + p.framework_overhead_s),
            traffic,
            onchip_bytes: onchip,
        }
    }

    fn price_all(&self, kernels: &[KernelProfile]) -> (f64, Vec<KernelTime>) {
        let times: Vec<KernelTime> = kernels.iter().map(|k| self.price_kernel(k)).collect();
        (times.iter().map(|t| t.wall()).sum(), times)
    }

    /// Wall-clock time of a non-RP layer.
    pub fn layer_time(&self, layer: &capsnet::census::LayerProfile) -> f64 {
        self.price_all(&lower_layer(layer)).0
    }

    /// Fig 4: per-layer times for a whole network census.
    pub fn network_times(&self, census: &NetworkCensus) -> NetworkTimes {
        NetworkTimes {
            conv: self.layer_time(&census.conv),
            l_caps: self.layer_time(&census.primary),
            rp: self.rp_result(&census.rp).time_s,
            fc: census.fc.iter().map(|l| self.layer_time(l)).sum(),
        }
    }

    /// Prices the routing procedure: time, stall attribution, traffic,
    /// energy (Figs 5, 6b, 7, 15).
    pub fn rp_result(&self, rp: &RpCensus) -> RpGpuResult {
        let kernels = lower_rp(rp);
        let (total, times) = self.price_all(&kernels);
        let p = &self.params;

        // Stall attribution over the modeled components.
        let mut mem_stall = 0.0;
        let mut sync_stall = 0.0;
        let mut resource_stall = 0.0;
        let mut fetch_stall = 0.0;
        let mut traffic = 0.0;
        let mut flops = 0u64;
        let mut onchip = 0.0;
        for (k, t) in kernels.iter().zip(&times) {
            mem_stall += t.mem * p.stall_w_mem;
            sync_stall += t.sync * p.stall_w_sync;
            resource_stall += t.compute * p.stall_w_resource;
            fetch_stall += t.launch * p.stall_w_fetch;
            traffic += t.traffic;
            onchip += t.onchip_bytes;
            flops += k.flops;
        }
        let other = (total * 0.05).max(1e-12);
        let denom = mem_stall + sync_stall + resource_stall + fetch_stall + other;
        let stalls = StallBreakdown {
            memory: mem_stall / denom,
            sync: sync_stall / denom,
            resource: resource_stall / denom,
            inst_fetch: fetch_stall / denom,
            other: other / denom,
        };

        let energy = flops as f64 * p.energy_per_flop
            + traffic * p.energy_per_dram_byte
            + onchip * p.energy_per_onchip_byte
            + total * (self.spec.idle_watts + 0.45 * (self.spec.tdp_watts - self.spec.idle_watts));

        RpGpuResult {
            time_s: total,
            stalls,
            dram_traffic_bytes: traffic,
            flops,
            energy_j: energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsnet::CapsNetSpec;

    fn mn1() -> NetworkCensus {
        NetworkCensus::from_spec(&CapsNetSpec::mnist(), 100).unwrap()
    }

    #[test]
    fn rp_dominates_inference_fig4() {
        let model = GpuTimingModel::new(GpuSpec::p100());
        let t = model.network_times(&mn1());
        assert!(
            t.rp_fraction() > 0.55,
            "RP fraction {} too low for Fig 4",
            t.rp_fraction()
        );
        assert!(t.conv > 0.0 && t.l_caps > 0.0 && t.fc > 0.0);
    }

    #[test]
    fn memory_is_top_stall_fig5() {
        let model = GpuTimingModel::new(GpuSpec::p100());
        let r = model.rp_result(&mn1().rp);
        let s = r.stalls;
        assert!(s.memory > s.sync, "memory {} <= sync {}", s.memory, s.sync);
        assert!(
            s.sync > s.resource,
            "sync {} <= resource {}",
            s.sync,
            s.resource
        );
        let sum = s.memory + s.sync + s.resource + s.inst_fetch + s.other;
        assert!((sum - 1.0).abs() < 1e-9);
        // Paper averages: memory 44.6%, sync 34.5% — allow a generous band.
        assert!((0.3..0.65).contains(&s.memory), "memory share {}", s.memory);
        assert!((0.15..0.5).contains(&s.sync), "sync share {}", s.sync);
    }

    #[test]
    fn bigger_cache_helps_a_little_fig6b() {
        let rp = mn1().rp;
        let small = GpuTimingModel::new(GpuSpec::p100().with_onchip(1_730_000));
        let big = GpuTimingModel::new(GpuSpec::p100().with_onchip(16_000_000));
        let t_small = small.rp_result(&rp).time_s;
        let t_big = big.rp_result(&rp).time_s;
        let speedup = t_small / t_big;
        assert!(
            (1.01..1.4).contains(&speedup),
            "on-chip sweep speedup {speedup} outside Fig 6b band"
        );
    }

    #[test]
    fn more_bandwidth_helps_somewhat_fig7() {
        use crate::specs::MemorySpec;
        let rp = mn1().rp;
        let slow = GpuTimingModel::new(GpuSpec::p100().with_memory(MemorySpec::gddr5()));
        let fast = GpuTimingModel::new(GpuSpec::p100().with_memory(MemorySpec::hbm2()));
        let speedup = slow.rp_result(&rp).time_s / fast.rp_result(&rp).time_s;
        // 3.1× more bandwidth buys far less than 3.1× (paper: ~1.26× avg
        // across their GPU pairs; our controlled sweep allows a wider band).
        assert!(
            (1.1..2.2).contains(&speedup),
            "bandwidth sweep speedup {speedup}"
        );
    }

    #[test]
    fn icp_barely_helps() {
        let rp = mn1().rp;
        let base = GpuTimingModel::new(GpuSpec::p100());
        let icp = GpuTimingModel::new(GpuSpec::p100()).ideal_cache(true);
        let t_base = base.rp_result(&rp).time_s;
        let t_icp = icp.rp_result(&rp).time_s;
        let gain = t_base / t_icp - 1.0;
        assert!(
            (0.0..0.08).contains(&gain),
            "ICP gain {gain} should be marginal (paper: 1.14%)"
        );
    }

    #[test]
    fn batching_does_not_amortize_rp() {
        // Observation 1: RP time grows ~linearly with batch; the RP share
        // does not shrink.
        let s = CapsNetSpec::mnist();
        let model = GpuTimingModel::new(GpuSpec::p100());
        let t100 = model.network_times(&NetworkCensus::from_spec(&s, 100).unwrap());
        let t300 = model.network_times(&NetworkCensus::from_spec(&s, 300).unwrap());
        assert!(t300.total() > 2.5 * t100.total());
        assert!(t300.rp_fraction() >= t100.rp_fraction() - 0.02);
    }

    #[test]
    fn network_size_scales_rp_time() {
        // Observation 2: scaling L capsules scales RP time.
        let model = GpuTimingModel::new(GpuSpec::p100());
        let small = capsnet::RpCensus::new(100, 576, 10, 8, 16, 3);
        let large = capsnet::RpCensus::new(100, 4608, 11, 8, 16, 3);
        let t_small = model.rp_result(&small).time_s;
        let t_large = model.rp_result(&large).time_s;
        assert!(t_large > 5.0 * t_small);
    }

    #[test]
    fn energy_is_positive_and_scales() {
        let model = GpuTimingModel::new(GpuSpec::p100());
        let r100 = model.rp_result(&capsnet::RpCensus::new(100, 1152, 10, 8, 16, 3));
        let r300 = model.rp_result(&capsnet::RpCensus::new(300, 1152, 10, 8, 16, 3));
        assert!(r100.energy_j > 0.0);
        assert!(r300.energy_j > 2.0 * r100.energy_j);
    }
}
