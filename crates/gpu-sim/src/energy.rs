//! Standalone GPU energy accounting for the non-RP layers (the RP energy is
//! computed inside [`crate::GpuTimingModel::rp_result`] because it needs the
//! per-kernel traffic).

use capsnet::census::LayerProfile;
use serde::{Deserialize, Serialize};

use crate::specs::{GpuModelParams, GpuSpec};
use crate::timing::GpuTimingModel;

/// Energy model for GPU layer execution.
///
/// `E = flops·e_flop + traffic·e_byte + t·P_background`, with the background
/// power split between idle and activity-proportional components — the same
/// structure nvidia-smi measurements average over.
#[derive(Debug, Clone)]
pub struct GpuEnergyModel {
    spec: GpuSpec,
    params: GpuModelParams,
}

/// Energy result for a set of layers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerEnergy {
    /// Total joules.
    pub energy_j: f64,
    /// Wall-clock seconds the layers occupied the GPU.
    pub time_s: f64,
    /// Implied average power (W).
    pub avg_power_w: f64,
}

impl GpuEnergyModel {
    /// Creates the model with default parameters.
    pub fn new(spec: GpuSpec) -> Self {
        GpuEnergyModel {
            spec,
            params: GpuModelParams::default(),
        }
    }

    /// Energy for one non-RP layer.
    pub fn layer_energy(&self, layer: &LayerProfile) -> LayerEnergy {
        let timing = GpuTimingModel::with_params(self.spec.clone(), self.params);
        let t = timing.layer_time(layer);
        let dynamic = layer.flops as f64 * self.params.energy_per_flop
            + (layer.read_bytes + layer.write_bytes) as f64 * self.params.energy_per_dram_byte;
        let background =
            t * (self.spec.idle_watts + 0.55 * (self.spec.tdp_watts - self.spec.idle_watts));
        let e = dynamic + background;
        LayerEnergy {
            energy_j: e,
            time_s: t,
            avg_power_w: if t > 0.0 { e / t } else { 0.0 },
        }
    }

    /// Total energy over several layers.
    pub fn layers_energy<'a>(
        &self,
        layers: impl IntoIterator<Item = &'a LayerProfile>,
    ) -> LayerEnergy {
        let mut energy = 0.0;
        let mut time = 0.0;
        for l in layers {
            let e = self.layer_energy(l);
            energy += e.energy_j;
            time += e.time_s;
        }
        LayerEnergy {
            energy_j: energy,
            time_s: time,
            avg_power_w: if time > 0.0 { energy / time } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsnet::{CapsNetSpec, NetworkCensus};

    #[test]
    fn layer_energy_positive_and_power_plausible() {
        let census = NetworkCensus::from_spec(&CapsNetSpec::mnist(), 100).unwrap();
        let model = GpuEnergyModel::new(crate::GpuSpec::p100());
        let e = model.layer_energy(&census.primary);
        assert!(e.energy_j > 0.0);
        // Average power should sit between idle and TDP.
        assert!(
            e.avg_power_w > 60.0 && e.avg_power_w < 260.0,
            "{}",
            e.avg_power_w
        );
    }

    #[test]
    fn layers_energy_sums() {
        let census = NetworkCensus::from_spec(&CapsNetSpec::mnist(), 100).unwrap();
        let model = GpuEnergyModel::new(crate::GpuSpec::p100());
        let all = model.layers_energy(census.non_rp_layers());
        let sum: f64 = census
            .non_rp_layers()
            .into_iter()
            .map(|l| model.layer_energy(l).energy_j)
            .sum();
        assert!((all.energy_j - sum).abs() < 1e-9);
    }
}
