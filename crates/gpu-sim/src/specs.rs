//! GPU and memory-system specifications, including the five GPUs the paper
//! profiles (Table 4, Fig 6, Fig 7) and the calibrated model coefficients.

use serde::{Deserialize, Serialize};

/// Off-chip memory technology generations compared in Fig 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// GDDR5 (K40m class).
    Gddr5,
    /// GDDR5X (GTX 1080 Ti class).
    Gddr5x,
    /// GDDR6 (RTX 2080 Ti class).
    Gddr6,
    /// HBM2 (V100 class).
    Hbm2,
    /// HBM configured at 320 GB/s — the paper's baseline (Table 4), matched
    /// to the HMC external link bandwidth.
    Hbm320,
}

/// An off-chip memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Technology.
    pub kind: MemoryKind,
    /// Peak bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Load-to-use latency in nanoseconds.
    pub latency_ns: f64,
}

impl MemorySpec {
    /// GDDR5 at 288 GB/s (Fig 7's K40m point).
    pub fn gddr5() -> Self {
        MemorySpec {
            kind: MemoryKind::Gddr5,
            bandwidth_gbps: 288.0,
            latency_ns: 350.0,
        }
    }
    /// GDDR5X at 484 GB/s (GTX 1080 Ti point).
    pub fn gddr5x() -> Self {
        MemorySpec {
            kind: MemoryKind::Gddr5x,
            bandwidth_gbps: 484.0,
            latency_ns: 320.0,
        }
    }
    /// GDDR6 at 616 GB/s (RTX 2080 Ti point).
    pub fn gddr6() -> Self {
        MemorySpec {
            kind: MemoryKind::Gddr6,
            bandwidth_gbps: 616.0,
            latency_ns: 310.0,
        }
    }
    /// HBM2 at 897 GB/s (V100 point).
    pub fn hbm2() -> Self {
        MemorySpec {
            kind: MemoryKind::Hbm2,
            bandwidth_gbps: 897.0,
            latency_ns: 280.0,
        }
    }
    /// HBM at 320 GB/s — the paper's baseline memory (Table 4).
    pub fn hbm320() -> Self {
        MemorySpec {
            kind: MemoryKind::Hbm320,
            bandwidth_gbps: 320.0,
            latency_ns: 290.0,
        }
    }
}

/// A GPU specification.
///
/// `onchip_bytes` aggregates L1/shared/L2 as the paper does in Fig 6
/// (A: 1.73 MB K40m, B: 5.31 MB P100, C: 9.75 MB RTX 2080 Ti, D: 16 MB
/// V100).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// FP32 lanes per SM.
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Total on-chip storage (L1 + shared + L2) in bytes.
    pub onchip_bytes: u64,
    /// Off-chip memory system.
    pub memory: MemorySpec,
    /// Board power at full load, watts.
    pub tdp_watts: f64,
    /// Static/idle power, watts.
    pub idle_watts: f64,
}

impl GpuSpec {
    /// Peak FP32 throughput in FLOP/s (2 FLOPs per core-cycle via FMA).
    pub fn peak_flops(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * 2.0 * self.clock_ghz * 1e9
    }

    /// Tesla K40m: the paper's "A" on-chip point and GDDR5 bandwidth point.
    pub fn k40m() -> Self {
        GpuSpec {
            name: "Tesla K40m".into(),
            sm_count: 15,
            cores_per_sm: 192,
            clock_ghz: 0.745,
            onchip_bytes: 1_730_000,
            memory: MemorySpec::gddr5(),
            tdp_watts: 235.0,
            idle_watts: 62.0,
        }
    }

    /// GTX 1080 Ti: the GDDR5X bandwidth point.
    pub fn gtx1080ti() -> Self {
        GpuSpec {
            name: "GTX 1080Ti".into(),
            sm_count: 28,
            cores_per_sm: 128,
            clock_ghz: 1.48,
            onchip_bytes: 5_500_000,
            memory: MemorySpec::gddr5x(),
            tdp_watts: 250.0,
            idle_watts: 55.0,
        }
    }

    /// RTX 2080 Ti: the paper's "C" on-chip point and GDDR6 point.
    pub fn rtx2080ti() -> Self {
        GpuSpec {
            name: "RTX 2080Ti".into(),
            sm_count: 68,
            cores_per_sm: 64,
            clock_ghz: 1.545,
            onchip_bytes: 9_750_000,
            memory: MemorySpec::gddr6(),
            tdp_watts: 250.0,
            idle_watts: 55.0,
        }
    }

    /// Tesla P100 — the paper's host processor (Table 4: 3584 shading units
    /// @ 1190 MHz, 24 KB×56 L1/shared + 4 MB L2, HBM at 320 GB/s).
    pub fn p100() -> Self {
        GpuSpec {
            name: "Tesla P100".into(),
            sm_count: 56,
            cores_per_sm: 64,
            clock_ghz: 1.19,
            onchip_bytes: 5_310_000,
            memory: MemorySpec::hbm320(),
            tdp_watts: 250.0,
            idle_watts: 60.0,
        }
    }

    /// Tesla V100: the paper's "D" on-chip point and HBM2 point.
    pub fn v100() -> Self {
        GpuSpec {
            name: "Tesla V100".into(),
            sm_count: 80,
            cores_per_sm: 64,
            clock_ghz: 1.455,
            onchip_bytes: 16_000_000,
            memory: MemorySpec::hbm2(),
            tdp_watts: 300.0,
            idle_watts: 65.0,
        }
    }

    /// Returns a copy with a different on-chip storage size (Fig 6 sweep).
    pub fn with_onchip(mut self, bytes: u64) -> Self {
        self.onchip_bytes = bytes;
        self
    }

    /// Returns a copy with a different memory system (Fig 7 sweep).
    pub fn with_memory(mut self, memory: MemorySpec) -> Self {
        self.memory = memory;
        self
    }
}

/// Calibrated device coefficients of the timing/energy model.
///
/// These are the only "fit" quantities in the GPU model; everything else is
/// derived from the op census. Values are chosen from public
/// microbenchmarking literature for Pascal-class GPUs and held constant
/// across all experiments (see EXPERIMENTS.md §calibration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModelParams {
    /// Fraction of peak FLOPs a tuned GEMM/conv kernel achieves.
    pub gemm_efficiency: f64,
    /// Fraction of peak FLOPs an unfused elementwise kernel achieves.
    pub elementwise_efficiency: f64,
    /// Fraction of peak FLOPs a reduction kernel achieves.
    pub reduction_efficiency: f64,
    /// Fraction of peak DRAM bandwidth streaming kernels achieve.
    pub mem_efficiency: f64,
    /// Kernel launch overhead, seconds.
    pub kernel_launch_s: f64,
    /// Framework (eager-mode dispatch + allocator) overhead per kernel,
    /// seconds. PyTorch's unfused RP pays this ~34 times per batch.
    pub framework_overhead_s: f64,
    /// Cache hit fraction for operands that fit in on-chip storage.
    pub resident_hit: f64,
    /// Extra traffic multiplier for strided/uncoalesced reduction access.
    pub strided_penalty: f64,
    /// Effective drain rate (GB/s) of barrier-synchronized aggregation:
    /// `__syncthreads` waits are bounded by straggler-warp latency chains,
    /// which do **not** improve with more DRAM bandwidth — this is why Fig 7
    /// shows bandwidth alone cannot fix the RP.
    pub sync_drain_gbps: f64,
    /// GEMM operand re-read passes for the shared (weight) operand.
    pub gemm_weight_passes: f64,
    /// Stall-counter weight for exposed memory time (Fig 5 attribution).
    pub stall_w_mem: f64,
    /// Stall-counter weight for synchronization time.
    pub stall_w_sync: f64,
    /// Stall-counter weight for compute (resource) time.
    pub stall_w_resource: f64,
    /// Stall-counter weight for launch/dispatch (instruction fetch) time.
    pub stall_w_fetch: f64,
    /// Dynamic energy per FLOP, joules.
    pub energy_per_flop: f64,
    /// Dynamic energy per DRAM byte, joules.
    pub energy_per_dram_byte: f64,
    /// Dynamic energy per on-chip byte, joules.
    pub energy_per_onchip_byte: f64,
}

impl Default for GpuModelParams {
    fn default() -> Self {
        GpuModelParams {
            gemm_efficiency: 0.68,
            elementwise_efficiency: 0.08,
            reduction_efficiency: 0.12,
            mem_efficiency: 0.75,
            kernel_launch_s: 6.0e-6,
            framework_overhead_s: 20.0e-6,
            resident_hit: 0.88,
            strided_penalty: 1.6,
            sync_drain_gbps: 140.0,
            gemm_weight_passes: 4.0,
            stall_w_mem: 0.9,
            stall_w_sync: 1.45,
            stall_w_resource: 0.8,
            stall_w_fetch: 0.6,
            energy_per_flop: 9.0e-12,
            energy_per_dram_byte: 80.0e-12,
            energy_per_onchip_byte: 10.0e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_matches_table4() {
        let g = GpuSpec::p100();
        assert_eq!(g.sm_count * g.cores_per_sm, 3584);
        assert!((g.clock_ghz - 1.19).abs() < 1e-9);
        assert_eq!(g.memory.bandwidth_gbps, 320.0);
        assert_eq!(g.onchip_bytes, 5_310_000);
        // ~8.5 TFLOPS FP32.
        assert!((g.peak_flops() / 1e12 - 8.53).abs() < 0.1);
    }

    #[test]
    fn fig6_onchip_points() {
        assert_eq!(GpuSpec::k40m().onchip_bytes, 1_730_000);
        assert_eq!(GpuSpec::p100().onchip_bytes, 5_310_000);
        assert_eq!(GpuSpec::rtx2080ti().onchip_bytes, 9_750_000);
        assert_eq!(GpuSpec::v100().onchip_bytes, 16_000_000);
    }

    #[test]
    fn fig7_bandwidth_points() {
        assert_eq!(MemorySpec::gddr5().bandwidth_gbps, 288.0);
        assert_eq!(MemorySpec::gddr5x().bandwidth_gbps, 484.0);
        assert_eq!(MemorySpec::gddr6().bandwidth_gbps, 616.0);
        assert_eq!(MemorySpec::hbm2().bandwidth_gbps, 897.0);
    }

    #[test]
    fn with_builders() {
        let g = GpuSpec::p100()
            .with_onchip(16_000_000)
            .with_memory(MemorySpec::hbm2());
        assert_eq!(g.onchip_bytes, 16_000_000);
        assert_eq!(g.memory.kind, MemoryKind::Hbm2);
        assert_eq!(g.name, "Tesla P100");
    }

    #[test]
    fn default_params_are_sane() {
        let p = GpuModelParams::default();
        assert!(p.gemm_efficiency > p.reduction_efficiency);
        assert!(p.reduction_efficiency >= p.elementwise_efficiency);
        assert!((0.0..=1.0).contains(&p.mem_efficiency));
        assert!(p.strided_penalty >= 1.0);
    }
}
