//! Analytic GPU timing / energy model for CapsNet inference.
//!
//! This crate stands in for the paper's physical measurement infrastructure
//! (PyTorch + CuDNN on a Tesla P100, profiled with NVprofiler / nvidia-smi,
//! §6.1) and regenerates the characterization results of §3:
//!
//! * **Fig 4** — per-layer execution-time breakdown (routing dominates);
//! * **Fig 5** — RP pipeline-stall attribution (memory / sync / …);
//! * **Fig 6** — intermediate-variable-to-on-chip-storage ratios and the
//!   (small) benefit of larger on-chip storage;
//! * **Fig 7** — the (small) benefit of more off-chip bandwidth.
//!
//! The model is *structural*: every number derives from the op census of
//! [`capsnet::census`] lowered to a realistic kernel sequence (unfused
//! PyTorch-style broadcast/reduce kernels for the RP, im2col+GEMM for the
//! convolutions) and a small set of device coefficients documented on
//! [`GpuModelParams`]. Calibration choices are recorded in EXPERIMENTS.md.
//!
//! # Example
//!
//! ```
//! use capsnet::{CapsNetSpec, NetworkCensus};
//! use gpu_sim::{GpuSpec, GpuTimingModel};
//!
//! let census = NetworkCensus::from_spec(&CapsNetSpec::mnist(), 100).unwrap();
//! let model = GpuTimingModel::new(GpuSpec::p100());
//! let times = model.network_times(&census);
//! // Routing dominates CapsNet inference on GPUs (Fig 4).
//! assert!(times.rp / times.total() > 0.5);
//! ```

mod energy;
mod kernels;
mod specs;
mod timing;

pub use energy::GpuEnergyModel;
pub use kernels::{lower_layer, lower_rp, KernelClass, KernelProfile, Operand};
pub use specs::{GpuModelParams, GpuSpec, MemoryKind, MemorySpec};
pub use timing::{GpuTimingModel, NetworkTimes, RpGpuResult, StallBreakdown};
