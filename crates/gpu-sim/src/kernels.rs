//! Lowering of op-census profiles to GPU kernel sequences.
//!
//! The routing procedure is lowered the way the PyTorch framework the paper
//! measured actually executes it: *unfused* broadcast-multiply and reduce
//! kernels that materialize full-size temporaries (this, not raw FLOPs, is
//! why the RP hammers off-chip memory — every iteration streams the û-sized
//! tensor several times). Convolutions lower to im2col + GEMM; dense layers
//! to a single GEMM.

use capsnet::census::{LayerKind, LayerProfile, RpCensus, F32_BYTES as F32};
use capsnet::RoutingAlgorithm;
use serde::{Deserialize, Serialize};

/// How a kernel uses its ALUs and memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Dense matrix multiply (cuBLAS/CuDNN class, tiled, compute-efficient).
    Gemm,
    /// Unfused pointwise/broadcast kernel.
    Elementwise,
    /// Reduction over `width` elements per output.
    Reduction {
        /// Elements reduced per output.
        width: u64,
    },
}

/// One memory operand of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Operand {
    /// Tensor size in bytes.
    pub bytes: u64,
    /// `true` if written (else read).
    pub is_write: bool,
    /// How many times the kernel streams the tensor (GEMM weight tiles > 1).
    pub passes: f64,
    /// `true` when the previous kernel just wrote this tensor, making it a
    /// candidate for L2 write-back reuse.
    pub fresh: bool,
}

impl Operand {
    /// A plain single-pass read.
    pub fn read(bytes: u64) -> Self {
        Operand {
            bytes,
            is_write: false,
            passes: 1.0,
            fresh: false,
        }
    }
    /// A read of a tensor the previous kernel just produced.
    pub fn read_fresh(bytes: u64) -> Self {
        Operand {
            bytes,
            is_write: false,
            passes: 1.0,
            fresh: true,
        }
    }
    /// A plain write.
    pub fn write(bytes: u64) -> Self {
        Operand {
            bytes,
            is_write: true,
            passes: 1.0,
            fresh: false,
        }
    }
    /// A multi-pass read (e.g. GEMM weight re-streaming).
    pub fn read_passes(bytes: u64, passes: f64) -> Self {
        Operand {
            bytes,
            is_write: false,
            passes,
            fresh: false,
        }
    }
}

/// A lowered kernel: the unit the timing model prices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Display name (`eq2.mul`, `conv.gemm`, …).
    pub name: String,
    /// Arithmetic class.
    pub class: KernelClass,
    /// Total FLOPs (MACs counted as 2).
    pub flops: u64,
    /// Memory operands.
    pub operands: Vec<Operand>,
    /// Number of kernel launches this entry represents.
    pub launches: u32,
}

impl KernelProfile {
    /// Raw (cache-less) traffic in bytes.
    pub fn raw_traffic(&self) -> u64 {
        self.operands
            .iter()
            .map(|o| (o.bytes as f64 * o.passes) as u64)
            .sum()
    }

    /// `true` for reduction kernels (the synchronization-heavy class).
    pub fn is_reduction(&self) -> bool {
        matches!(self.class, KernelClass::Reduction { .. })
    }
}

/// Lowers a non-RP layer (conv / primary-caps / FC) to kernels.
pub fn lower_layer(layer: &LayerProfile) -> Vec<KernelProfile> {
    match layer.kind {
        LayerKind::Conv | LayerKind::PrimaryCaps => {
            let input_bytes = layer.read_bytes - layer.weight_bytes;
            vec![
                KernelProfile {
                    name: format!("{}.im2col", layer.name),
                    class: KernelClass::Elementwise,
                    flops: 0,
                    // im2col inflates the input by ~k²/stride² but we charge
                    // a single extra read+write of the input as modern fused
                    // implementations do.
                    operands: vec![Operand::read(input_bytes), Operand::write(input_bytes)],
                    launches: 1,
                },
                KernelProfile {
                    name: format!("{}.gemm", layer.name),
                    class: KernelClass::Gemm,
                    flops: layer.flops,
                    operands: vec![
                        Operand::read_fresh(input_bytes),
                        Operand::read_passes(layer.weight_bytes, 4.0),
                        Operand::write(layer.write_bytes),
                    ],
                    launches: 1,
                },
            ]
        }
        LayerKind::Fc => vec![KernelProfile {
            name: format!("{}.gemm", layer.name),
            class: KernelClass::Gemm,
            flops: layer.flops,
            operands: vec![
                Operand::read(layer.read_bytes - layer.weight_bytes),
                Operand::read_passes(layer.weight_bytes, 2.0),
                Operand::write(layer.write_bytes),
            ],
            launches: 1,
        }],
    }
}

/// Lowers the routing procedure to a kernel stream, dispatching on the
/// census's routing algorithm: the dynamic-routing path uses the exact
/// PyTorch unfused chain; other algorithms use the structural generic
/// lowering ([`lower_rp_generic`]).
pub fn lower_rp(rp: &RpCensus) -> Vec<KernelProfile> {
    match rp.routing {
        RoutingAlgorithm::Dynamic => lower_rp_dynamic(rp),
        RoutingAlgorithm::Em => lower_rp_generic(rp),
    }
}

/// Structural lowering for non-dynamic routing algorithms: per equation
/// slot, one broadcast/elementwise kernel producing the slot's outputs and
/// (when the slot aggregates) one reduction kernel, both sized from the
/// census profile. Temporaries materialize at the size of the dominant
/// operand, matching eager-framework behaviour.
pub fn lower_rp_generic(rp: &RpCensus) -> Vec<KernelProfile> {
    let mut kernels = Vec::new();
    let eq1 = rp.equation(capsnet::RpEquation::Eq1);
    kernels.push(KernelProfile {
        name: "eq1.bmm".into(),
        class: KernelClass::Gemm,
        flops: eq1.flops(),
        operands: vec![
            Operand::read(rp.sizes.u),
            Operand::read_passes(rp.sizes.w, 4.0),
            Operand::write(eq1.write_bytes),
        ],
        launches: 1,
    });
    for iter in 0..rp.iterations {
        for eq in [
            capsnet::RpEquation::Eq5,
            capsnet::RpEquation::Eq2,
            capsnet::RpEquation::Eq3,
            capsnet::RpEquation::Eq4,
        ] {
            let prof = rp.equation(eq);
            let name = |stage: &str| format!("it{iter}.{eq}.{stage}");
            if prof.reduction_groups > 0 {
                // Broadcast stage materializes a full-size temporary…
                let tmp = prof.reduction_groups * prof.reduction_width * F32;
                kernels.push(KernelProfile {
                    name: name("map"),
                    class: KernelClass::Elementwise,
                    flops: prof.flops() / 2,
                    operands: vec![Operand::read(prof.read_bytes), Operand::write(tmp)],
                    launches: 1,
                });
                // …which the reduction stage consumes.
                kernels.push(KernelProfile {
                    name: name("reduce"),
                    class: KernelClass::Reduction {
                        width: prof.reduction_width,
                    },
                    flops: prof.flops() - prof.flops() / 2,
                    operands: vec![Operand::read_fresh(tmp), Operand::write(prof.write_bytes)],
                    launches: 1,
                });
            } else {
                kernels.push(KernelProfile {
                    name: name("map"),
                    class: KernelClass::Elementwise,
                    flops: prof.flops(),
                    operands: vec![
                        Operand::read(prof.read_bytes),
                        Operand::write(prof.write_bytes),
                    ],
                    launches: 1,
                });
            }
        }
    }
    kernels
}

/// The dynamic-routing lowering (PyTorch-style unfused chain): Eq 1 as a
/// batched GEMM, then per iteration the
/// softmax → weighted-sum → squash → agreement-update kernels with full
/// temporary materialization.
fn lower_rp_dynamic(rp: &RpCensus) -> Vec<KernelProfile> {
    let (nb, nl, nh, ch) = (rp.nb as u64, rp.nl as u64, rp.nh as u64, rp.ch as u64);
    let u_hat = rp.sizes.u_hat;
    let s = rp.sizes.s;
    let v = rp.sizes.v;
    let b = rp.sizes.b;
    let c = rp.sizes.c;
    let blh = nb * nl * nh * F32; // the Eq-4 partial-agreement temporary

    let mut kernels = Vec::new();

    // Eq 1: û = u·W as a batched GEMM. The weight tensor is re-streamed
    // tile-by-tile (passes set by the timing model's params at price time;
    // the default 4.0 is recorded here).
    kernels.push(KernelProfile {
        name: "eq1.bmm".into(),
        class: KernelClass::Gemm,
        flops: rp.equation(capsnet::RpEquation::Eq1).flops(),
        operands: vec![
            Operand::read(rp.sizes.u),
            Operand::read_passes(rp.sizes.w, 4.0),
            Operand::write(u_hat),
        ],
        launches: 1,
    });

    for iter in 0..rp.iterations {
        let tag = |n: &str| format!("it{iter}.{n}");

        // Eq 5: c = softmax_H(b): max, exp(+sub), sum, div — 4 launches on
        // small tensors.
        kernels.push(KernelProfile {
            name: tag("eq5.max"),
            class: KernelClass::Reduction { width: nh },
            flops: nl * nh,
            operands: vec![Operand::read(b), Operand::write(nl * F32)],
            launches: 1,
        });
        kernels.push(KernelProfile {
            name: tag("eq5.exp"),
            class: KernelClass::Elementwise,
            flops: rp.equation(capsnet::RpEquation::Eq5).exps,
            operands: vec![
                Operand::read(b),
                Operand::read_fresh(nl * F32),
                Operand::write(c),
            ],
            launches: 1,
        });
        kernels.push(KernelProfile {
            name: tag("eq5.sum"),
            class: KernelClass::Reduction { width: nh },
            flops: nl * nh,
            operands: vec![Operand::read_fresh(c), Operand::write(nl * F32)],
            launches: 1,
        });
        kernels.push(KernelProfile {
            name: tag("eq5.div"),
            class: KernelClass::Elementwise,
            flops: rp.equation(capsnet::RpEquation::Eq5).divs,
            operands: vec![
                Operand::read_fresh(c),
                Operand::read_fresh(nl * F32),
                Operand::write(c),
            ],
            launches: 1,
        });

        // Eq 2: tmp = c ⊙ û (broadcast), s = Σ_L tmp.
        kernels.push(KernelProfile {
            name: tag("eq2.mul"),
            class: KernelClass::Elementwise,
            flops: nb * nl * nh * ch,
            operands: vec![
                Operand::read(u_hat),
                Operand::read(c),
                Operand::write(u_hat), // tmp has û's size
            ],
            launches: 1,
        });
        kernels.push(KernelProfile {
            name: tag("eq2.sum_l"),
            class: KernelClass::Reduction { width: nl },
            flops: nb * nh * ch * nl,
            operands: vec![Operand::read_fresh(u_hat), Operand::write(s)],
            launches: 1,
        });

        // Eq 3: squash — norm reduction then scale.
        kernels.push(KernelProfile {
            name: tag("eq3.normsq"),
            class: KernelClass::Reduction { width: ch },
            flops: 2 * nb * nh * ch,
            operands: vec![Operand::read_fresh(s), Operand::write(nb * nh * F32)],
            launches: 1,
        });
        kernels.push(KernelProfile {
            name: tag("eq3.scale"),
            class: KernelClass::Elementwise,
            flops: rp.equation(capsnet::RpEquation::Eq3).flops(),
            operands: vec![
                Operand::read_fresh(s),
                Operand::read_fresh(nb * nh * F32),
                Operand::write(v),
            ],
            launches: 1,
        });

        // Eq 4: tmp2 = v ⊙ û (broadcast over L), agreement = Σ_CH tmp2,
        // b += Σ_B agreement.
        kernels.push(KernelProfile {
            name: tag("eq4.mul"),
            class: KernelClass::Elementwise,
            flops: nb * nl * nh * ch,
            operands: vec![
                Operand::read(u_hat),
                Operand::read_fresh(v),
                Operand::write(u_hat), // tmp2 has û's size
            ],
            launches: 1,
        });
        kernels.push(KernelProfile {
            name: tag("eq4.sum_ch"),
            class: KernelClass::Reduction { width: ch },
            flops: nb * nl * nh * ch,
            operands: vec![Operand::read_fresh(u_hat), Operand::write(blh)],
            launches: 1,
        });
        kernels.push(KernelProfile {
            name: tag("eq4.sum_b"),
            class: KernelClass::Reduction { width: nb },
            flops: nb * nl * nh,
            operands: vec![
                Operand::read_fresh(blh),
                Operand::read(b),
                Operand::write(b),
            ],
            launches: 1,
        });
    }
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsnet::{CapsNetSpec, NetworkCensus, RpCensus};

    fn mn1_rp() -> RpCensus {
        RpCensus::new(100, 1152, 10, 8, 16, 3)
    }

    #[test]
    fn rp_kernel_count() {
        let kernels = lower_rp(&mn1_rp());
        // 1 (Eq1) + 3 iterations × 11 kernels.
        assert_eq!(kernels.len(), 1 + 3 * 11);
    }

    #[test]
    fn rp_traffic_dominated_by_u_hat_temporaries() {
        let rp = mn1_rp();
        let kernels = lower_rp(&rp);
        let total: u64 = kernels.iter().map(|k| k.raw_traffic()).sum();
        // û streams: write once (Eq1) + per iteration ~6 full streams
        // (mul r/w, sum r) × 2 chains — far more than the census-minimal
        // traffic, exactly the PyTorch pathology.
        assert!(
            total > 15 * rp.sizes.u_hat,
            "unfused traffic {total} should be many multiples of û {}",
            rp.sizes.u_hat
        );
    }

    #[test]
    fn reduction_kernels_flagged() {
        let kernels = lower_rp(&mn1_rp());
        let reductions = kernels.iter().filter(|k| k.is_reduction()).count();
        // Per iteration: eq5.max, eq5.sum, eq2.sum_l, eq3.normsq,
        // eq4.sum_ch, eq4.sum_b = 6.
        assert_eq!(reductions, 3 * 6);
    }

    #[test]
    fn layer_lowering_shapes() {
        let census = NetworkCensus::from_spec(&CapsNetSpec::mnist(), 100).unwrap();
        let conv_kernels = lower_layer(&census.conv);
        assert_eq!(conv_kernels.len(), 2);
        assert_eq!(conv_kernels[1].class, KernelClass::Gemm);
        let fc_kernels = lower_layer(&census.fc[0]);
        assert_eq!(fc_kernels.len(), 1);
        assert!(fc_kernels[0].flops > 0);
    }

    #[test]
    fn operand_constructors() {
        assert!(!Operand::read(4).is_write);
        assert!(Operand::write(4).is_write);
        assert!(Operand::read_fresh(4).fresh);
        assert_eq!(Operand::read_passes(4, 3.0).passes, 3.0);
    }

    #[test]
    fn raw_traffic_accounts_passes() {
        let k = KernelProfile {
            name: "t".into(),
            class: KernelClass::Gemm,
            flops: 0,
            operands: vec![Operand::read_passes(100, 4.0), Operand::write(50)],
            launches: 1,
        };
        assert_eq!(k.raw_traffic(), 450);
    }
}

#[cfg(test)]
mod em_tests {
    use super::*;
    use capsnet::RpCensus;

    #[test]
    fn generic_lowering_covers_all_slots() {
        let em = RpCensus::new_em(100, 1152, 10, 8, 16, 3);
        let kernels = lower_rp(&em);
        // Eq1 + 3 iterations × 4 slots × 2 stages (all EM slots aggregate).
        assert_eq!(kernels.len(), 1 + 3 * 4 * 2);
        assert!(kernels.iter().any(|k| k.is_reduction()));
        let flops: u64 = kernels.iter().map(|k| k.flops).sum();
        assert!(
            flops > em.total_flops() / 2,
            "lowering must carry the flops"
        );
    }

    #[test]
    fn dynamic_dispatch_unchanged() {
        let dy = RpCensus::new(100, 1152, 10, 8, 16, 3);
        assert_eq!(lower_rp(&dy).len(), 1 + 3 * 11);
    }
}
