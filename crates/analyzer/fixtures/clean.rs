//! Fixture: the same hazard shapes as `violations.rs`, each justified —
//! the lint must come back empty.

pub fn deref_raw(p: *const u8) -> u8 {
    // SAFETY: fixture caller guarantees `p` is valid for reads.
    unsafe { *p }
}

pub fn take(v: Option<u32>) -> u32 {
    // LINT-ALLOW(R2): fixture invariant — the option is always Some here.
    v.unwrap()
}

impl Counters {
    pub fn read(&self) -> u64 {
        // LINT-ALLOW(R3): fixture counter is a statistic; ordering is irrelevant.
        self.state.load(Ordering::Relaxed)
    }

    pub fn both(&self) -> u64 {
        // LINT-ALLOW(R2,R3): fixture — audited relaxed read, product bounded.
        self.state.load(Ordering::Relaxed).checked_mul(2).unwrap()
    }
}

pub fn ordered(shared: &Shared, mbox: &Mailbox) {
    let s = shared.state.lock();
    let q = mbox.queue.lock();
}
