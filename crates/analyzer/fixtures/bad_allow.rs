//! Fixture: malformed allowlist entries are diagnostics themselves and
//! never suppress the underlying finding.

pub fn missing_reason(v: Option<u32>) -> u32 {
    // LINT-ALLOW(R2)
    v.unwrap()
}

pub fn unknown_rule(v: Option<u32>) -> u32 {
    // LINT-ALLOW(R9): no such rule exists.
    v.unwrap()
}
