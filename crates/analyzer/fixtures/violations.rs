//! Fixture: one known violation per rule; golden lines are pinned in
//! `tests/golden.rs`. Never compiled — scanned and linted only.

pub fn deref_raw(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn take(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn explode() {
    panic!("fixture");
}

impl Counters {
    pub fn read(&self) -> u64 {
        self.state.load(Ordering::Relaxed)
    }
}

pub fn inverted(mbox: &Mailbox, shared: &Shared) {
    let q = mbox.queue.lock();
    let s = shared.state.lock();
}
