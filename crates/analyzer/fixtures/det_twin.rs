//! Fixture: a deterministic twin reaching for the wall clock.

pub fn step_now() -> u64 {
    let t = Instant::now();
    t.elapsed().as_micros() as u64
}
