//! Golden-diagnostic tests: the fixture files under `fixtures/` carry
//! known violations; the linter must report exactly these `(rule, line)`
//! pairs — no more, no fewer. Fixture paths are remapped onto synthetic
//! workspace paths so crate gating (R2) and manifest suffix matching
//! (R4/R5) behave as they do in a real run.

use pim_analyzer::diag::{Diagnostic, Rule};
use pim_analyzer::exhaust::{self, models, Options};
use pim_analyzer::manifest::Manifest;
use pim_analyzer::rules::{lint_file, FileCtx};
use pim_analyzer::scan::scan;

/// The manifest the fixtures are linted against — a miniature of the real
/// `protocol.manifest` with one entry per rule family.
const FIXTURE_MANIFEST: &str = "\
atomic serve state require-order
lock scheduler 0 shared.state
lock mailbox 2 queue
det-file serve/src/det_twin.rs
";

fn lint_fixture(name: &str, synthetic_path: &str, krate: &str) -> Vec<Diagnostic> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let scanned = scan(&src);
    let manifest = Manifest::parse(FIXTURE_MANIFEST).expect("fixture manifest parses");
    let ctx = FileCtx {
        path: synthetic_path,
        krate,
        scanned: &scanned,
    };
    let mut diags = lint_file(&ctx, &manifest);
    pim_analyzer::diag::sort(&mut diags);
    diags
}

fn pairs(diags: &[Diagnostic]) -> Vec<(Rule, u32)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn violations_fixture_reports_every_rule_at_golden_lines() {
    let diags = lint_fixture("violations.rs", "crates/serve/src/violations.rs", "serve");
    assert_eq!(
        pairs(&diags),
        vec![
            (Rule::R1Safety, 5),
            (Rule::R2Panic, 9),
            (Rule::R2Panic, 13),
            (Rule::R3Ordering, 18),
            (Rule::R4LockOrder, 24),
        ],
        "unexpected diagnostic set: {diags:#?}"
    );
    // Messages carry the full file:line anchor for editor jumping.
    assert_eq!(
        diags[0].to_string(),
        format!("R1: crates/serve/src/violations.rs:5: {}", diags[0].message)
    );
    // The inversion names both classes and the held acquisition line.
    let inversion = &diags[4];
    assert!(
        inversion.message.contains("mailbox") && inversion.message.contains("scheduler"),
        "inversion message should name both lock classes: {inversion}"
    );
}

#[test]
fn clean_fixture_is_silent() {
    let diags = lint_fixture("clean.rs", "crates/serve/src/clean.rs", "serve");
    assert!(
        diags.is_empty(),
        "clean fixture must lint clean: {diags:#?}"
    );
}

#[test]
fn outside_r2_crates_unwrap_is_not_flagged() {
    // The same violations file linted as a crate outside the R2 set:
    // unwrap/panic sites are out of scope, the rest still fire.
    let diags = lint_fixture(
        "violations.rs",
        "crates/workloads/src/violations.rs",
        "workloads",
    );
    let rules: Vec<Rule> = diags.iter().map(|d| d.rule).collect();
    assert!(!rules.contains(&Rule::R2Panic), "{diags:#?}");
    assert!(rules.contains(&Rule::R1Safety));
}

#[test]
fn malformed_allows_are_diagnostics_and_do_not_suppress() {
    let diags = lint_fixture("bad_allow.rs", "crates/serve/src/bad_allow.rs", "serve");
    assert_eq!(
        pairs(&diags),
        vec![
            (Rule::RAllow, 5),
            (Rule::R2Panic, 6),
            (Rule::RAllow, 10),
            (Rule::R2Panic, 11),
        ],
        "{diags:#?}"
    );
}

#[test]
fn det_twin_fixture_flags_wall_clock() {
    let diags = lint_fixture("det_twin.rs", "crates/serve/src/det_twin.rs", "serve");
    assert_eq!(pairs(&diags), vec![(Rule::R5Determinism, 4)], "{diags:#?}");
    // The same file outside the declared det suffix is fine.
    let diags = lint_fixture("det_twin.rs", "crates/serve/src/other.rs", "serve");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn broken_models_replay_deterministically() {
    // End-to-end seeded-replay contract: a Broken model's counterexample,
    // replayed from its recorded choices, reproduces the identical op
    // trace — twice.
    fn assert_replays<S: Send + Sync + 'static>(model: &exhaust::Model<S>) {
        let outcome = exhaust::explore(model, Options::default());
        let cex = outcome
            .failure
            .unwrap_or_else(|| panic!("{}: broken variant must fail", model.name));
        let once = exhaust::replay(model, &cex.choices);
        let twice = exhaust::replay(model, &cex.choices);
        assert_eq!(
            once, cex.ops,
            "{}: replay must match recorded ops",
            model.name
        );
        assert_eq!(once, twice, "{}: replay must be deterministic", model.name);
    }
    assert_replays(&models::mailbox(models::Variant::Broken));
    assert_replays(&models::bloom(models::Variant::Broken));
    assert_replays(&models::reserve(models::Variant::Broken));
}

#[test]
fn seeded_sampling_is_reproducible_across_processes() {
    // `sample` derives every scheduling decision from the seed alone, so
    // equal seeds mean equal exploration — the property that makes a CI
    // failure reproducible from its printed seed.
    let model = models::reserve(models::Variant::Broken);
    let a = exhaust::sample(&model, 0xBEEF, 200, Options::default());
    let b = exhaust::sample(&model, 0xBEEF, 200, Options::default());
    assert_eq!(a.executions, b.executions);
    assert_eq!(
        a.failure.as_ref().map(|c| &c.trace),
        b.failure.as_ref().map(|c| &c.trace)
    );
}
