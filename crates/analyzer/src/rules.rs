//! The rule engine: walks a scanned token stream once, tracking brace
//! depth, `#[cfg(test)]` regions, function extents, attribute lines, held
//! lock guards, and paren/call nesting — then applies rules R1–R5.
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1   | every `unsafe` is preceded by a `SAFETY:` / `# Safety` comment |
//! | R2   | no `unwrap()` / `expect()` / `panic!` / `todo!` in non-test library code of the serve-tier crates |
//! | R3   | `Ordering::Relaxed` on a protocol-manifest atomic needs an audited justification |
//! | R4   | nested lock acquisitions follow the declared partial order |
//! | R5   | no wall clock inside the deterministic workload twins |
//!
//! Site-level escape hatch: `// LINT-ALLOW(R2): reason` on the flagged
//! line or the line above suppresses that rule there. The reason is
//! mandatory; an allow without one (or naming no known rule) is itself a
//! diagnostic (`RA`).

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Diagnostic, Rule};
use crate::manifest::{AtomicPolicy, Manifest};
use crate::scan::{Scanned, Tok, TokKind};

/// Crates whose non-test library code falls under R2.
pub const R2_CRATES: &[&str] = &["serve", "cache", "store", "tensor"];

/// Atomic RMW / load / store method names whose ordering arguments R3
/// inspects.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "fetch_nand",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One parsed `LINT-ALLOW` site.
#[derive(Debug)]
struct Allow {
    rules: Vec<Rule>,
    has_reason: bool,
    used: bool,
}

/// Per-file inputs to the rule walk.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    /// Crate directory name (`serve`, `cache`, …; `suite` for root src).
    pub krate: &'a str,
    pub scanned: &'a Scanned,
}

/// A currently-held lock guard (R4).
#[derive(Debug)]
struct Held {
    class: String,
    rank: u32,
    line: u32,
    /// Brace depth at acquisition.
    depth: i32,
    /// `let`-bound guard variable name; `None` for a temporary released at
    /// the end of its statement.
    bound: Option<String>,
}

/// A call frame on the paren stack (R3 receiver resolution).
#[derive(Debug)]
struct CallFrame {
    method: Option<String>,
    chain: Vec<String>,
}

/// Lints one scanned file.
pub fn lint_file(ctx: &FileCtx<'_>, manifest: &Manifest) -> Vec<Diagnostic> {
    let toks = &ctx.scanned.tokens;
    let mut diags: Vec<Diagnostic> = Vec::new();

    // ── LINT-ALLOW sites ────────────────────────────────────────────────
    let mut allows: BTreeMap<u32, Allow> = BTreeMap::new();
    for (&line, text) in &ctx.scanned.comments {
        let Some(pos) = text.find("LINT-ALLOW(") else {
            continue;
        };
        let rest = &text[pos + "LINT-ALLOW(".len()..];
        let Some(close) = rest.find(')') else {
            diags.push(Diagnostic::new(
                Rule::RAllow,
                ctx.path,
                line,
                "malformed LINT-ALLOW: missing `)`",
            ));
            continue;
        };
        let rules: Vec<Option<Rule>> = rest[..close]
            .split(',')
            .map(|c| Rule::from_code(c.trim()))
            .collect();
        let reason = rest[close + 1..].trim_start_matches(':').trim();
        if rules.iter().any(Option::is_none) || rules.is_empty() {
            diags.push(Diagnostic::new(
                Rule::RAllow,
                ctx.path,
                line,
                format!("LINT-ALLOW names an unknown rule in `({})`", &rest[..close]),
            ));
            continue;
        }
        let has_reason = !reason.is_empty();
        if !has_reason {
            diags.push(Diagnostic::new(
                Rule::RAllow,
                ctx.path,
                line,
                "LINT-ALLOW without a reason: every allowlist entry must justify itself",
            ));
        }
        allows.insert(
            line,
            Allow {
                rules: rules.into_iter().flatten().collect(),
                has_reason,
                used: false,
            },
        );
    }
    let mut allowed = |allows: &mut BTreeMap<u32, Allow>, rule: Rule, line: u32| -> bool {
        for l in [line, line.saturating_sub(1)] {
            if let Some(a) = allows.get_mut(&l) {
                if a.has_reason && a.rules.contains(&rule) {
                    a.used = true;
                    return true;
                }
            }
        }
        false
    };

    // ── the walk ────────────────────────────────────────────────────────
    let mut depth: i32 = 0;
    // Depths at which #[cfg(test)] / #[test] regions opened.
    let mut test_regions: Vec<i32> = Vec::new();
    let mut pending_test_attr = false;
    let mut pending_test_attr_depth: i32 = 0;
    // Lines fully occupied by attributes (R1 look-back skips them).
    let mut attr_lines: BTreeSet<u32> = BTreeSet::new();
    // Function stack: (name, depth at open).
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    // Held lock guards (R4).
    let mut held: Vec<Held> = Vec::new();
    // Name bound by `let` in the current statement, if any.
    let mut stmt_let: Option<String> = None;
    let mut saw_let_this_stmt = false;
    // Call/paren stack (R3).
    let mut calls: Vec<CallFrame> = Vec::new();
    // R1 dedup.
    let mut r1_lines: BTreeSet<u32> = BTreeSet::new();

    let det_file = manifest.is_det_file(ctx.path);
    let det_fns = manifest.det_fns_for(ctx.path);
    let r2_applies = R2_CRATES.contains(&ctx.krate);

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let in_test = !test_regions.is_empty();

        match &t.kind {
            TokKind::Punct('#') if matches!(toks.get(i + 1), Some(n) if n.is_punct('[')) => {
                // Attribute: scan to the matching `]`, note whether it is a
                // test gate, and record its lines.
                let mut j = i + 1;
                let mut bracket = 0i32;
                let mut is_test = false;
                while j < toks.len() {
                    let a = &toks[j];
                    attr_lines.insert(a.line);
                    match &a.kind {
                        TokKind::Punct('[') => bracket += 1,
                        TokKind::Punct(']') => {
                            bracket -= 1;
                            if bracket == 0 {
                                break;
                            }
                        }
                        TokKind::Ident(s) if s == "test" => is_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                attr_lines.insert(t.line);
                if is_test {
                    pending_test_attr = true;
                    pending_test_attr_depth = depth;
                }
                i = j + 1;
                continue;
            }
            TokKind::Punct('{') => {
                depth += 1;
                if pending_test_attr {
                    test_regions.push(depth);
                    pending_test_attr = false;
                }
                if let Some(name) = pending_fn.take() {
                    fn_stack.push((name, depth));
                }
                stmt_let = None;
                saw_let_this_stmt = false;
            }
            TokKind::Punct('}') => {
                // Guards whose enclosing block closes here are released.
                held.retain(|h| h.depth < depth);
                if test_regions.last() == Some(&depth) {
                    test_regions.pop();
                }
                if fn_stack.last().map(|(_, d)| *d) == Some(depth) {
                    fn_stack.pop();
                }
                depth -= 1;
                stmt_let = None;
                saw_let_this_stmt = false;
            }
            TokKind::Punct(';') => {
                if pending_test_attr && depth == pending_test_attr_depth {
                    // `#[cfg(test)] mod tests;` — no body here.
                    pending_test_attr = false;
                }
                pending_fn = None;
                // Temporary (unbound) guards die at their statement's end.
                held.retain(|h| !(h.bound.is_none() && h.depth == depth));
                stmt_let = None;
                saw_let_this_stmt = false;
            }
            TokKind::Punct('(') => {
                let (method, chain) = callee_of(toks, i);
                calls.push(CallFrame { method, chain });
            }
            TokKind::Punct(')') => {
                calls.pop();
            }
            TokKind::Ident(s) => match s.as_str() {
                "let" => {
                    saw_let_this_stmt = true;
                    // `let [mut] name = …`
                    let mut j = i + 1;
                    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                        j += 1;
                    }
                    stmt_let = toks.get(j).and_then(|t| t.ident()).map(str::to_string);
                }
                "fn" => {
                    if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                        pending_fn = Some(name.to_string());
                    }
                }
                "unsafe" if !in_test => {
                    if r1_lines.insert(t.line)
                        && !has_safety_comment(ctx.scanned, &attr_lines, t.line)
                        && !allowed(&mut allows, Rule::R1Safety, t.line)
                    {
                        let what = match toks.get(i + 1).and_then(|t| t.ident()) {
                            Some("fn") => "unsafe fn",
                            Some("impl") => "unsafe impl",
                            _ => "unsafe block",
                        };
                        diags.push(Diagnostic::new(
                            Rule::R1Safety,
                            ctx.path,
                            t.line,
                            format!(
                                "{what} without a preceding `SAFETY:` (or doc `# Safety`) comment{}",
                                in_fn(&fn_stack)
                            ),
                        ));
                    }
                }
                "unwrap" | "expect"
                    if r2_applies
                        && !in_test
                        && i > 0
                        && toks[i - 1].is_punct('.')
                        && matches!(toks.get(i + 1), Some(n) if n.is_punct('(')) =>
                {
                    if !allowed(&mut allows, Rule::R2Panic, t.line) {
                        diags.push(Diagnostic::new(
                            Rule::R2Panic,
                            ctx.path,
                            t.line,
                            format!(
                                "`.{s}()` in non-test library code{} — return a typed error or LINT-ALLOW(R2) with a reason",
                                in_fn(&fn_stack)
                            ),
                        ));
                    }
                }
                "panic" | "todo"
                    if r2_applies
                        && !in_test
                        && matches!(toks.get(i + 1), Some(n) if n.is_punct('!'))
                        && !(i > 0 && toks[i - 1].is_punct(':')) =>
                {
                    if !allowed(&mut allows, Rule::R2Panic, t.line) {
                        diags.push(Diagnostic::new(
                            Rule::R2Panic,
                            ctx.path,
                            t.line,
                            format!(
                                "`{s}!` in non-test library code{} — return a typed error or LINT-ALLOW(R2) with a reason",
                                in_fn(&fn_stack)
                            ),
                        ));
                    }
                }
                "Relaxed"
                    if i >= 3
                        && toks[i - 1].is_punct(':')
                        && toks[i - 2].is_punct(':')
                        && toks[i - 3].is_ident("Ordering")
                        && !in_test =>
                {
                    if let Some(atomic) = enclosing_atomic(&calls) {
                        let key = (ctx.krate.to_string(), atomic.clone());
                        if let Some(AtomicPolicy::RequireOrder) = manifest.atomics.get(&key) {
                            if !allowed(&mut allows, Rule::R3Ordering, t.line) {
                                diags.push(Diagnostic::new(
                                    Rule::R3Ordering,
                                    ctx.path,
                                    t.line,
                                    format!(
                                        "`Ordering::Relaxed` on protocol atomic `{atomic}`{} — upgrade the ordering or audit it in the manifest",
                                        in_fn(&fn_stack)
                                    ),
                                ));
                            }
                        }
                    }
                }
                "lock" | "Instant" | "SystemTime" => {
                    // R4: `.lock()` acquisitions — classified by receiver
                    // chain, falling back to lockfn entries (covers
                    // guard-returning helpers that are themselves named
                    // `lock`, like the mailbox's `self.lock()`).
                    if s == "lock"
                        && i > 0
                        && toks[i - 1].is_punct('.')
                        && matches!(toks.get(i + 1), Some(n) if n.is_punct('('))
                        && !in_test
                    {
                        let chain = receiver_chain(toks, i - 1);
                        let classified = manifest
                            .classify_chain(&chain)
                            .map(|(c, r)| (c.to_string(), r, false))
                            .or_else(|| {
                                let inclusive = receiver_chain_inclusive(toks, i);
                                manifest
                                    .classify_lock_fn(ctx.path, &inclusive)
                                    .map(|(c, r, t)| (c.to_string(), r, t))
                            });
                        if let Some((class, rank, transient)) = classified {
                            let bound = if saw_let_this_stmt && guard_reaches_binding(toks, i + 1) {
                                stmt_let.clone()
                            } else {
                                None
                            };
                            acquire(
                                &mut held,
                                &mut diags,
                                ctx,
                                &mut allows,
                                &mut allowed,
                                &class,
                                rank,
                                transient,
                                t.line,
                                depth,
                                bound,
                                &fn_stack,
                            );
                        }
                    }
                    // R5: wall clock in deterministic twins.
                    if (s == "Instant" || s == "SystemTime") && !in_test {
                        let is_now_call = s == "SystemTime"
                            || (toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                                && toks.get(i + 3).is_some_and(|t| t.is_ident("now")));
                        let in_det_fn = fn_stack
                            .iter()
                            .any(|(name, _)| det_fns.contains(&name.as_str()));
                        if is_now_call
                            && (det_file || in_det_fn)
                            && !allowed(&mut allows, Rule::R5Determinism, t.line)
                        {
                            diags.push(Diagnostic::new(
                                Rule::R5Determinism,
                                ctx.path,
                                t.line,
                                format!(
                                    "wall clock (`{s}`) inside a deterministic twin{} — thread simulated time through instead",
                                    in_fn(&fn_stack)
                                ),
                            ));
                        }
                    }
                }
                "drop" => {
                    // `drop(guard)` releases a bound guard early.
                    if matches!(toks.get(i + 1), Some(n) if n.is_punct('('))
                        && matches!(toks.get(i + 3), Some(n) if n.is_punct(')'))
                    {
                        if let Some(name) = toks.get(i + 2).and_then(|t| t.ident()) {
                            if let Some(pos) =
                                held.iter().rposition(|h| h.bound.as_deref() == Some(name))
                            {
                                held.remove(pos);
                            }
                        }
                    }
                }
                _ => {
                    // R4: guard-returning helper calls (`lock_shard(...)`).
                    // `fn lock_shard(` is the definition, not a call.
                    if !in_test
                        && matches!(toks.get(i + 1), Some(n) if n.is_punct('('))
                        && !(i > 0 && toks[i - 1].is_ident("fn"))
                    {
                        let chain = receiver_chain_inclusive(toks, i);
                        if let Some((class, rank, transient)) =
                            manifest.classify_lock_fn(ctx.path, &chain)
                        {
                            let class = class.to_string();
                            let bound = if saw_let_this_stmt && guard_reaches_binding(toks, i + 1) {
                                stmt_let.clone()
                            } else {
                                None
                            };
                            acquire(
                                &mut held,
                                &mut diags,
                                ctx,
                                &mut allows,
                                &mut allowed,
                                &class,
                                rank,
                                transient,
                                t.line,
                                depth,
                                bound,
                                &fn_stack,
                            );
                        }
                    }
                }
            },
            _ => {}
        }
        i += 1;
    }

    diags
}

/// `" (in fn …)"` context suffix.
fn in_fn(fn_stack: &[(String, i32)]) -> String {
    match fn_stack.last() {
        Some((name, _)) => format!(" (in `fn {name}`)"),
        None => String::new(),
    }
}

/// Registers a lock acquisition, emitting an R4 diagnostic when a held
/// lock outranks (or ties) the new one. Transient acquisitions are
/// order-checked but never enter the held set.
#[allow(clippy::too_many_arguments)]
fn acquire(
    held: &mut Vec<Held>,
    diags: &mut Vec<Diagnostic>,
    ctx: &FileCtx<'_>,
    allows: &mut BTreeMap<u32, Allow>,
    allowed: &mut impl FnMut(&mut BTreeMap<u32, Allow>, Rule, u32) -> bool,
    class: &str,
    rank: u32,
    transient: bool,
    line: u32,
    depth: i32,
    bound: Option<String>,
    fn_stack: &[(String, i32)],
) {
    for h in held.iter() {
        if h.rank >= rank && !allowed(allows, Rule::R4LockOrder, line) {
            diags.push(Diagnostic::new(
                Rule::R4LockOrder,
                ctx.path,
                line,
                format!(
                    "lock-order inversion: acquiring `{class}` (rank {rank}) while holding `{}` (rank {}, line {}){}",
                    h.class, h.rank, h.line,
                    in_fn(fn_stack)
                ),
            ));
            break;
        }
    }
    if transient {
        return;
    }
    held.push(Held {
        class: class.to_string(),
        rank,
        line,
        depth,
        bound,
    });
}

/// Index just past the `)` matching the `(` at `open`.
fn match_group(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Whether the guard produced by the call opening at `open` (index of the
/// `(`) flows into the statement's `let` binding. Poison adapters
/// (`unwrap` / `expect` / `unwrap_or_else`) pass the guard through; any
/// further projection or method (`.1`, `.report()`) consumes it as a
/// temporary that dies at the statement's end.
fn guard_reaches_binding(toks: &[Tok], open: usize) -> bool {
    let mut j = match_group(toks, open);
    while toks.get(j).is_some_and(|t| t.is_punct('.'))
        && toks
            .get(j + 1)
            .and_then(|t| t.ident())
            .is_some_and(|n| matches!(n, "unwrap" | "expect" | "unwrap_or_else"))
        && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
    {
        j = match_group(toks, j + 2);
    }
    !toks.get(j).is_some_and(|t| t.is_punct('.'))
}

/// Does line `line` carry (or is it preceded by) a safety comment?
/// Accepted markers: `SAFETY:` anywhere in a comment, or a doc-comment
/// `# Safety` section heading. The look-back walks over contiguous
/// comment-only, blank, and attribute lines (bounded).
fn has_safety_comment(scanned: &Scanned, attr_lines: &BTreeSet<u32>, line: u32) -> bool {
    let is_marker = |text: &str| text.contains("SAFETY") || text.contains("# Safety");
    if scanned.comment_on(line).is_some_and(is_marker) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    for _ in 0..24 {
        if l == 0 {
            return false;
        }
        if scanned.comment_on(l).is_some_and(is_marker) {
            return true;
        }
        let code = scanned.has_code(l);
        let attr = attr_lines.contains(&l);
        let comment = scanned.comment_on(l).is_some();
        if code && !attr {
            // First real code line above: its trailing comment was already
            // checked; stop.
            return false;
        }
        if !code && !comment && !attr {
            // Blank line: only keep walking if it separates the unsafe
            // item from its doc block — allow one blank.
            if l + 1 == line {
                l -= 1;
                continue;
            }
            return false;
        }
        l -= 1;
    }
    false
}

/// For an opening paren at `toks[i]`, the method name directly before it
/// (if any) and that method's receiver chain.
fn callee_of(toks: &[Tok], i: usize) -> (Option<String>, Vec<String>) {
    if i == 0 {
        return (None, Vec::new());
    }
    match toks[i - 1].ident() {
        Some(name) => {
            let mut chain = if i >= 2 && toks[i - 2].is_punct('.') {
                receiver_chain(toks, i - 2)
            } else {
                Vec::new()
            };
            chain.push(name.to_string());
            (Some(name.to_string()), chain)
        }
        None => (None, Vec::new()),
    }
}

/// Receiver chain ending at the `.` at `toks[dot]`, outermost → innermost:
/// `self.pool.outstanding[replica].load` with `dot` at the final `.` gives
/// `["self", "pool", "outstanding"]`. Index and call groups are skipped
/// (`x[i].y` → `x`, `f(a).y` → `f`).
fn receiver_chain(toks: &[Tok], dot: usize) -> Vec<String> {
    let mut chain: Vec<String> = Vec::new();
    let mut j = dot; // points at a `.`
    loop {
        if j == 0 {
            break;
        }
        let mut k = j - 1; // token before the `.`
                           // Skip a trailing index / call group.
        loop {
            match &toks[k].kind {
                TokKind::Punct(']') => {
                    let mut depth = 1;
                    while k > 0 && depth > 0 {
                        k -= 1;
                        match &toks[k].kind {
                            TokKind::Punct(']') => depth += 1,
                            TokKind::Punct('[') => depth -= 1,
                            _ => {}
                        }
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                TokKind::Punct(')') => {
                    let mut depth = 1;
                    while k > 0 && depth > 0 {
                        k -= 1;
                        match &toks[k].kind {
                            TokKind::Punct(')') => depth += 1,
                            TokKind::Punct('(') => depth -= 1,
                            _ => {}
                        }
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                _ => break,
            }
        }
        if let Some(name) = toks[k].ident() {
            chain.push(name.to_string());
            if k >= 1 && toks[k - 1].is_punct('.') {
                j = k - 1;
                continue;
            }
        }
        break;
    }
    chain.reverse();
    chain
}

/// Like [`receiver_chain`], but for a call where `toks[i]` is the callee
/// ident itself (`self.lock_shard(…)` with `i` at `lock_shard` gives
/// `["self", "lock_shard"]`).
fn receiver_chain_inclusive(toks: &[Tok], i: usize) -> Vec<String> {
    let mut chain = if i >= 1 && toks[i - 1].is_punct('.') {
        receiver_chain(toks, i - 1)
    } else {
        Vec::new()
    };
    if let Some(name) = toks[i].ident() {
        chain.push(name.to_string());
    }
    chain
}

/// The nearest enclosing call frame that is an atomic-op method; returns
/// the atomic's field/variable name (last chain element before the
/// method).
fn enclosing_atomic(calls: &[CallFrame]) -> Option<String> {
    for frame in calls.iter().rev() {
        if let Some(m) = &frame.method {
            if ATOMIC_METHODS.contains(&m.as_str()) && frame.chain.len() >= 2 {
                return Some(frame.chain[frame.chain.len() - 2].clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn lint(src: &str, krate: &str, manifest: &str) -> Vec<Diagnostic> {
        let scanned = scan(src);
        let manifest = Manifest::parse(manifest).expect("test manifest parses");
        lint_file(
            &FileCtx {
                path: &format!("crates/{krate}/src/lib.rs"),
                krate,
                scanned: &scanned,
            },
            &manifest,
        )
    }

    #[test]
    fn r1_flags_uncommented_unsafe_and_accepts_safety() {
        let d = lint("fn f() { unsafe { g() } }", "store", "");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::R1Safety);

        let d = lint(
            "fn f() {\n    // SAFETY: g is fine\n    unsafe { g() }\n}",
            "store",
            "",
        );
        assert!(d.is_empty(), "{d:?}");

        // Doc `# Safety` heading with an attribute in between.
        let d = lint(
            "/// # Safety\n/// caller checks\n#[inline]\npub unsafe fn g() {}\n",
            "tensor",
            "",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn r2_flags_only_nontest_code_in_scoped_crates() {
        let src = "fn f() { x.unwrap(); panic!(\"no\"); }\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }";
        let d = lint(src, "serve", "");
        assert_eq!(d.len(), 2, "{d:?}");
        // Out-of-scope crate: silent.
        assert!(lint(src, "hmc-sim", "").is_empty());
        // LINT-ALLOW with a reason suppresses; without one it reports.
        let d = lint(
            "fn f() {\n    // LINT-ALLOW(R2): poisoning propagates the wounded path\n    x.unwrap();\n}",
            "serve",
            "",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = lint(
            "fn f() {\n    // LINT-ALLOW(R2):\n    x.unwrap();\n}",
            "serve",
            "",
        );
        assert_eq!(d.len(), 2, "{d:?}"); // missing reason + unsuppressed R2
    }

    #[test]
    fn r3_flags_manifest_atomics_only() {
        let manifest = "atomic serve outstanding require-order\natomic serve rr relaxed-ok: rotation counter, wrap is fine\n";
        let src = "fn f() {\n    self.pool.outstanding[i].load(Ordering::Relaxed);\n    self.pool.rr.fetch_add(1, Ordering::Relaxed);\n    self.other.load(Ordering::Relaxed);\n}";
        let d = lint(src, "serve", manifest);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::R3Ordering);
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("outstanding"));
    }

    #[test]
    fn r4_detects_inversion_and_respects_release() {
        let manifest =
            "lock scheduler 0 shared.state\nlock slot 1 slots,slot\nlock metrics 4 metrics\n";
        // Inversion: slot held, then scheduler acquired.
        let src = "fn f() {\n    let g = self.slots[0].lock();\n    let st = self.shared.state.lock();\n}";
        let d = lint(src, "serve", manifest);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::R4LockOrder);
        // Correct order: scheduler then slot then metrics.
        let src = "fn f() {\n    let st = self.shared.state.lock();\n    let g = self.slots[0].lock();\n    let m = self.metrics.lock();\n}";
        assert!(lint(src, "serve", manifest).is_empty());
        // drop() releases: no inversion after dropping the outer guard.
        let src = "fn f() {\n    let st = self.shared.state.lock();\n    drop(st);\n    let g = self.slots[0].lock();\n    drop(g);\n    let st2 = self.shared.state.lock();\n}";
        assert!(lint(src, "serve", manifest).is_empty());
        // Temporaries release at statement end.
        let src = "fn f() {\n    self.metrics.lock().record();\n    let st = self.shared.state.lock();\n}";
        assert!(lint(src, "serve", manifest).is_empty());
        // Block scoping releases bound guards.
        let src = "fn f() {\n    {\n        let g = self.slots[0].lock();\n    }\n    let st = self.shared.state.lock();\n}";
        assert!(lint(src, "serve", manifest).is_empty());
    }

    #[test]
    fn r4_classifies_helper_lock_fns() {
        let manifest =
            "lock scheduler 0 shared.state\nlock shard 3 shards,shard\nlockfn cache/src/lib.rs lock_shard shard\n";
        let src = "fn f() {\n    let shard = self.lock_shard(d);\n    let st = self.shared.state.lock();\n}";
        let d = lint(src, "cache", manifest);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("shard"));
    }

    #[test]
    fn r4_transient_lockfns_check_order_but_hold_nothing() {
        let manifest = "lock scheduler 0 shared.state\nlock registry-slot 1 slot\n\
                        lockfn serve/src/lib.rs models.current registry-slot transient\n";
        // Order-checked at the call site: transient slot under scheduler is fine...
        let src = "fn f() {\n    let st = self.shared.state.lock();\n    let h = shared.models.current(m);\n}";
        assert!(lint(src, "serve", manifest).is_empty());
        // ...and nothing stays held: scheduler after the transient call is fine too.
        let src = "fn f() {\n    let h = shared.models.current(m);\n    let st = self.shared.state.lock();\n}";
        assert!(lint(src, "serve", manifest).is_empty());
        // But a transient acquisition under a higher-ranked lock still trips.
        let manifest2 = "lock scheduler 0 shared.state\nlock registry-slot 1 slot\n\
                         lockfn serve/src/lib.rs scheduler_sweep scheduler transient\n";
        let src = "fn f() {\n    let g = self.slot.lock();\n    scheduler_sweep();\n}";
        let d = lint(src, "serve", manifest2);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::R4LockOrder);
    }

    #[test]
    fn r4_lock_named_helpers_classify_via_lockfn() {
        // The mailbox's own guard-returning helper is literally named
        // `lock`; the `.lock()` arm must fall back to lockfn entries.
        let manifest = "lock mailbox 2 queue\nlock metrics 5 metrics\n\
                        lockfn serve/src/lib.rs self.lock mailbox\n";
        let src =
            "fn push(&self) {\n    let mut g = self.lock();\n    let m = self.metrics.lock();\n}";
        assert!(lint(src, "serve", manifest).is_empty());
        let src =
            "fn push(&self) {\n    let m = self.metrics.lock();\n    let mut g = self.lock();\n}";
        let d = lint(src, "serve", manifest);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("mailbox"), "{}", d[0].message);
    }

    #[test]
    fn r5_flags_wall_clock_in_det_scopes() {
        let manifest = "det-fn cache/src/lib.rs simulate\n";
        let src =
            "fn live() { let t = Instant::now(); }\nfn simulate() { let t = Instant::now(); }";
        let d = lint(src, "cache", manifest);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::R5Determinism);
        assert!(d[0].message.contains("simulate"));

        let manifest = "det-file cache/src/lib.rs\n";
        let d = lint("fn f() { let t = SystemTime::now(); }", "cache", manifest);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn receiver_chains_walk_index_and_call_groups() {
        let toks = scan("self.pool.outstanding[replica].load(x)").tokens;
        let dot = toks
            .iter()
            .position(|t| t.is_ident("load"))
            .map(|i| i - 1)
            .unwrap();
        assert_eq!(
            receiver_chain(&toks, dot),
            vec!["self", "pool", "outstanding"]
        );
        let toks = scan("self.shard_of(digest).lock()").tokens;
        let dot = toks
            .iter()
            .position(|t| t.is_ident("lock"))
            .map(|i| i - 1)
            .unwrap();
        assert_eq!(receiver_chain(&toks, dot), vec!["self", "shard_of"]);
    }
}
