//! CLI for the workspace analyzer.
//!
//! ```text
//! pim-analyzer -- lint     [--root DIR]        # invariant linter only
//! pim-analyzer -- exhaust  [--sample SEED N]   # interleaving checker only
//! pim-analyzer -- check    [--root DIR]        # both — the CI gate
//! ```
//!
//! Exit code 0 ⇒ clean; 1 ⇒ diagnostics or a model-checking failure;
//! 2 ⇒ usage / environment error.

use std::path::PathBuf;
use std::process::ExitCode;

use pim_analyzer::exhaust::models::{check_all, Variant};
use pim_analyzer::exhaust::{sample, Options};

fn usage() -> ExitCode {
    eprintln!("usage: pim-analyzer [lint|exhaust|check] [--root DIR] [--sample SEED ITERS]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut sample_args: Option<(u64, u64)> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--sample" => {
                let (Some(seed), Some(n)) = (it.next(), it.next()) else {
                    return usage();
                };
                let (Ok(seed), Ok(n)) = (parse_u64(&seed), n.parse::<u64>()) else {
                    return usage();
                };
                sample_args = Some((seed, n));
            }
            "lint" | "exhaust" | "check" if cmd.is_none() => cmd = Some(a),
            _ => return usage(),
        }
    }
    let cmd = cmd.unwrap_or_else(|| "check".to_string());

    let mut failed = false;
    if cmd == "lint" || cmd == "check" {
        let root = match root.clone().or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| pim_analyzer::find_root(&d))
        }) {
            Some(r) => r,
            None => {
                eprintln!("error: cannot locate workspace root (use --root)");
                return ExitCode::from(2);
            }
        };
        match pim_analyzer::lint_workspace(&root) {
            Ok(diags) if diags.is_empty() => {
                println!("lint: clean ({} rules, 0 diagnostics)", 5);
            }
            Ok(diags) => {
                for d in &diags {
                    println!("{d}");
                }
                println!("lint: {} diagnostic(s)", diags.len());
                failed = true;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if cmd == "exhaust" || cmd == "check" {
        let opts = Options::default();
        for report in check_all(opts) {
            let verdict = match (report.variant, report.ok()) {
                (Variant::Correct, true) => "pass (exhausted clean)".to_string(),
                (Variant::Correct, false) => {
                    failed = true;
                    match &report.outcome.failure {
                        Some(cex) => {
                            let mut s = format!("FAIL: {}\n  schedule:", cex.message);
                            for op in &cex.ops {
                                s.push_str("\n    ");
                                s.push_str(op);
                            }
                            s.push_str(&format!("\n  replay choices: {:?}", cex.choices));
                            s
                        }
                        None => "FAIL: tree not exhausted within execution cap".to_string(),
                    }
                }
                (Variant::Broken, true) => format!(
                    "self-test pass (counterexample found: {})",
                    report
                        .outcome
                        .failure
                        .as_ref()
                        .map(|c| c.message.as_str())
                        .unwrap_or("")
                ),
                (Variant::Broken, false) => {
                    failed = true;
                    "self-test FAIL: broken variant survived exhaustive exploration".to_string()
                }
            };
            println!(
                "exhaust: {:<8} {:<8} {:>6} executions  {}",
                report.name,
                format!("{:?}", report.variant).to_lowercase(),
                report.outcome.executions,
                verdict
            );
        }
        if let Some((seed, iters)) = sample_args {
            use pim_analyzer::exhaust::models::{bloom, mailbox, reserve};
            let opts = Options::default();
            let outcomes = [
                (
                    "mailbox",
                    sample(&mailbox(Variant::Correct), seed, iters, opts),
                ),
                ("bloom", sample(&bloom(Variant::Correct), seed, iters, opts)),
                (
                    "reserve",
                    sample(&reserve(Variant::Correct), seed, iters, opts),
                ),
            ];
            for (name, out) in outcomes {
                match &out.failure {
                    Some(cex) => {
                        failed = true;
                        println!(
                            "sample:  {name:<8} seed={seed:#x} FAIL after {} executions: {}",
                            out.executions, cex.message
                        );
                    }
                    None => println!(
                        "sample:  {name:<8} seed={seed:#x} clean over {} random schedules",
                        out.executions
                    ),
                }
            }
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_u64(s: &str) -> Result<u64, std::num::ParseIntError> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    }
}
