//! Typed diagnostics: every rule violation is a `Diagnostic` with a rule
//! code, a `file:line` anchor, and a human-readable message.

use std::fmt;

/// The linter's rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Every `unsafe` block / fn / impl is preceded by a `SAFETY:` (or
    /// doc `# Safety`) comment.
    R1Safety,
    /// No `unwrap()` / `expect()` / `panic!` / `todo!` in non-test library
    /// code of the serve-tier crates.
    R2Panic,
    /// `Ordering::Relaxed` on a protocol-manifest atomic requires an
    /// audited justification.
    R3Ordering,
    /// Nested lock acquisitions must respect the declared partial order.
    R4LockOrder,
    /// No wall-clock (`Instant::now` / `SystemTime`) inside the
    /// deterministic simulation twins.
    R5Determinism,
    /// Meta rule: a `LINT-ALLOW` entry without a reason, or one that names
    /// no known rule.
    RAllow,
}

impl Rule {
    pub fn code(self) -> &'static str {
        match self {
            Rule::R1Safety => "R1",
            Rule::R2Panic => "R2",
            Rule::R3Ordering => "R3",
            Rule::R4LockOrder => "R4",
            Rule::R5Determinism => "R5",
            Rule::RAllow => "RA",
        }
    }

    pub fn from_code(code: &str) -> Option<Rule> {
        match code.trim() {
            "R1" => Some(Rule::R1Safety),
            "R2" => Some(Rule::R2Panic),
            "R3" => Some(Rule::R3Ordering),
            "R4" => Some(Rule::R4LockOrder),
            "R5" => Some(Rule::R5Determinism),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding, anchored to `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl Diagnostic {
    pub fn new(rule: Rule, file: impl Into<String>, line: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule.code(),
            self.file,
            self.line,
            self.message
        )
    }
}

/// Sorts diagnostics into the stable report order: file, then line, then
/// rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}
