//! The protocol manifest: the declarative side of the linter.
//!
//! The manifest names the workspace's protocol-critical state so rules R3
//! (atomic orderings), R4 (lock order), and R5 (deterministic twins) check
//! *declared* discipline instead of heuristics:
//!
//! * `atomic <crate> <ident> require-order` — `Ordering::Relaxed` on this
//!   atomic is a diagnostic unless site-allowlisted.
//! * `atomic <crate> <ident> relaxed-ok: <justification>` — audited; the
//!   justification is mandatory (an empty one is itself a diagnostic).
//! * `lock <class> <rank> <pattern>[,<pattern>...]` — lock classes and
//!   their acquisition ranks. Patterns are dotted receiver-chain suffixes
//!   (`shared.state` matches `self.shared.state.lock()`; `slot` matches
//!   `slot.lock()`); the longest matching suffix wins. While a lock of
//!   rank *r* is held, only locks of rank **> r** may be acquired.
//! * `lockfn <file-suffix> <chain> <class> [transient]` — calls to a
//!   guard-returning helper (e.g. `self.lock_shard(...)`) count as
//!   acquiring `<class>`, scoped to files whose path ends with
//!   `<file-suffix>`. `transient` marks helpers that release internally
//!   before returning: order-checked at the call site, nothing held after.
//! * `det-file <file-suffix>` — the whole file is a deterministic twin:
//!   R5 flags any wall-clock use.
//! * `det-fn <file-suffix> <fn-name>` — one function is deterministic.
//!
//! The manifest lives at `crates/analyzer/protocol.manifest` and is part
//! of the review surface: changing serve-tier concurrency means updating
//! the declaration here, in the same diff.

use std::collections::BTreeMap;

/// Policy for one manifest atomic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomicPolicy {
    /// Relaxed is a diagnostic.
    RequireOrder,
    /// Relaxed is audited-fine; carries the justification text.
    RelaxedOk(String),
}

/// One lock class: rank plus receiver-chain suffix patterns.
#[derive(Debug, Clone)]
pub struct LockClass {
    pub name: String,
    pub rank: u32,
    /// Dotted suffix patterns, e.g. `["shared.state", "0.state"]`.
    pub patterns: Vec<Vec<String>>,
}

/// A guard-returning helper call that counts as a lock acquisition.
#[derive(Debug, Clone)]
pub struct LockFn {
    pub file_suffix: String,
    /// Dotted chain suffix of the call, e.g. `["lock_shard"]`.
    pub chain: Vec<String>,
    pub class: String,
    /// `true` when the helper releases the lock internally before
    /// returning: the acquisition is order-checked but nothing stays held.
    pub transient: bool,
}

/// Parsed manifest.
#[derive(Debug, Default)]
pub struct Manifest {
    /// `(crate, atomic ident) -> policy`.
    pub atomics: BTreeMap<(String, String), AtomicPolicy>,
    pub locks: Vec<LockClass>,
    pub lock_fns: Vec<LockFn>,
    pub det_files: Vec<String>,
    /// `(file suffix, fn name)`.
    pub det_fns: Vec<(String, String)>,
}

impl Manifest {
    /// Parses the manifest text. Returns `Err(line, message)` on the first
    /// malformed entry — a broken manifest must fail the run loudly, not
    /// silently stop checking.
    pub fn parse(text: &str) -> Result<Manifest, (u32, String)> {
        let mut m = Manifest::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (kind, rest) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| (lineno, format!("bare entry `{line}`")))?;
            let rest = rest.trim();
            match kind {
                "atomic" => {
                    let mut it = rest.splitn(3, char::is_whitespace);
                    let krate = it.next().unwrap_or_default().to_string();
                    let ident = it.next().unwrap_or_default().to_string();
                    let policy = it.next().unwrap_or_default().trim();
                    if krate.is_empty() || ident.is_empty() || policy.is_empty() {
                        return Err((
                            lineno,
                            format!("atomic entry needs `<crate> <ident> <policy>`: `{line}`"),
                        ));
                    }
                    let policy = if policy == "require-order" {
                        AtomicPolicy::RequireOrder
                    } else if let Some(reason) = policy.strip_prefix("relaxed-ok:") {
                        AtomicPolicy::RelaxedOk(reason.trim().to_string())
                    } else {
                        return Err((lineno, format!("unknown atomic policy `{policy}`")));
                    };
                    m.atomics.insert((krate, ident), policy);
                }
                "lock" => {
                    let mut it = rest.splitn(3, char::is_whitespace);
                    let name = it.next().unwrap_or_default().to_string();
                    let rank = it.next().unwrap_or_default();
                    let pats = it.next().unwrap_or_default().trim();
                    let rank: u32 = rank
                        .parse()
                        .map_err(|_| (lineno, format!("bad lock rank in `{line}`")))?;
                    if name.is_empty() || pats.is_empty() {
                        return Err((
                            lineno,
                            format!("lock entry needs `<class> <rank> <patterns>`: `{line}`"),
                        ));
                    }
                    let patterns = pats
                        .split(',')
                        .map(|p| p.trim().split('.').map(str::to_string).collect())
                        .collect();
                    m.locks.push(LockClass {
                        name,
                        rank,
                        patterns,
                    });
                }
                "lockfn" => {
                    let parts: Vec<&str> = rest.split_whitespace().collect();
                    let transient = match parts.len() {
                        3 => false,
                        4 if parts[3] == "transient" => true,
                        _ => {
                            return Err((lineno, format!(
                                "lockfn entry needs `<file-suffix> <chain> <class> [transient]`: `{line}`"
                            )))
                        }
                    };
                    m.lock_fns.push(LockFn {
                        file_suffix: parts[0].to_string(),
                        chain: parts[1].split('.').map(str::to_string).collect(),
                        class: parts[2].to_string(),
                        transient,
                    });
                }
                "det-file" => {
                    if rest.is_empty() {
                        return Err((lineno, "det-file entry needs a file suffix".to_string()));
                    }
                    m.det_files.push(rest.to_string());
                }
                "det-fn" => {
                    let parts: Vec<&str> = rest.split_whitespace().collect();
                    if parts.len() != 2 {
                        return Err((
                            lineno,
                            format!("det-fn entry needs `<file-suffix> <fn-name>`: `{line}`"),
                        ));
                    }
                    m.det_fns.push((parts[0].to_string(), parts[1].to_string()));
                }
                _ => return Err((lineno, format!("unknown manifest entry kind `{kind}`"))),
            }
        }
        Ok(m)
    }

    /// Rank of a lock class by name.
    pub fn rank_of(&self, class: &str) -> Option<u32> {
        self.locks.iter().find(|c| c.name == class).map(|c| c.rank)
    }

    /// Classifies a receiver chain (outermost → innermost, e.g.
    /// `["self", "shared", "state"]`) into a lock class via longest-suffix
    /// match. Returns `(class name, rank)`.
    pub fn classify_chain(&self, chain: &[String]) -> Option<(&str, u32)> {
        let mut best: Option<(&LockClass, usize)> = None;
        for class in &self.locks {
            for pat in &class.patterns {
                if pat.len() <= chain.len() && chain[chain.len() - pat.len()..] == pat[..] {
                    let better = match best {
                        Some((_, len)) => pat.len() > len,
                        None => true,
                    };
                    if better {
                        best = Some((class, pat.len()));
                    }
                }
            }
        }
        best.map(|(c, _)| (c.name.as_str(), c.rank))
    }

    /// Lock-fn classification for a call chain in `file`: returns
    /// `(class name, rank, transient)`.
    pub fn classify_lock_fn(&self, file: &str, chain: &[String]) -> Option<(&str, u32, bool)> {
        for lf in &self.lock_fns {
            if file.ends_with(&lf.file_suffix)
                && lf.chain.len() <= chain.len()
                && chain[chain.len() - lf.chain.len()..] == lf.chain[..]
            {
                let rank = self.rank_of(&lf.class)?;
                return Some((lf.class.as_str(), rank, lf.transient));
            }
        }
        None
    }

    /// `true` when the whole file is a deterministic twin.
    pub fn is_det_file(&self, file: &str) -> bool {
        self.det_files.iter().any(|s| file.ends_with(s.as_str()))
    }

    /// Deterministic function names declared for `file`.
    pub fn det_fns_for<'m>(&'m self, file: &str) -> Vec<&'m str> {
        self.det_fns
            .iter()
            .filter(|(suffix, _)| file.ends_with(suffix.as_str()))
            .map(|(_, name)| name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_entry_kinds() {
        let m = Manifest::parse(
            "# comment\n\
             atomic serve outstanding relaxed-ok: single-location RMW\n\
             atomic cache words require-order\n\
             lock scheduler 0 shared.state,0.state\n\
             lock shard 3 shard,shards\n\
             lockfn cache/src/lib.rs lock_shard shard\n\
             det-file workloads/src/zipf.rs\n\
             det-fn workloads/src/soak.rs simulate_soak\n",
        )
        .expect("manifest parses");
        assert_eq!(m.atomics.len(), 2);
        assert!(matches!(
            m.atomics[&("cache".to_string(), "words".to_string())],
            AtomicPolicy::RequireOrder
        ));
        let chain: Vec<String> = ["self", "shared", "state"].map(String::from).into();
        assert_eq!(m.classify_chain(&chain), Some(("scheduler", 0)));
        let chain: Vec<String> = ["self", "lock_shard"].map(String::from).into();
        assert_eq!(
            m.classify_lock_fn("crates/cache/src/lib.rs", &chain),
            Some(("shard", 3, false))
        );
        assert!(m.is_det_file("crates/workloads/src/zipf.rs"));
        assert_eq!(
            m.det_fns_for("crates/workloads/src/soak.rs"),
            vec!["simulate_soak"]
        );
    }

    #[test]
    fn longest_suffix_wins() {
        let m = Manifest::parse(
            "lock scheduler 0 shared.state\n\
             lock ticket 4 slot.state\n",
        )
        .unwrap();
        let c: Vec<String> = ["self", "slot", "state"].map(String::from).into();
        assert_eq!(m.classify_chain(&c), Some(("ticket", 4)));
        let c: Vec<String> = ["shared", "state"].map(String::from).into();
        assert_eq!(m.classify_chain(&c), Some(("scheduler", 0)));
        let c: Vec<String> = vec!["state".to_string()];
        assert_eq!(m.classify_chain(&c), None);
    }

    #[test]
    fn transient_lockfns_parse() {
        let m = Manifest::parse(
            "lock registry-slot 1 slot\n\
             lockfn serve/src/server.rs models.current registry-slot transient\n",
        )
        .unwrap();
        let chain: Vec<String> = ["shared", "models", "current"].map(String::from).into();
        assert_eq!(
            m.classify_lock_fn("crates/serve/src/server.rs", &chain),
            Some(("registry-slot", 1, true))
        );
        assert!(Manifest::parse("lockfn a b c d").is_err());
    }

    #[test]
    fn malformed_entries_fail_loudly() {
        assert!(Manifest::parse("atomic serve outstanding").is_err());
        assert!(Manifest::parse("lock scheduler x state").is_err());
        assert!(Manifest::parse("frobnicate everything").is_err());
        assert!(Manifest::parse("atomic serve x sometimes-ok").is_err());
    }
}
