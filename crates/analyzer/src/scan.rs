//! A lightweight, comment- and string-aware tokenizer for Rust source.
//!
//! This is deliberately **not** a parser: the linter's rules only need a
//! token stream with line numbers plus the comment text attached to each
//! line. Working at token level keeps the analyzer dependency-free (the
//! workspace is offline — no `syn`) while staying immune to the classic
//! grep failure modes: keywords inside strings, `//` inside literals,
//! nested block comments, raw strings, and lifetimes vs. char literals.

use std::collections::{BTreeMap, BTreeSet};

/// One lexical token. Literal *values* are never needed by any rule, so
/// strings/chars/numbers are reduced to placeholders; identifiers and
/// punctuation keep their text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (also numeric literals, so that tuple-field
    /// chains like `self.0.state` stay walkable).
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// String / char / lifetime literal, collapsed.
    Literal,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub line: u32,
}

impl Tok {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A scanned source file: the token stream plus per-line comment text.
#[derive(Debug, Default)]
pub struct Scanned {
    pub tokens: Vec<Tok>,
    /// Comment text per line (1-based), concatenated when a line carries
    /// several comments. Includes line (`//`, `///`, `//!`) and block
    /// (`/* */`) comments; a block comment contributes to every line it
    /// spans.
    pub comments: BTreeMap<u32, String>,
    /// Lines that carry at least one non-comment token.
    pub code_lines: BTreeSet<u32>,
    /// Total number of lines.
    pub lines: u32,
}

impl Scanned {
    pub fn comment_on(&self, line: u32) -> Option<&str> {
        self.comments.get(&line).map(String::as_str)
    }

    pub fn has_code(&self, line: u32) -> bool {
        self.code_lines.contains(&line)
    }
}

/// Tokenizes `src`. Never fails: malformed trailing constructs simply end
/// the stream (the workspace compiles, so in practice input is well-formed).
pub fn scan(src: &str) -> Scanned {
    let b = src.as_bytes();
    let mut out = Scanned::default();
    let mut line: u32 = 1;
    let mut i = 0usize;
    let n = b.len();

    let push_comment = |comments: &mut BTreeMap<u32, String>, line: u32, text: &str| {
        let slot = comments.entry(line).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text.trim());
    };

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                // Line comment (also ///, //!).
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap_or("");
                let text = text.trim_start_matches('/').trim_start_matches('!');
                push_comment(&mut out.comments, line, text);
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Block comment, nested per Rust rules.
                let mut depth = 1usize;
                let start_line = line;
                i += 2;
                let seg_start = i;
                let mut seg_line = start_line;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            let text = std::str::from_utf8(&b[seg_start.min(i)..i]).unwrap_or("");
                            push_comment(&mut out.comments, seg_line, text.trim_matches('*'));
                            seg_line = line + 1;
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(seg_start);
                let text = std::str::from_utf8(&b[seg_start..end]).unwrap_or("");
                push_comment(&mut out.comments, seg_line, text.trim_matches('*'));
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    line,
                });
                out.code_lines.insert(line);
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let tok_line = line;
                i = skip_raw_or_byte_string(b, i, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    line: tok_line,
                });
                out.code_lines.insert(tok_line);
            }
            b'\'' => {
                // Char literal vs lifetime.
                if is_char_literal(b, i) {
                    i = skip_char_literal(b, i);
                } else {
                    // Lifetime: consume the quote and the identifier.
                    i += 1;
                    while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    line,
                });
                out.code_lines.insert(line);
            }
            _ if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = i;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap_or("").to_string();
                out.tokens.push(Tok {
                    kind: TokKind::Ident(text),
                    line,
                });
                out.code_lines.insert(line);
            }
            _ if c.is_ascii_whitespace() => {
                i += 1;
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct(c as char),
                    line,
                });
                out.code_lines.insert(line);
                i += 1;
            }
        }
    }
    out.lines = line;
    out
}

/// `true` when position `i` starts `r"`, `r#"`, `b"`, `br"`, `br#"` etc.
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let n = b.len();
    // Must not be the tail of an identifier.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j >= n {
            return false;
        }
    }
    if j < n && b[j] == b'r' {
        j += 1;
        while j < n && b[j] == b'#' {
            j += 1;
        }
    }
    j < n && b[j] == b'"' && j > i
}

fn skip_raw_or_byte_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let n = b.len();
    if b[i] == b'b' {
        i += 1;
    }
    let mut hashes = 0usize;
    let raw = i < n && b[i] == b'r';
    if raw {
        i += 1;
        while i < n && b[i] == b'#' {
            hashes += 1;
            i += 1;
        }
    }
    if i >= n || b[i] != b'"' {
        return i;
    }
    if !raw {
        return skip_string(b, i, line);
    }
    i += 1;
    while i < n {
        if b[i] == b'\n' {
            *line += 1;
        }
        if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < n && b[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Skips a `"..."` string starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let n = b.len();
    i += 1; // opening quote
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Distinguishes `'x'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(b: &[u8], i: usize) -> bool {
    let n = b.len();
    if i + 1 >= n {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true;
    }
    // `'c'` where c is any single non-quote char.
    if i + 2 < n && b[i + 1] != b'\'' && b[i + 2] == b'\'' {
        // But `'a'` could in theory be a lifetime followed by a char
        // literal opener; in practice a lifetime is always followed by
        // `,>;:)& ` etc., never a quote — so quote-at-i+2 means char.
        return true;
    }
    false
}

fn skip_char_literal(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    i += 1; // opening quote
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(s: &Scanned) -> Vec<&str> {
        s.tokens.iter().filter_map(|t| t.ident()).collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let s = scan(
            r####"
// unsafe in a comment
let x = "unsafe { panic!() }"; /* unwrap() */
let r = r#"Ordering::Relaxed"#;
let c = '"'; let lt: &'static str = "y";
real_ident();
"####,
        );
        let ids = idents(&s);
        assert!(ids.contains(&"real_ident"));
        assert!(!ids.contains(&"unsafe"));
        assert!(!ids.contains(&"panic"));
        assert!(!ids.contains(&"unwrap"));
        assert!(!ids.contains(&"Relaxed"));
    }

    #[test]
    fn comments_are_recorded_per_line() {
        let s = scan("// SAFETY: fine\nunsafe {}\n");
        assert!(s.comment_on(1).unwrap().contains("SAFETY: fine"));
        assert!(s.has_code(2));
        assert!(!s.has_code(1));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner */ still comment */ code");
        assert_eq!(idents(&s), vec!["code"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x }");
        let ids = idents(&s);
        assert!(ids.contains(&"str"));
        // The trailing `{ x }` must survive the lifetimes.
        assert!(ids.contains(&"x"));
    }

    #[test]
    fn tuple_field_chains_keep_numeric_segments() {
        let s = scan("self.0.state.lock()");
        let ids = idents(&s);
        assert_eq!(ids, vec!["self", "0", "state", "lock"]);
    }
}
