//! Shadow models of the three serve-tier concurrency protocols, checked
//! exhaustively by [`explore`](super::explore).
//!
//! Each protocol comes in two variants: the **correct** one mirroring the
//! workspace implementation (must pass every interleaving) and a
//! **broken** one reintroducing the bug the protocol is designed to
//! exclude (must produce a counterexample — the self-test proving the
//! invariant can actually trip).
//!
//! | model     | mirrors                                   | invariant |
//! |-----------|-------------------------------------------|-----------|
//! | `mailbox` | `serve::replica::Mailbox` push/close/requeue | every job resolves exactly once |
//! | `bloom`   | `cache` bloom insert vs. lock-free probe  | bloom negative ⇒ key absent |
//! | `reserve` | `serve::replica` `pick_and_reserve` CAS-argmin | counts never negative; overlapping picks spread |

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use super::{explore, Model, Options, Outcome, Sched, ShadowAtomic, ShadowMutex};

/// A model variant: correct (expected to pass) or broken (expected to
/// fail — self-test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    Correct,
    Broken,
}

/// Report for one model run.
pub struct Report {
    pub name: &'static str,
    pub variant: Variant,
    pub outcome: Outcome,
}

impl Report {
    /// A correct variant passes by exhausting the tree without failure; a
    /// broken variant passes by producing a counterexample.
    pub fn ok(&self) -> bool {
        match self.variant {
            Variant::Correct => self.outcome.failure.is_none() && self.outcome.exhausted,
            Variant::Broken => self.outcome.failure.is_some(),
        }
    }
}

fn lock_plain<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ── model 1: mailbox push / close / requeue ─────────────────────────────

/// Shadow of `serve::replica::Mailbox`: a queue plus a closed flag under
/// one mutex. Jobs are resolved (success or failure) exactly once.
pub struct MailboxState {
    queue: ShadowMutex<(VecDeque<usize>, bool)>,
    /// Per-job resolution count (plain — written only by the resolving
    /// thread, read after quiescence).
    resolved: [AtomicI64; 2],
    requeued: AtomicI64,
}

impl MailboxState {
    fn resolve(&self, sched: &Sched, tid: usize, job: usize) {
        let n = self.resolved[job].fetch_add(1, Ordering::SeqCst);
        if n != 0 {
            sched.fail(tid, format!("job {job} resolved twice"));
        }
    }
}

/// Threads: t0 pushes job 0 then job 1 (resolving on push-after-close),
/// t1 closes the mailbox and fails everything drained, t2 works the queue
/// and requeues job 0 once before completing it.
///
/// `Broken`: push and requeue use check-then-act — the closed flag is read
/// in one critical section and the push happens in another, so a close
/// between them strands the job (resolved zero times).
pub fn mailbox(variant: Variant) -> Model<MailboxState> {
    let broken = variant == Variant::Broken;
    Model {
        name: "mailbox",
        threads: 3,
        make: Arc::new(|| {
            Arc::new(MailboxState {
                queue: ShadowMutex::new("mailbox", (VecDeque::new(), false)),
                resolved: [AtomicI64::new(0), AtomicI64::new(0)],
                requeued: AtomicI64::new(0),
            })
        }),
        body: Arc::new(move |tid, sched, s: &MailboxState| match tid {
            0 => {
                // Producer: push jobs 0 and 1.
                for job in 0..2usize {
                    if broken {
                        // BUG: closed checked in a separate critical
                        // section from the push.
                        let closed = s.queue.lock(sched, tid).1;
                        if closed {
                            s.resolve(sched, tid, job);
                            continue;
                        }
                        s.queue.lock(sched, tid).0.push_back(job);
                    } else {
                        // Correct: check-and-push is one critical section.
                        let mut g = s.queue.lock(sched, tid);
                        if g.1 {
                            drop(g);
                            s.resolve(sched, tid, job);
                        } else {
                            g.0.push_back(job);
                        }
                    }
                }
            }
            1 => {
                // Closer: close_and_fail — set closed and drain under the
                // lock, resolve the drained jobs outside it.
                let mut g = s.queue.lock(sched, tid);
                g.1 = true;
                let drained: Vec<usize> = g.0.drain(..).collect();
                drop(g);
                for job in drained {
                    s.resolve(sched, tid, job);
                }
            }
            2 => {
                // Worker: pop up to 3 times; requeue job 0 once
                // (front-of-queue, mirroring retry-after-transient-failure)
                // before resolving it.
                for _ in 0..3 {
                    let mut g = s.queue.lock(sched, tid);
                    let job = g.0.pop_front();
                    let closed = g.1;
                    drop(g);
                    let Some(job) = job else { continue };
                    if job == 0 && s.requeued.load(Ordering::SeqCst) == 0 {
                        s.requeued.store(1, Ordering::SeqCst);
                        if broken {
                            // BUG: requeue ignores the closed flag.
                            s.queue.lock(sched, tid).0.push_front(job);
                        } else {
                            let mut g = s.queue.lock(sched, tid);
                            if g.1 {
                                drop(g);
                                s.resolve(sched, tid, job);
                            } else {
                                g.0.push_front(job);
                            }
                        }
                    } else {
                        let _ = closed;
                        s.resolve(sched, tid, job);
                    }
                }
            }
            _ => unreachable!(),
        }),
        check_final: Arc::new(|s: &MailboxState| {
            // Anything still sitting in the queue at quiescence is a
            // stranded job: closed mailboxes must drain, and the worker
            // made enough passes to clear an open one... except when the
            // close landed first; either way the *resolution count* is the
            // ground truth.
            for (job, r) in s.resolved.iter().enumerate() {
                let n = r.load(Ordering::SeqCst);
                if n != 1 {
                    return Err(format!("job {job} resolved {n} times (want exactly 1)"));
                }
            }
            Ok(())
        }),
    }
}

// ── model 2: bloom insert vs. lock-free probe ───────────────────────────

/// Shadow of the cache's admission path: two bloom words (lock-free
/// fetch_or / load) guarding a locked shard map.
pub struct BloomState {
    words: [ShadowAtomic; 2],
    shard: ShadowMutex<bool>,
}

/// Threads: t0 inserts the key (bloom bits + shard entry), t1 probes
/// lock-free and then inspects the shard.
///
/// Invariant: the filter never false-negatives — if the shard held the
/// key *before* the prober read the bloom words, both bits must read set.
/// The prober checks the shard first and the bloom second; bits are never
/// cleared, so `present-then-unset-bits` proves a state in which a real
/// `get` would have skipped the shard for a cached key.
///
/// `Broken`: the writer publishes the shard entry first and sets the
/// bloom bits after — the publication-order bug (the exact shape fixed in
/// `cache::ResponseCache::insert` in this change).
pub fn bloom(variant: Variant) -> Model<BloomState> {
    let broken = variant == Variant::Broken;
    Model {
        name: "bloom",
        threads: 2,
        make: Arc::new(|| {
            Arc::new(BloomState {
                words: [ShadowAtomic::new("w0", 0), ShadowAtomic::new("w1", 0)],
                shard: ShadowMutex::new("shard", false),
            })
        }),
        body: Arc::new(move |tid, sched, s: &BloomState| match tid {
            0 => {
                if broken {
                    // BUG: shard entry visible before the bloom bits.
                    *s.shard.lock(sched, tid) = true;
                    s.words[0].fetch_or(sched, tid, 0b01);
                    s.words[1].fetch_or(sched, tid, 0b10);
                } else {
                    // Correct: bits first (over-approximation is safe),
                    // shard publication last.
                    s.words[0].fetch_or(sched, tid, 0b01);
                    s.words[1].fetch_or(sched, tid, 0b10);
                    *s.shard.lock(sched, tid) = true;
                }
            }
            1 => {
                let present = *s.shard.lock(sched, tid);
                let b0 = s.words[0].load(sched, tid) & 0b01 != 0;
                let b1 = s.words[1].load(sched, tid) & 0b10 != 0;
                if present && !(b0 && b1) {
                    sched.fail(
                        tid,
                        format!("false negative: key in shard but bloom bits ({b0}, {b1}) unset"),
                    );
                }
            }
            _ => unreachable!(),
        }),
        check_final: Arc::new(|_| Ok(())),
    }
}

// ── model 3: pick_and_reserve CAS-argmin vs. concurrent release ─────────

/// Shadow of `serve::replica` least-queued dispatch: per-replica
/// outstanding counters reserved via CAS-argmin, released via fetch_sub.
pub struct ReserveState {
    outstanding: [ShadowAtomic; 2],
    /// Which replica each picker reserved, and whether the reservations
    /// overlapped (both held at once).
    picks: Mutex<Vec<(usize, i64)>>,
    active: AtomicI64,
}

/// Threads: two pickers, each reserving the least-loaded replica (CAS
/// loop over a snapshot argmin) then releasing it.
///
/// Invariants: (a) a release never drives a counter negative — checked at
/// the fetch_sub; (b) when both reservations are simultaneously live, they
/// sit on *different* replicas (the burst-spread property the CAS
/// guarantees with 2 idle replicas and 2 concurrent picks).
///
/// `Broken`: reserve uses load-then-store instead of CAS — two pickers
/// snapshot the same counts, both argmin to replica 0, and the lost update
/// stacks both requests on one replica (and later underflows it).
pub fn reserve(variant: Variant) -> Model<ReserveState> {
    let broken = variant == Variant::Broken;
    Model {
        name: "reserve",
        threads: 2,
        make: Arc::new(|| {
            Arc::new(ReserveState {
                outstanding: [ShadowAtomic::new("out0", 0), ShadowAtomic::new("out1", 0)],
                picks: Mutex::new(Vec::new()),
                active: AtomicI64::new(0),
            })
        }),
        body: Arc::new(move |tid, sched, s: &ReserveState| {
            // Reserve.
            let replica = loop {
                let c0 = s.outstanding[0].load(sched, tid);
                let c1 = s.outstanding[1].load(sched, tid);
                let (r, c) = if c1 < c0 { (1, c1) } else { (0, c0) };
                if broken {
                    // BUG: non-atomic read-modify-write.
                    s.outstanding[r].store(sched, tid, c + 1);
                    break r;
                }
                if s.outstanding[r]
                    .compare_exchange(sched, tid, c, c + 1)
                    .is_ok()
                {
                    break r;
                }
            };
            // Overlap bookkeeping (not part of the modeled protocol: a
            // plain mutex with no scheduling point, so it does not widen
            // the interleaving space).
            {
                let mut picks = lock_plain(&s.picks);
                let now_active = s.active.fetch_add(1, Ordering::SeqCst) + 1;
                if now_active == 2 {
                    let prev = picks.last().map(|&(r, _)| r);
                    if prev == Some(replica) {
                        sched.fail(
                            tid,
                            format!(
                                "burst not spread: both live reservations on replica {replica}"
                            ),
                        );
                    }
                }
                picks.push((replica, now_active));
            }
            // Release (the OutstandingGuard drop path).
            s.active.fetch_add(-1, Ordering::SeqCst);
            let prev = s.outstanding[replica].fetch_add(sched, tid, -1);
            if prev <= 0 {
                sched.fail(
                    tid,
                    format!("outstanding[{replica}] went negative (was {prev} before release)"),
                );
            }
        }),
        check_final: Arc::new(|s: &ReserveState| {
            for (i, c) in s.outstanding.iter().enumerate() {
                let v = c.load_quiesced();
                if v != 0 {
                    return Err(format!(
                        "outstanding[{i}] = {v} after all releases (want 0)"
                    ));
                }
            }
            Ok(())
        }),
    }
}

impl ShadowAtomic {
    /// Post-quiescence read for final-invariant checks (no scheduler).
    pub fn load_quiesced(&self) -> i64 {
        self.v.load(Ordering::SeqCst)
    }
}

// ── registry ────────────────────────────────────────────────────────────

/// Runs every model in both variants, exhaustively.
pub fn check_all(opts: Options) -> Vec<Report> {
    let mut reports = Vec::new();
    for variant in [Variant::Correct, Variant::Broken] {
        reports.push(Report {
            name: "mailbox",
            variant,
            outcome: explore(&mailbox(variant), opts),
        });
        reports.push(Report {
            name: "bloom",
            variant,
            outcome: explore(&bloom(variant), opts),
        });
        reports.push(Report {
            name: "reserve",
            variant,
            outcome: explore(&reserve(variant), opts),
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_correct_exhausts_clean() {
        let out = explore(&mailbox(Variant::Correct), Options::default());
        assert!(out.failure.is_none(), "{:#?}", out.failure);
        assert!(
            out.exhausted,
            "tree not exhausted in {} executions",
            out.executions
        );
        assert!(
            out.executions > 50,
            "suspiciously small space: {}",
            out.executions
        );
    }

    #[test]
    fn mailbox_broken_strands_a_job() {
        let out = explore(&mailbox(Variant::Broken), Options::default());
        let cex = out.failure.expect("check-then-act push must strand a job");
        assert!(
            cex.message.contains("resolved 0 times") || cex.message.contains("resolved 2 times"),
            "{}",
            cex.message
        );
        assert!(!cex.ops.is_empty());
    }

    #[test]
    fn bloom_correct_exhausts_clean() {
        let out = explore(&bloom(Variant::Correct), Options::default());
        assert!(out.failure.is_none(), "{:#?}", out.failure);
        assert!(out.exhausted);
    }

    #[test]
    fn bloom_broken_shows_false_negative_window() {
        let out = explore(&bloom(Variant::Broken), Options::default());
        let cex = out.failure.expect("shard-before-bits must false-negative");
        assert!(cex.message.contains("false negative"), "{}", cex.message);
    }

    #[test]
    fn reserve_correct_exhausts_clean() {
        let out = explore(&reserve(Variant::Correct), Options::default());
        assert!(out.failure.is_none(), "{:#?}", out.failure);
        assert!(out.exhausted);
    }

    #[test]
    fn reserve_broken_loses_updates() {
        let out = explore(&reserve(Variant::Broken), Options::default());
        let cex = out.failure.expect("load-then-store reserve must fail");
        assert!(
            cex.message.contains("negative")
                || cex.message.contains("burst not spread")
                || cex.message.contains("outstanding"),
            "{}",
            cex.message
        );
    }

    #[test]
    fn broken_counterexamples_replay() {
        let out = explore(&bloom(Variant::Broken), Options::default());
        let cex = out.failure.expect("counterexample");
        let ops = super::super::replay(&bloom(Variant::Broken), &cex.choices);
        assert_eq!(ops, cex.ops, "replay must be deterministic");
    }
}
