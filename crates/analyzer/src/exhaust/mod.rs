//! A miniature model checker for the workspace's concurrency protocols.
//!
//! Real threads run the model code, but a cooperative scheduler keeps
//! exactly **one** of them runnable at a time and inserts a scheduling
//! decision before every shadow-state operation. Exhaustive mode walks the
//! resulting decision tree depth-first (prefix replay: re-run the model
//! with a prescribed choice prefix, then deviate at the deepest unexplored
//! branch), so every interleaving of shadow operations is executed.
//! Random mode samples schedules from a seeded splitmix64 stream; the same
//! seed always reproduces the same schedule sequence, and any failing
//! schedule is returned as a decision trace that replays verbatim.
//!
//! The shadow world is sequentially consistent — this checks *atomicity
//! and interleaving* bugs (check-then-act races, lost updates, stranded
//! jobs, publication-order windows), not weak-memory reordering, which is
//! the right level for the serve-tier protocols modeled in
//! [`models`](crate::exhaust::models).

pub mod models;

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};

/// Sentinel for "no thread scheduled" (main / done).
const NONE: usize = usize::MAX;

/// Panic payload used to unwind model threads out of an aborted execution.
struct AbortToken;

static QUIET_HOOK: Once = Once::new();

/// Installs a panic hook that silences [`AbortToken`] unwinds (they are
/// control flow, not errors) while delegating everything else.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortToken>().is_none() {
                prev(info);
            }
        }));
    });
}

fn lock_inner(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    // A poisoned scheduler mutex only happens if a model thread panicked
    // while holding it; the state is still consistent enough to abort.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One scheduling decision: how many threads were runnable, which index
/// (into the sorted runnable list) was chosen.
#[derive(Debug, Clone, Copy)]
pub struct Decision {
    pub options: usize,
    pub chosen: usize,
}

/// How schedules are chosen beyond the replay prefix.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// First runnable thread (DFS default branch).
    First,
    /// Seeded pseudo-random choice.
    Random { state: u64 },
}

#[derive(Debug)]
struct Inner {
    current: usize,
    /// Sorted list of runnable thread ids (includes the current thread).
    runnable: Vec<usize>,
    /// tid -> mutex id it is waiting on.
    waiting: BTreeMap<usize, usize>,
    /// mutex id -> owning tid.
    owners: BTreeMap<usize, usize>,
    finished: usize,
    total: usize,
    started: usize,
    prefix: Vec<usize>,
    decisions: Vec<Decision>,
    /// Thread ids in the order they were scheduled.
    trace: Vec<usize>,
    /// Labeled shadow ops (`t<id> label`), recorded when `record_ops`.
    ops: Vec<String>,
    record_ops: bool,
    failure: Option<String>,
    aborted: bool,
    done: bool,
    steps: usize,
    max_steps: usize,
    mode: Mode,
}

/// The cooperative scheduler shared by all threads of one execution.
pub struct Sched {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Sched {
    fn new(
        total: usize,
        prefix: Vec<usize>,
        mode: Mode,
        max_steps: usize,
        record_ops: bool,
    ) -> Sched {
        Sched {
            inner: Mutex::new(Inner {
                current: NONE,
                runnable: Vec::new(),
                waiting: BTreeMap::new(),
                owners: BTreeMap::new(),
                finished: 0,
                total,
                started: 0,
                prefix,
                decisions: Vec::new(),
                trace: Vec::new(),
                ops: Vec::new(),
                record_ops,
                failure: None,
                aborted: false,
                done: false,
                steps: 0,
                max_steps,
                mode,
            }),
            cv: Condvar::new(),
        }
    }

    /// Picks the next thread to run. Caller holds the lock. Sets
    /// `current`; on an empty runnable set flags deadlock (or completion).
    fn pick(&self, inner: &mut Inner) {
        if inner.runnable.is_empty() {
            if inner.finished == inner.total {
                inner.done = true;
                inner.current = NONE;
            } else {
                let stuck: Vec<usize> = inner.waiting.keys().copied().collect();
                self.abort_locked(
                    inner,
                    format!("deadlock: threads {stuck:?} blocked with nothing runnable"),
                );
            }
            return;
        }
        let options = inner.runnable.len();
        let idx = if inner.decisions.len() < inner.prefix.len() {
            inner.prefix[inner.decisions.len()].min(options - 1)
        } else {
            match &mut inner.mode {
                Mode::First => 0,
                Mode::Random { state } => (splitmix64(state) % options as u64) as usize,
            }
        };
        inner.decisions.push(Decision {
            options,
            chosen: idx,
        });
        inner.current = inner.runnable[idx];
        inner.trace.push(inner.current);
    }

    fn abort_locked(&self, inner: &mut Inner, msg: String) {
        if inner.failure.is_none() {
            inner.failure = Some(msg);
        }
        inner.aborted = true;
        inner.current = NONE;
        inner.done = true;
    }

    /// Called by each model thread before touching any shadow state.
    fn register(&self, tid: usize) {
        let mut inner = lock_inner(&self.inner);
        let pos = inner.runnable.binary_search(&tid).unwrap_or_else(|p| p);
        inner.runnable.insert(pos, tid);
        inner.started += 1;
        self.cv.notify_all();
        while inner.current != tid && !inner.aborted {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        if inner.aborted {
            drop(inner);
            panic::panic_any(AbortToken);
        }
    }

    /// Main-thread side of startup: waits for all threads to park, then
    /// makes the first scheduling decision.
    fn start(&self) {
        let mut inner = lock_inner(&self.inner);
        while inner.started < inner.total {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        self.pick(&mut inner);
        self.cv.notify_all();
    }

    /// A scheduling point: records the op label, lets the scheduler choose
    /// who proceeds, and returns once this thread is chosen again.
    pub fn yield_point(&self, tid: usize, label: &str) {
        let mut inner = lock_inner(&self.inner);
        if inner.aborted {
            drop(inner);
            panic::panic_any(AbortToken);
        }
        inner.steps += 1;
        if inner.steps > inner.max_steps {
            let msg = format!("step bound {} exceeded (livelock?)", inner.max_steps);
            self.abort_locked(&mut inner, msg);
            self.cv.notify_all();
            drop(inner);
            panic::panic_any(AbortToken);
        }
        if inner.record_ops {
            inner.ops.push(format!("t{tid}: {label}"));
        }
        self.pick(&mut inner);
        self.cv.notify_all();
        while inner.current != tid && !inner.aborted {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        if inner.aborted {
            drop(inner);
            panic::panic_any(AbortToken);
        }
    }

    /// Fails the execution with an invariant-violation message and unwinds
    /// the calling thread.
    pub fn fail(&self, tid: usize, msg: impl Into<String>) -> ! {
        let mut inner = lock_inner(&self.inner);
        self.abort_locked(&mut inner, format!("t{tid}: {}", msg.into()));
        self.cv.notify_all();
        drop(inner);
        panic::panic_any(AbortToken);
    }

    /// Marks the calling thread finished and hands the CPU to the next.
    fn finish(&self, tid: usize) {
        let mut inner = lock_inner(&self.inner);
        if inner.aborted {
            return;
        }
        inner.runnable.retain(|&t| t != tid);
        inner.finished += 1;
        self.pick(&mut inner);
        self.cv.notify_all();
    }

    /// Shadow-mutex acquisition: blocks (deschedules) while owned.
    fn acquire(&self, tid: usize, mutex_id: usize, label: &str) {
        self.yield_point(tid, label);
        loop {
            let mut inner = lock_inner(&self.inner);
            if inner.aborted {
                drop(inner);
                panic::panic_any(AbortToken);
            }
            if let std::collections::btree_map::Entry::Vacant(e) = inner.owners.entry(mutex_id) {
                e.insert(tid);
                return;
            }
            // Owned: deschedule until an unlock makes us runnable again.
            inner.runnable.retain(|&t| t != tid);
            inner.waiting.insert(tid, mutex_id);
            self.pick(&mut inner);
            self.cv.notify_all();
            while inner.current != tid && !inner.aborted {
                inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
            }
            if inner.aborted {
                drop(inner);
                panic::panic_any(AbortToken);
            }
        }
    }

    /// Shadow-mutex release: wakes all waiters (they race to reacquire
    /// under the scheduler's control). Not itself a scheduling point — the
    /// releaser keeps the CPU until its next shadow op, which is where
    /// freshly-woken waiters become eligible.
    fn release(&self, mutex_id: usize) {
        let mut inner = lock_inner(&self.inner);
        inner.owners.remove(&mutex_id);
        let woken: Vec<usize> = inner
            .waiting
            .iter()
            .filter(|(_, &m)| m == mutex_id)
            .map(|(&t, _)| t)
            .collect();
        for t in woken {
            inner.waiting.remove(&t);
            let pos = inner.runnable.binary_search(&t).unwrap_or_else(|p| p);
            inner.runnable.insert(pos, t);
        }
    }
}

// ── shadow primitives ───────────────────────────────────────────────────

static NEXT_MUTEX_ID: AtomicUsize = AtomicUsize::new(0);

/// A mutex whose blocking semantics live in the scheduler. Only one model
/// thread runs at a time, so the inner data needs no real lock — but a
/// real `Mutex` keeps the type `Sync` without unsafe code, and it is never
/// contended (shadow ownership is established first).
pub struct ShadowMutex<T> {
    id: usize,
    label: &'static str,
    data: Mutex<T>,
}

impl<T> ShadowMutex<T> {
    pub fn new(label: &'static str, value: T) -> Self {
        ShadowMutex {
            id: NEXT_MUTEX_ID.fetch_add(1, Ordering::Relaxed),
            label,
            data: Mutex::new(value),
        }
    }

    /// Acquires the shadow mutex (a scheduling point; blocks while owned).
    pub fn lock<'a>(&'a self, sched: &'a Sched, tid: usize) -> ShadowGuard<'a, T> {
        sched.acquire(tid, self.id, &format!("lock({})", self.label));
        let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        ShadowGuard {
            sched,
            mutex_id: self.id,
            inner: Some(inner),
        }
    }
}

/// Guard for a [`ShadowMutex`]; releases the shadow ownership on drop.
pub struct ShadowGuard<'a, T> {
    sched: &'a Sched,
    mutex_id: usize,
    inner: Option<MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for ShadowGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for ShadowGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for ShadowGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        self.sched.release(self.mutex_id);
    }
}

/// A shadow atomic integer: every operation is a scheduling point.
pub struct ShadowAtomic {
    label: &'static str,
    v: AtomicI64,
}

impl ShadowAtomic {
    pub fn new(label: &'static str, value: i64) -> Self {
        ShadowAtomic {
            label,
            v: AtomicI64::new(value),
        }
    }

    pub fn load(&self, sched: &Sched, tid: usize) -> i64 {
        sched.yield_point(tid, &format!("load({})", self.label));
        self.v.load(Ordering::SeqCst)
    }

    pub fn store(&self, sched: &Sched, tid: usize, value: i64) {
        sched.yield_point(tid, &format!("store({}, {value})", self.label));
        self.v.store(value, Ordering::SeqCst);
    }

    pub fn fetch_add(&self, sched: &Sched, tid: usize, delta: i64) -> i64 {
        sched.yield_point(tid, &format!("fetch_add({}, {delta})", self.label));
        self.v.fetch_add(delta, Ordering::SeqCst)
    }

    pub fn fetch_or(&self, sched: &Sched, tid: usize, bits: i64) -> i64 {
        sched.yield_point(tid, &format!("fetch_or({}, {bits:#x})", self.label));
        self.v.fetch_or(bits, Ordering::SeqCst)
    }

    pub fn compare_exchange(
        &self,
        sched: &Sched,
        tid: usize,
        expected: i64,
        new: i64,
    ) -> Result<i64, i64> {
        sched.yield_point(tid, &format!("cas({}, {expected}->{new})", self.label));
        self.v
            .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

// ── exploration driver ──────────────────────────────────────────────────

/// Thread body: dispatched by thread id against the shared state.
pub type Body<S> = Arc<dyn Fn(usize, &Sched, &S) + Send + Sync>;
/// Final invariant over the quiesced state.
pub type FinalCheck<S> = Arc<dyn Fn(&S) -> Result<(), String> + Send + Sync>;

/// A model: per-execution state `S`, thread count, a body dispatched by
/// thread id, and a final invariant over the quiesced state.
pub struct Model<S> {
    pub name: &'static str,
    pub threads: usize,
    pub make: Arc<dyn Fn() -> Arc<S> + Send + Sync>,
    pub body: Body<S>,
    pub check_final: FinalCheck<S>,
}

impl<S> Clone for Model<S> {
    fn clone(&self) -> Self {
        Model {
            name: self.name,
            threads: self.threads,
            make: Arc::clone(&self.make),
            body: Arc::clone(&self.body),
            check_final: Arc::clone(&self.check_final),
        }
    }
}

/// A failing schedule, replayable via [`replay`].
#[derive(Debug, Clone)]
pub struct Counterexample {
    pub message: String,
    /// Thread ids in scheduling order.
    pub trace: Vec<usize>,
    /// Decision choices (indices into the sorted runnable set) — the
    /// replay prefix.
    pub choices: Vec<usize>,
    /// Labeled shadow ops of the failing execution.
    pub ops: Vec<String>,
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Outcome {
    pub executions: u64,
    /// `true` when the full decision tree was walked (DFS mode only).
    pub exhausted: bool,
    pub failure: Option<Counterexample>,
}

#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Hard cap on executions (safety valve; exhaustive models stay far
    /// below it).
    pub max_executions: u64,
    /// Per-execution shadow-op bound (livelock guard).
    pub max_steps: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_executions: 500_000,
            max_steps: 10_000,
        }
    }
}

struct ExecResult {
    decisions: Vec<Decision>,
    trace: Vec<usize>,
    ops: Vec<String>,
    failure: Option<String>,
}

fn run_once<S: Send + Sync + 'static>(
    model: &Model<S>,
    prefix: Vec<usize>,
    mode: Mode,
    max_steps: usize,
    record_ops: bool,
) -> ExecResult {
    install_quiet_hook();
    let state = (model.make)();
    let sched = Arc::new(Sched::new(
        model.threads,
        prefix,
        mode,
        max_steps,
        record_ops,
    ));
    let mut handles = Vec::with_capacity(model.threads);
    for tid in 0..model.threads {
        let sched = Arc::clone(&sched);
        let state = Arc::clone(&state);
        let body = Arc::clone(&model.body);
        handles.push(std::thread::spawn(move || {
            sched.register(tid);
            let result = panic::catch_unwind(AssertUnwindSafe(|| body(tid, &sched, &state)));
            if let Err(payload) = result {
                if payload.downcast_ref::<AbortToken>().is_none() {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "model thread panicked".to_string());
                    let mut inner = lock_inner(&sched.inner);
                    sched.abort_locked(&mut inner, format!("t{tid} panicked: {msg}"));
                    sched.cv.notify_all();
                    return;
                }
                return;
            }
            sched.finish(tid);
        }));
    }
    sched.start();
    for h in handles {
        let _ = h.join();
    }
    let mut inner = lock_inner(&sched.inner);
    let mut failure = inner.failure.take();
    if failure.is_none() {
        if let Err(msg) = (model.check_final)(&state) {
            failure = Some(format!("final invariant: {msg}"));
        }
    }
    ExecResult {
        decisions: std::mem::take(&mut inner.decisions),
        trace: std::mem::take(&mut inner.trace),
        ops: std::mem::take(&mut inner.ops),
        failure,
    }
}

/// Builds the counterexample for a failing execution, re-running it with
/// op recording to capture the labeled schedule.
fn counterexample<S: Send + Sync + 'static>(
    model: &Model<S>,
    res: &ExecResult,
    max_steps: usize,
) -> Counterexample {
    let choices: Vec<usize> = res.decisions.iter().map(|d| d.chosen).collect();
    let replayed = run_once(model, choices.clone(), Mode::First, max_steps, true);
    Counterexample {
        message: res.failure.clone().unwrap_or_default(),
        trace: res.trace.clone(),
        choices,
        ops: replayed.ops,
    }
}

/// Exhaustively enumerates every interleaving of `model`'s shadow ops.
pub fn explore<S: Send + Sync + 'static>(model: &Model<S>, opts: Options) -> Outcome {
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0u64;
    loop {
        let res = run_once(model, prefix.clone(), Mode::First, opts.max_steps, false);
        executions += 1;
        if res.failure.is_some() {
            let cex = counterexample(model, &res, opts.max_steps);
            return Outcome {
                executions,
                exhausted: false,
                failure: Some(cex),
            };
        }
        // Backtrack to the deepest decision with an unexplored branch.
        let mut decisions = res.decisions;
        let mut advanced = false;
        while let Some(last) = decisions.pop() {
            if last.chosen + 1 < last.options {
                decisions.push(Decision {
                    options: last.options,
                    chosen: last.chosen + 1,
                });
                advanced = true;
                break;
            }
        }
        if !advanced {
            return Outcome {
                executions,
                exhausted: true,
                failure: None,
            };
        }
        prefix = decisions.iter().map(|d| d.chosen).collect();
        if executions >= opts.max_executions {
            return Outcome {
                executions,
                exhausted: false,
                failure: None,
            };
        }
    }
}

/// Samples `iterations` random schedules from a seeded stream. The same
/// `(seed, iterations)` pair always explores the same schedules in the
/// same order.
pub fn sample<S: Send + Sync + 'static>(
    model: &Model<S>,
    seed: u64,
    iterations: u64,
    opts: Options,
) -> Outcome {
    let mut state = seed;
    for n in 0..iterations {
        // Derive an independent per-execution stream so a failure replays
        // from (seed, n) alone.
        let exec_seed = splitmix64(&mut state);
        let res = run_once(
            model,
            Vec::new(),
            Mode::Random { state: exec_seed },
            opts.max_steps,
            false,
        );
        if res.failure.is_some() {
            let cex = counterexample(model, &res, opts.max_steps);
            return Outcome {
                executions: n + 1,
                exhausted: false,
                failure: Some(cex),
            };
        }
    }
    Outcome {
        executions: iterations,
        exhausted: false,
        failure: None,
    }
}

/// Replays a recorded choice prefix, returning the labeled op schedule —
/// deterministic, for counterexample inspection.
pub fn replay<S: Send + Sync + 'static>(model: &Model<S>, choices: &[usize]) -> Vec<String> {
    run_once(model, choices.to_vec(), Mode::First, 10_000, true).ops
}

/// splitmix64: tiny, seedable, statistically solid for schedule sampling.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a plain (non-atomic) shared counter via
    /// load-then-store — the classic lost update. Exhaustive exploration
    /// must find it; the CAS version must pass.
    fn racy_counter(use_cas: bool) -> Model<ShadowAtomic> {
        Model {
            name: "racy-counter",
            threads: 2,
            make: Arc::new(|| Arc::new(ShadowAtomic::new("ctr", 0))),
            body: Arc::new(move |tid, sched, ctr: &ShadowAtomic| {
                if use_cas {
                    loop {
                        let v = ctr.load(sched, tid);
                        if ctr.compare_exchange(sched, tid, v, v + 1).is_ok() {
                            break;
                        }
                    }
                } else {
                    let v = ctr.load(sched, tid);
                    ctr.store(sched, tid, v + 1);
                }
            }),
            check_final: Arc::new(|ctr: &ShadowAtomic| {
                let v = ctr.v.load(Ordering::SeqCst);
                if v == 2 {
                    Ok(())
                } else {
                    Err(format!("expected 2 increments, counter = {v}"))
                }
            }),
        }
    }

    #[test]
    fn exhaustive_finds_lost_update() {
        let out = explore(&racy_counter(false), Options::default());
        let cex = out.failure.expect("lost update must be found");
        assert!(cex.message.contains("counter = 1"), "{}", cex.message);
        assert!(!cex.ops.is_empty());
        // The counterexample replays deterministically.
        let ops2 = replay(&racy_counter(false), &cex.choices);
        assert_eq!(cex.ops, ops2);
    }

    #[test]
    fn exhaustive_passes_cas_version() {
        let out = explore(&racy_counter(true), Options::default());
        assert!(out.failure.is_none(), "{:?}", out.failure);
        assert!(out.exhausted);
        assert!(
            out.executions >= 4,
            "trivially few executions: {}",
            out.executions
        );
    }

    #[test]
    fn mutex_version_passes_and_blocks_correctly() {
        let model: Model<ShadowMutex<i64>> = Model {
            name: "mutex-counter",
            threads: 3,
            make: Arc::new(|| Arc::new(ShadowMutex::new("ctr", 0))),
            body: Arc::new(|tid, sched, m: &ShadowMutex<i64>| {
                let mut g = m.lock(sched, tid);
                *g += 1;
            }),
            check_final: Arc::new(|m: &ShadowMutex<i64>| {
                let v = *m.data.lock().unwrap();
                if v == 3 {
                    Ok(())
                } else {
                    Err(format!("expected 3, got {v}"))
                }
            }),
        };
        let out = explore(&model, Options::default());
        assert!(out.failure.is_none(), "{:?}", out.failure);
        assert!(out.exhausted);
    }

    #[test]
    fn deadlock_is_detected() {
        struct TwoLocks {
            a: ShadowMutex<()>,
            b: ShadowMutex<()>,
        }
        let model: Model<TwoLocks> = Model {
            name: "abba",
            threads: 2,
            make: Arc::new(|| {
                Arc::new(TwoLocks {
                    a: ShadowMutex::new("a", ()),
                    b: ShadowMutex::new("b", ()),
                })
            }),
            body: Arc::new(|tid, sched, s: &TwoLocks| {
                let (first, second) = if tid == 0 { (&s.a, &s.b) } else { (&s.b, &s.a) };
                let _g1 = first.lock(sched, tid);
                let _g2 = second.lock(sched, tid);
            }),
            check_final: Arc::new(|_| Ok(())),
        };
        let out = explore(&model, Options::default());
        let cex = out.failure.expect("AB-BA deadlock must be found");
        assert!(cex.message.contains("deadlock"), "{}", cex.message);
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        // Same seed: identical outcome (executions until failure).
        let a = sample(&racy_counter(false), 0xfeed, 200, Options::default());
        let b = sample(&racy_counter(false), 0xfeed, 200, Options::default());
        assert_eq!(a.executions, b.executions);
        let (ca, cb) = (a.failure.expect("found"), b.failure.expect("found"));
        assert_eq!(ca.trace, cb.trace);
        assert_eq!(ca.ops, cb.ops);
    }
}
