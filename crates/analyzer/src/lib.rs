//! `pim-analyzer`: correctness tooling for the PIM-CapsNet workspace.
//!
//! Two halves:
//!
//! 1. **Invariant linter** ([`rules`]) — a comment- and string-aware token
//!    scanner ([`scan`]) over every workspace crate, enforcing the rules
//!    R1–R5 against the declared [`manifest`]. Run as
//!    `pim-analyzer -- lint` (or as part of `check`).
//! 2. **Interleaving checker** ([`exhaust`]) — a miniature model checker
//!    that exhaustively enumerates schedules of shadow models mirroring
//!    the serve-tier concurrency protocols. Run as
//!    `pim-analyzer -- exhaust` (or as part of `check`).
//!
//! Both are dependency-free by construction: the workspace builds offline.

pub mod diag;
pub mod exhaust;
pub mod manifest;
pub mod rules;
pub mod scan;

use std::path::{Path, PathBuf};

use diag::Diagnostic;
use manifest::Manifest;
use rules::FileCtx;

/// Path of the protocol manifest, relative to the workspace root.
pub const MANIFEST_PATH: &str = "crates/analyzer/protocol.manifest";

/// Directories under the workspace root whose `.rs` files are linted.
/// Library source only: `tests/`, `benches/`, and `examples/` trees hold
/// test code by definition and are out of scope for the library rules.
fn lint_roots(root: &Path) -> Vec<(String, PathBuf)> {
    let mut roots = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let krate = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let src = dir.join("src");
            if src.is_dir() {
                roots.push((krate, src));
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        roots.push(("suite".to_string(), root_src));
    }
    roots
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            // The analyzer's lint fixtures contain violations on purpose.
            if p.file_name().and_then(|n| n.to_str()) == Some("fixtures") {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// Workspace-relative, forward-slash form of `path`.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Loads the protocol manifest from the workspace root.
pub fn load_manifest(root: &Path) -> Result<Manifest, String> {
    let path = root.join(MANIFEST_PATH);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Manifest::parse(&text).map_err(|(line, msg)| format!("{MANIFEST_PATH}:{line}: {msg}"))
}

/// Lints every library source file in the workspace. Returns the sorted
/// diagnostic list (empty ⇒ clean).
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let manifest = load_manifest(root)?;
    let mut diags = Vec::new();
    for (krate, src) in lint_roots(root) {
        let mut files = Vec::new();
        collect_rs(&src, &mut files);
        for file in files {
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let scanned = scan::scan(&text);
            let path = rel(root, &file);
            diags.extend(rules::lint_file(
                &FileCtx {
                    path: &path,
                    krate: &krate,
                    scanned: &scanned,
                },
                &manifest,
            ));
        }
    }
    diag::sort(&mut diags);
    Ok(diags)
}

/// Locates the workspace root: walks up from `start` until a directory
/// containing `crates/analyzer` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("crates/analyzer").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
