//! Minimal, deterministic, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access to a
//! crates registry, so the workspace vendors the *small* slice of the
//! `rand 0.8` API its crates actually use: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`distributions::Uniform`] sampling, and
//! the [`Rng::gen`] / [`Rng::gen_range`] convenience methods.
//!
//! The generator is SplitMix64 — statistically solid for weight
//! initialization and synthetic data, fully deterministic across platforms
//! (all consumers in this workspace rely on seeded determinism, not on any
//! specific stream, so swapping in the real `rand` later only changes the
//! sampled values, never correctness).

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable by [`Rng::gen`] (uniform over their "standard" range,
/// `[0, 1)` for floats).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) double.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) single.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a "standard" value (uniform `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: SplitMix64 (deterministic, portable).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Distribution sampling (the `rand::distributions` API subset).
pub mod distributions {
    use super::{RngCore, SampleRange, StandardSample};

    /// A sampling distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Creates the distribution.
        ///
        /// # Panics
        ///
        /// Panics when `lo >= hi`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }
    }

    impl<T> Distribution<T> for Uniform<T>
    where
        T: Copy,
        core::ops::Range<T>: SampleRange<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (self.lo..self.hi).sample_single(rng)
        }
    }

    /// Marker for float "standard" sampling (API-compatibility shim).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: StandardSample> Distribution<T> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::standard_sample(rng)
        }
    }
}

/// The usual `rand::prelude` glob-import surface.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Uniform::new(-0.5f32, 0.5);
        for _ in 0..10_000 {
            let x = dist.sample(&mut rng);
            assert!((-0.5..0.5).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_central() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = Uniform::new(0.0f32, 1.0);
        let n = 20_000;
        let mean: f32 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_ints_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
