//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the API surface this workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`, `sample_size`, [`black_box`] — with a simple
//! calibrate-then-sample measurement loop. Reported numbers are median
//! ns/iter over the collected samples. Two extras beyond the real crate:
//!
//! * passing `--test` (as `cargo test` does for benches) runs each closure
//!   once and skips measurement entirely;
//! * [`Criterion::take_results`] exposes the measurements programmatically
//!   so harnesses (e.g. `suite_summary`) can persist machine-readable JSON.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` identifier.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// Timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness context.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_TEST_MODE").is_some();
        Criterion {
            test_mode,
            default_sample_size: 10,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(id.to_string(), sample_size, f);
        self
    }

    /// Drains the measurements collected so far.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{id:<40} ok (test mode)");
            return;
        }
        // Calibrate: grow the batch until one batch costs >= ~2 ms.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(4).max(iters + 1);
        }
        // Sample.
        let mut samples: Vec<f64> = (0..sample_size.max(3))
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        println!("{id:<40} time: [{lo:>12.1} {median:>12.1} {hi:>12.1}] ns/iter");
        self.results.push(BenchResult {
            id,
            ns_per_iter: median,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(full, sample_size, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group function running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            test_mode: false,
            default_sample_size: 3,
            results: Vec::new(),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(3).bench_function("sum", |b| {
            b.iter(|| (0..1000u64).map(black_box).sum::<u64>())
        });
        g.finish();
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, "g/sum");
        assert!(results[0].ns_per_iter > 0.0);
    }

    #[test]
    fn test_mode_skips_measurement() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 10,
            results: Vec::new(),
        };
        let mut ran = 0u32;
        c.bench_function("quick", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
        assert!(c.take_results().is_empty());
    }
}
