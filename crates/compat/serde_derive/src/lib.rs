//! Derive macros for the offline `serde` stand-in.
//!
//! Emits marker-trait impls (`impl serde::Serialize for T {}` etc.) for
//! plain (non-generic) structs and enums, which covers every annotated type
//! in this workspace. Field attributes like `#[serde(default = "path")]`
//! are accepted, and any `default`-function paths they reference are kept
//! alive (referenced from generated code) so switching to the real `serde`
//! later requires no source changes and the functions never rot as dead
//! code in the meantime.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the first `struct` or `enum` keyword.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        // Only top-level idents matter; attribute bodies and visibility
        // groups are nested inside `TokenTree::Group`s and skipped.
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

/// Returns `true` when the type declares generic parameters (unsupported).
fn has_generics(input: &TokenStream, name: &str) -> bool {
    let mut prev_was_name = false;
    for tt in input.clone() {
        match &tt {
            TokenTree::Ident(id) if id.to_string() == name => prev_was_name = true,
            TokenTree::Punct(p) if prev_was_name && p.as_char() == '<' => return true,
            _ => prev_was_name = false,
        }
    }
    false
}

/// Collects every `default = "path"` mentioned in `#[serde(...)]` field
/// attributes (textual scan — the attribute grammar here is tiny).
fn default_fns(input: &TokenStream) -> Vec<String> {
    let text = input.to_string();
    let mut out = Vec::new();
    let mut rest = text.as_str();
    while let Some(pos) = rest.find("default") {
        rest = &rest[pos + "default".len()..];
        let trimmed = rest.trim_start();
        if let Some(after_eq) = trimmed.strip_prefix('=') {
            let after_eq = after_eq.trim_start();
            if let Some(stripped) = after_eq.strip_prefix('"') {
                if let Some(end) = stripped.find('"') {
                    let path = &stripped[..end];
                    if !path.is_empty() {
                        out.push(path.to_string());
                    }
                }
            }
        }
    }
    out
}

fn marker_impl(input: TokenStream, serialize: bool) -> TokenStream {
    let Some(name) = type_name(&input) else {
        return r#"compile_error!("serde stand-in derive: expected a struct or enum");"#
            .parse()
            .unwrap();
    };
    if has_generics(&input, &name) {
        return format!(
            r#"compile_error!("serde stand-in derive does not support generic type `{name}`");"#
        )
        .parse()
        .unwrap();
    }
    let mut code = if serialize {
        format!("impl serde::Serialize for {name} {{}}")
    } else {
        format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
    };
    if !serialize {
        // Keep `#[serde(default = "f")]` functions referenced so they don't
        // trip dead-code lints while the shim ignores the attribute.
        let defaults = default_fns(&input);
        if !defaults.is_empty() {
            let refs: String = defaults.iter().map(|f| format!("let _ = {f};")).collect();
            code.push_str(&format!("const _: () = {{ {refs} }};"));
        }
    }
    code.parse().unwrap()
}

/// Marker derive for `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, true)
}

/// Marker derive for `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, false)
}
