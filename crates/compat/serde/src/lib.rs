//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment has no crates-registry access, so this shim keeps
//! the workspace's `#[derive(Serialize, Deserialize)]` annotations and
//! `T: Serialize` bounds compiling without pulling in the real dependency.
//! [`Serialize`] / [`Deserialize`] are *marker traits* here: no actual
//! (de)serialization format ships with the workspace today. When a real
//! format is needed, dropping in genuine `serde` is a manifest-only change —
//! all annotations (including `#[serde(default = "…")]` field attributes)
//! are already written against the real API.

// Lets the derive-generated `impl serde::Serialize for …` paths resolve
// when the derives are used inside this crate (e.g. in its own tests).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (stand-in for `serde::Serialize`).
pub trait Serialize {}

/// Marker for deserializable types (stand-in for `serde::Deserialize`).
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(bool, char, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}

macro_rules! impl_tuples {
    ($(($($n:ident),+)),*) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {}
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {}
    )*};
}

impl_tuples!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    struct Plain {
        x: f32,
        name: String,
    }

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    enum Kind {
        A,
        B(u32),
    }

    fn assert_serde<T: Serialize + for<'a> Deserialize<'a>>() {}

    #[test]
    fn derive_and_primitives_satisfy_bounds() {
        assert_serde::<Plain>();
        assert_serde::<Kind>();
        assert_serde::<Vec<(usize, usize)>>();
        assert_serde::<Option<f64>>();
    }
}
