//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use — [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter`,
//! range and tuple strategies, [`collection::vec`], [`Just`], the
//! [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros. Differences from the real crate: cases are drawn
//! from a deterministic per-test RNG (seeded from the test name) and there
//! is **no shrinking** — a failing case reports its inputs via the assert
//! message only.

use std::ops::{Range, RangeInclusive};

/// A failed property-test case (carried by `prop_assert!` early returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the suite quick while
        // still exercising the properties broadly. Tests needing more pass
        // `ProptestConfig::with_cases(..)` explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG driving the case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Builds the deterministic RNG for a named test.
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the test name gives a stable, well-mixed seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng { state: h }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards values failing `pred` (resampling; `_whence` is a label kept
    /// for API compatibility).
    fn prop_filter<W, F: Fn(&Self::Value) -> bool>(self, _whence: W, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive samples");
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7)
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` samples.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (super::TestRng::next_u64(rng) % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

/// Defines property tests (stand-in for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])+ fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let strategy = ($($strat,)+);
                for case in 0..config.cases {
                    let ($($pat,)+) = $crate::Strategy::sample(&strategy, &mut rng);
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("property '{}' failed at case {}/{}: {}",
                               stringify!($name), case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+), l, r
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} != {} (both {:?})",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn map_and_filter_compose(v in crate::collection::vec((0u32..100).prop_filter("even", |x| x % 2 == 0), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
        }

        #[test]
        fn flat_map_threads_dependencies((len, v) in (1usize..5).prop_flat_map(|n| (Just(n), crate::collection::vec(0f64..1.0, n)))) {
            prop_assert_eq!(v.len(), len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn config_form_parses(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
