//! Cross-crate integration: functional CapsNet inference consistency with
//! the op census, and exact-vs-approximate behaviour end to end.

use pim_capsnet_suite::prelude::*;

#[test]
fn census_matches_functional_tensor_sizes() {
    // The census's intermediate sizes must equal the tensors the
    // functional network actually materializes.
    let spec = CapsNetSpec::tiny_for_tests();
    let batch = 3;
    let census = RpCensus::from_spec(&spec, batch).unwrap();
    let net = CapsNet::seeded(&spec, 1).unwrap();
    let images = Tensor::uniform(&[batch, 1, 12, 12], 0.0, 1.0, 2);
    let out = net.forward(&images, &ExactMath).unwrap();

    // v is [B, H, CH] — the census's `v` byte count.
    assert_eq!(
        out.class_capsules.size_bytes() as u64,
        census.sizes.v,
        "v tensor size disagrees with census"
    );
    // batch-shared coefficients are [L, H] — the census's `c` byte count.
    assert_eq!(
        out.routing_coefficients.size_bytes() as u64,
        census.sizes.c,
        "c tensor size disagrees with census"
    );
}

#[test]
fn approx_backend_perturbation_is_bounded_end_to_end() {
    let spec = CapsNetSpec::tiny_for_tests();
    let net = CapsNet::seeded(&spec, 7).unwrap();
    let images = Tensor::uniform(&[8, 1, 12, 12], 0.0, 1.0, 3);
    let exact = net.forward(&images, &ExactMath).unwrap();
    let approx = net.forward(&images, &ApproxMath::with_recovery()).unwrap();
    let mut max_diff = 0.0f32;
    for (a, e) in approx
        .class_capsules
        .as_slice()
        .iter()
        .zip(exact.class_capsules.as_slice())
    {
        max_diff = max_diff.max((a - e).abs());
    }
    assert!(
        max_diff < 0.08,
        "approximate capsules diverged by {max_diff}"
    );
}

#[test]
fn em_and_dynamic_routing_agree_on_confident_inputs() {
    // Both routing algorithms should classify a strongly clustered input
    // set identically (the paper's claim that the design generalizes over
    // RP algorithms presumes they compute comparable things).
    let mut spec = CapsNetSpec::tiny_for_tests();
    let images = Tensor::uniform(&[6, 1, 12, 12], 0.0, 1.0, 4);
    spec.routing = RoutingAlgorithm::Dynamic;
    let dyn_net = CapsNet::seeded(&spec, 11).unwrap();
    let dyn_out = dyn_net.forward(&images, &ExactMath).unwrap();
    spec.routing = RoutingAlgorithm::Em;
    let em_net = CapsNet::seeded(&spec, 11).unwrap();
    let em_out = em_net.forward(&images, &ExactMath).unwrap();
    // Same weights, same inputs: outputs are finite and shaped alike.
    assert_eq!(
        dyn_out.class_capsules.shape(),
        em_out.class_capsules.shape()
    );
    assert!(em_out
        .class_capsules
        .as_slice()
        .iter()
        .all(|x| x.is_finite()));
}

#[test]
fn decoder_reconstruction_pipeline() {
    let spec = CapsNetSpec::tiny_for_tests();
    let net = CapsNet::seeded(&spec, 5).unwrap();
    let images = Tensor::uniform(&[2, 1, 12, 12], 0.0, 1.0, 6);
    let out = net.forward(&images, &ExactMath).unwrap();
    let preds = out.predictions();
    let rec = net.reconstruct(&out, &preds).unwrap();
    assert_eq!(rec.shape().dims(), &[2, 144]);
    assert!(rec.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
}

#[test]
fn margin_loss_decreases_with_better_labels() {
    let spec = CapsNetSpec::tiny_for_tests();
    let net = CapsNet::seeded(&spec, 13).unwrap();
    let images = Tensor::uniform(&[4, 1, 12, 12], 0.0, 1.0, 8);
    let out = net.forward(&images, &ExactMath).unwrap();
    let preds = out.predictions();
    let worst: Vec<usize> = preds.iter().map(|&p| (p + 1) % spec.h_caps).collect();
    let good = net.margin_loss(&out, &preds).unwrap();
    let bad = net.margin_loss(&out, &worst).unwrap();
    assert!(good < bad);
}
