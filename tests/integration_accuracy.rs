//! Cross-crate integration: the Table 5 accuracy pipeline.

use pim_capsnet_suite::prelude::*;

#[test]
fn accuracy_pipeline_end_to_end() {
    let b = &workload_benchmarks()[0]; // Caps-MN1
    let exp = AccuracyExperiment::new(b, 80, 42);
    let r = exp.run();
    // Origin calibrated near the reported accuracy (sampling noise aside).
    assert!(
        (r.origin - b.origin_accuracy).abs() < 0.06,
        "origin {} vs {}",
        r.origin,
        b.origin_accuracy
    );
    // Approximation losses stay small; recovery doesn't make things worse
    // by more than sampling noise.
    assert!(r.loss_without() < 0.06, "loss {}", r.loss_without());
    assert!(r.loss_with() <= r.loss_without() + 0.02);
}

#[test]
fn recovery_never_catastrophic_across_suite_subset() {
    // A cheap sweep over structurally distinct benchmarks (many classes,
    // many iterations).
    for idx in [6usize, 10] {
        let b = &workload_benchmarks()[idx];
        let exp = AccuracyExperiment::new(b, 60, 7);
        let r = exp.run();
        assert!(
            r.loss_with() < 0.08,
            "{}: loss with recovery {}",
            b.name,
            r.loss_with()
        );
    }
}

#[test]
fn exact_backend_reproduces_calibrated_origin() {
    // The exact backend must agree with the injected-label construction:
    // accuracy == 1 − flip_rate up to flip sampling on a finite set.
    let b = &workload_benchmarks()[9]; // Caps-SV1, origin 96.7%
    let exp = AccuracyExperiment::new(b, 100, 3);
    let r = exp.run();
    assert!(
        (r.origin - 0.967).abs() < 0.05,
        "origin {} should track 96.7%",
        r.origin
    );
}
