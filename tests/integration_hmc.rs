//! Cross-crate integration: the phase-level HMC engine against the
//! event-level simulator, and addressing-mode assumptions against the bit
//! accurate mappings.

use pim_capsnet_suite::hmc::event::EventSim;
use pim_capsnet_suite::hmc::{
    AddressMapping, DefaultMapping, HmcConfig, NaiveVaultMapping, PimMapping,
};
use pim_capsnet_suite::pim::intra::AddressingMode;

/// The phase engine's even-spread assumption for the PIM addressing mode
/// must match what the bit-level PIM mapping actually does to a contiguous
/// shard.
#[test]
fn pim_bank_spread_assumption_matches_mapping() {
    let cfg = HmcConfig::gen3();
    let mapping = PimMapping::new(&cfg, 64);
    let shard = 4 << 20; // 4 MB vault shard
    let dist = mapping.span_distribution(0, shard, &cfg);
    let (assumed, _) = AddressingMode::Pim.bank_spread(shard, &cfg);
    // Both must use all 16 banks with near-even loads.
    let used_real = dist[0].iter().filter(|&&b| b > 0).count();
    let used_assumed = assumed.iter().filter(|&&b| b > 0).count();
    assert_eq!(used_real, used_assumed);
    let max = *dist[0].iter().max().unwrap() as f64;
    let min = *dist[0].iter().min().unwrap() as f64;
    assert!(
        max / min < 1.01,
        "real mapping spread uneven: {max} vs {min}"
    );
}

/// The naive mapping really does concentrate a shard on few banks.
#[test]
fn naive_bank_concentration_matches_mapping() {
    let cfg = HmcConfig::gen3();
    let mapping = NaiveVaultMapping::new(&cfg);
    let shard = 4 << 20;
    let dist = mapping.span_distribution(0, shard, &cfg);
    let used: usize = dist[0].iter().filter(|&&b| b > 0).count();
    // 4 MB < one 16 MB bank region → a single bank; the phase model's
    // "effective 2 banks" is already generous to PIM-Inter.
    assert!(used <= 2, "naive mapping used {used} banks");
}

/// Default interleave spreads a shard across *vaults* — the PIM-Intra
/// remote-access premise.
#[test]
fn default_interleave_is_vault_remote() {
    let cfg = HmcConfig::gen3();
    let mapping = DefaultMapping::new(&cfg);
    let dist = mapping.span_distribution(0, 1 << 20, &cfg);
    let vaults_hit = dist
        .iter()
        .filter(|banks| banks.iter().sum::<u64>() > 0)
        .count();
    assert_eq!(vaults_hit, cfg.vaults);
}

/// Event-level vs phase-level: for an even, conflict-free access pattern
/// the phase engine's bank-service estimate must agree with the
/// request-level simulation within modeling tolerance.
#[test]
fn phase_engine_validated_by_event_sim() {
    use pim_capsnet_suite::hmc::{PeProgram, Phase, PhaseEngine, VaultWork};
    // The event simulator models bank queues only (no TSV link), so the
    // validation config widens the internal link until banks are the
    // binding resource in both models.
    let mut cfg = HmcConfig::gen3();
    cfg.internal_gbps = 4096.0;

    // 16 PEs stream 2048 blocks each, spread over all banks, row-friendly.
    let blocks_per_pe = 2048usize;
    let total_bytes = (16 * blocks_per_pe) as u64 * cfg.block_bytes;
    let event = EventSim::new(cfg.clone());
    // Each PE owns a contiguous region; the PIM mapping spreads regions
    // across banks (PE p → bank p) with sequential rows inside.
    let stream = event.pe_stream(16, blocks_per_pe, 1, |block| {
        let pe = (block as usize) / blocks_per_pe;
        (pe % 16, block % blocks_per_pe as u64 / 128)
    });
    let ev = event.run(&stream);

    // Phase engine equivalent: same bytes, even spread, high row hit. Use a
    // single vault (others idle).
    let engine = PhaseEngine::new(cfg.clone());
    let mut program = PeProgram::new();
    program.read_bytes = total_bytes;
    let (bank_bytes, _) = AddressingMode::Pim.bank_spread(total_bytes, &cfg);
    let mut vaults = vec![VaultWork::default(); cfg.vaults];
    vaults[0] = VaultWork {
        program,
        bank_bytes,
        row_hit_rate: ev.row_hit_rate, // feed the observed hit rate
    };
    let phase = Phase::local("validate", vaults);
    let ph = engine.run_phase(&phase);

    // The phase model charges max(bank time, TSV time); the event sim has
    // no TSV model, so compare against its bank-bound makespan.
    let rel = (ph.time_s - ev.time_s).abs() / ev.time_s;
    assert!(
        rel < 0.35,
        "phase {:.3e}s vs event {:.3e}s (rel {:.2})",
        ph.time_s,
        ev.time_s,
        rel
    );
}

/// Concentrated access: the event simulator confirms the conflict penalty
/// the phase engine charges PIM-Inter is the right order of magnitude.
#[test]
fn event_sim_confirms_conflict_magnitude() {
    let cfg = HmcConfig::gen3();
    let event = EventSim::new(cfg.clone());
    let blocks_per_pe = 1024usize;
    // Spread: PE p in bank p, sequential rows.
    let spread = event.pe_stream(16, blocks_per_pe, 1, |block| {
        let pe = (block as usize) / blocks_per_pe;
        (pe % 16, block % blocks_per_pe as u64 / 128)
    });
    // Concentrated: everyone in 2 banks, own row ranges (stride aliasing).
    let concentrated = event.pe_stream(16, blocks_per_pe, 1, |block| {
        let pe = (block as usize) / blocks_per_pe;
        (pe % 2, block / 8)
    });
    let t_spread = event.run(&spread).time_s;
    let t_conc = event.run(&concentrated).time_s;
    let slowdown = t_conc / t_spread;
    // The phase model's NaiveBank mode implies roughly an
    // (16/2)·(service-time ratio) slowdown; accept a broad band.
    assert!(
        (4.0..120.0).contains(&slowdown),
        "conflict slowdown {slowdown}"
    );
}
