//! Cross-crate integration: the design-variant engine over the whole
//! Table 1 suite — the invariants behind Figs 15–18.

use pim_capsnet_suite::prelude::*;

fn suite_results(variant: DesignVariant) -> Vec<(String, EvalResult)> {
    let platform = Platform::paper_default();
    workload_benchmarks()
        .iter()
        .map(|b| {
            let census = NetworkCensus::from_spec(&b.spec(), b.batch_size).unwrap();
            (b.name.to_string(), evaluate(&census, &platform, variant))
        })
        .collect()
}

#[test]
fn every_variant_evaluates_every_table1_census_without_panic() {
    // The full design-space sweep: all 8 variants × all 12 censuses must
    // produce finite, positive timing/energy results with a coherent
    // total ≥ RP ordering. (PIM-beats-Baseline per benchmark is pinned by
    // `pim_wins_rp_on_every_benchmark` below.)
    let platform = Platform::paper_default();
    for b in workload_benchmarks() {
        let census = NetworkCensus::from_spec(&b.spec(), b.batch_size).unwrap();
        for variant in DesignVariant::ALL {
            let r = evaluate(&census, &platform, variant);
            assert!(
                r.rp_time_s.is_finite() && r.rp_time_s > 0.0,
                "{}/{variant:?}: rp_time {}",
                b.name,
                r.rp_time_s
            );
            assert!(
                r.total_time_s.is_finite() && r.total_time_s >= r.rp_time_s,
                "{}/{variant:?}: total {} < rp {}",
                b.name,
                r.total_time_s,
                r.rp_time_s
            );
            assert!(
                r.rp_energy_j.is_finite() && r.rp_energy_j > 0.0,
                "{}/{variant:?}: rp_energy {}",
                b.name,
                r.rp_energy_j
            );
            assert!(
                r.total_energy_j.is_finite() && r.total_energy_j >= r.rp_energy_j,
                "{}/{variant:?}: total energy {} < rp energy {}",
                b.name,
                r.total_energy_j,
                r.rp_energy_j
            );
        }
    }
}

#[test]
fn pim_wins_rp_on_every_benchmark() {
    let base = suite_results(DesignVariant::Baseline);
    let pim = suite_results(DesignVariant::PimCapsNet);
    for ((name, b), (_, p)) in base.iter().zip(&pim) {
        let speedup = b.rp_time_s / p.rp_time_s;
        assert!(
            speedup > 1.5,
            "{name}: RP speedup {speedup} below the paper's floor"
        );
        assert!(
            p.rp_energy_j < 0.2 * b.rp_energy_j,
            "{name}: PIM RP energy not dramatically lower"
        );
    }
}

#[test]
fn overall_speedup_in_paper_band() {
    let base = suite_results(DesignVariant::Baseline);
    let pim = suite_results(DesignVariant::PimCapsNet);
    let speedups: Vec<f64> = base
        .iter()
        .zip(&pim)
        .map(|((_, b), (_, p))| b.total_time_s / p.total_time_s)
        .collect();
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!(
        (1.8..3.6).contains(&avg),
        "suite-average overall speedup {avg} (paper 2.44x)"
    );
}

#[test]
fn scalability_with_network_size() {
    // Paper: "good performance scalability in optimizing the routing
    // procedure with increasing network size" — CF3 (L=4608) beats CF1
    // (L=2304); SV3 (9 iters) beats SV1 (3 iters).
    let base = suite_results(DesignVariant::Baseline);
    let pim = suite_results(DesignVariant::PimCapsNet);
    let speedup = |name: &str| -> f64 {
        let i = base.iter().position(|(n, _)| n == name).unwrap();
        base[i].1.rp_time_s / pim[i].1.rp_time_s
    };
    assert!(speedup("Caps-CF3") > speedup("Caps-CF1"));
    assert!(speedup("Caps-SV3") > speedup("Caps-SV1"));
}

#[test]
fn variant_ordering_matches_fig16_and_17() {
    let platform = Platform::paper_default();
    let b = &workload_benchmarks()[0];
    let census = NetworkCensus::from_spec(&b.spec(), b.batch_size).unwrap();
    let t = |v: DesignVariant| evaluate(&census, &platform, v);
    let base = t(DesignVariant::Baseline);
    let pim = t(DesignVariant::PimCapsNet);
    let intra = t(DesignVariant::PimIntra);
    let inter = t(DesignVariant::PimInter);
    let all_in = t(DesignVariant::AllInPim);
    // Fig 16 ordering on RP time: full design < intra-only < inter-only.
    assert!(pim.rp_time_s < intra.rp_time_s);
    assert!(intra.rp_time_s < inter.rp_time_s);
    // Fig 17: All-in-PIM loses on time, wins on energy.
    assert!(all_in.total_time_s > base.total_time_s);
    assert!(all_in.total_energy_j < base.total_energy_j);
}

#[test]
fn dimension_choice_is_score_optimal_everywhere() {
    use pim_capsnet_suite::pim::distribution::{choose_dimension, DeviceCoeffs, DistributionModel};
    let platform = Platform::paper_default();
    let coeffs = DeviceCoeffs::from_hmc(&platform.hmc);
    for b in workload_benchmarks() {
        let census = NetworkCensus::from_spec(&b.spec(), b.batch_size).unwrap();
        let model = DistributionModel::from_census(&census.rp, platform.hmc.vaults);
        let expected = choose_dimension(&model, &coeffs);
        let r = evaluate(&census, &platform, DesignVariant::PimCapsNet);
        assert_eq!(r.chosen_dimension, Some(expected), "{}", b.name);
    }
}

#[test]
fn forced_dimension_never_beats_the_chosen_one_badly() {
    // The execution score is a model, not an oracle; but the chosen
    // dimension should never be >25% slower than the best forced one.
    let platform = Platform::paper_default();
    for b in workload_benchmarks().iter().take(4) {
        let census = NetworkCensus::from_spec(&b.spec(), b.batch_size).unwrap();
        let chosen = evaluate(&census, &platform, DesignVariant::PimCapsNet).rp_time_s;
        let best = Dimension::ALL
            .into_iter()
            .map(|d| {
                evaluate_with_dimension(&census, &platform, DesignVariant::PimCapsNet, Some(d))
                    .rp_time_s
            })
            .fold(f64::MAX, f64::min);
        assert!(
            chosen <= best * 1.25,
            "{}: chosen {chosen} vs best {best}",
            b.name
        );
    }
}

#[test]
fn deterministic_evaluation() {
    let platform = Platform::paper_default();
    let b = &workload_benchmarks()[3];
    let census = NetworkCensus::from_spec(&b.spec(), b.batch_size).unwrap();
    let a = evaluate(&census, &platform, DesignVariant::PimCapsNet);
    let c = evaluate(&census, &platform, DesignVariant::PimCapsNet);
    assert_eq!(a.rp_time_s, c.rp_time_s);
    assert_eq!(a.total_energy_j, c.total_energy_j);
}

#[test]
fn em_routing_also_accelerates_on_pim() {
    // The paper's generality claim (§5.1): the in-memory design applies to
    // other routing algorithms. Price Caps-MN1 with EM routing end to end.
    let platform = Platform::paper_default();
    let b = &workload_benchmarks()[0];
    let spec = CapsNetSpec {
        routing: RoutingAlgorithm::Em,
        ..b.spec()
    };
    let census = NetworkCensus::from_spec(&spec, b.batch_size).unwrap();
    assert_eq!(census.rp.routing, RoutingAlgorithm::Em);
    let base = evaluate(&census, &platform, DesignVariant::Baseline);
    let pim = evaluate(&census, &platform, DesignVariant::PimCapsNet);
    let speedup = pim.rp_speedup_vs(&base);
    assert!(
        speedup > 1.3,
        "EM routing should still accelerate on PIM: {speedup}"
    );
    // EM's per-sample responsibilities make the batch dimension residue-free.
    assert_eq!(pim.chosen_dimension, Some(Dimension::B));
}

#[test]
fn em_census_is_heavier_than_dynamic() {
    // The E/M steps do strictly more arithmetic per iteration than dynamic
    // routing's weighted sums (variances + likelihood quadratics).
    let dynamic = RpCensus::new(100, 1152, 10, 8, 16, 3);
    let em = RpCensus::new_em(100, 1152, 10, 8, 16, 3);
    assert!(em.total_flops() > dynamic.total_flops());
    assert_eq!(em.sizes.u_hat, dynamic.sizes.u_hat);
}
